//===- session/Serial.cpp - Search types <-> JSON conversions -------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "session/Serial.h"
#include "trace/Schedule.h"

using namespace icb;
using namespace icb::session;
using search::Bug;
using search::EngineSnapshot;
using search::SavedWorkItem;
using search::SearchLimits;
using search::SearchStats;

//===----------------------------------------------------------------------===//
// MinMax / schedule helpers
//===----------------------------------------------------------------------===//

namespace {

JsonValue minMaxToJson(const MinMax &M) {
  JsonValue V = JsonValue::object();
  V.set("min", JsonValue::number(M.min()));
  V.set("max", JsonValue::number(M.max()));
  V.set("sum", JsonValue::number(M.sum()));
  V.set("count", JsonValue::number(M.count()));
  // Derived, for readers: the uint64-only export of the mean (scaled by
  // 1000, rounded). Ignored on parse — min/max/sum/count are canonical.
  V.set("mean_milli", JsonValue::number(M.meanMilli()));
  return V;
}

bool minMaxFromJson(const JsonValue *V, MinMax &Out) {
  if (!V || !V->isObject())
    return false;
  uint64_t Min = 0, Max = 0, Sum = 0, Count = 0;
  if (!V->getU64("min", Min) || !V->getU64("max", Max) ||
      !V->getU64("sum", Sum) || !V->getU64("count", Count))
    return false;
  Out = MinMax::restore(Min, Max, Sum, Count);
  return true;
}

JsonValue histToJson(const Histogram &H) {
  JsonValue A = JsonValue::array();
  for (uint64_t Bucket : H.buckets())
    A.Arr.push_back(JsonValue::number(Bucket));
  return A;
}

bool histFromJson(const JsonValue *V, Histogram &Out) {
  if (!V || !V->isArray())
    return false;
  for (size_t I = 0; I != V->Arr.size(); ++I) {
    if (V->Arr[I].K != JsonValue::Kind::Number)
      return false;
    Out.increment(I, V->Arr[I].U);
  }
  return true;
}

/// A model-VM schedule (plain thread ids) as one space-separated string,
/// parseable by trace::Schedule::parse (no markers).
std::string tidsToText(const std::vector<vm::ThreadId> &Tids) {
  std::string Out;
  for (size_t I = 0; I != Tids.size(); ++I) {
    if (I)
      Out += ' ';
    Out += std::to_string(Tids[I]);
  }
  return Out;
}

bool tidsFromText(const std::string &Text, std::vector<vm::ThreadId> &Out) {
  trace::Schedule Sched;
  if (!trace::Schedule::parse(Text, Sched))
    return false;
  Out.clear();
  Out.reserve(Sched.length());
  for (const trace::ScheduleEntry &E : Sched.entries()) {
    if (E.Preemption || E.ContextSwitch)
      return false; // Plain tid lists carry no markers.
    Out.push_back(E.Tid);
  }
  return true;
}

/// A list of 64-bit values (the thread policy's variable budget) as one
/// space-separated decimal string.
std::string u64sToText(const std::vector<uint64_t> &Values) {
  std::string Out;
  for (size_t I = 0; I != Values.size(); ++I) {
    if (I)
      Out += ' ';
    Out += std::to_string(Values[I]);
  }
  return Out;
}

bool u64sFromText(const std::string &Text, std::vector<uint64_t> &Out) {
  Out.clear();
  size_t I = 0;
  while (I < Text.size()) {
    if (Text[I] == ' ') {
      ++I;
      continue;
    }
    uint64_t Value = 0;
    size_t Start = I;
    while (I < Text.size() && Text[I] >= '0' && Text[I] <= '9') {
      uint64_t Digit = static_cast<uint64_t>(Text[I] - '0');
      if (Value > (~0ull - Digit) / 10)
        return false; // Overflow.
      Value = Value * 10 + Digit;
      ++I;
    }
    if (I == Start)
      return false; // Not a digit.
    Out.push_back(Value);
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// SearchStats
//===----------------------------------------------------------------------===//

JsonValue icb::session::statsToJson(const SearchStats &Stats) {
  JsonValue V = JsonValue::object();
  V.set("executions", JsonValue::number(Stats.Executions));
  V.set("total_steps", JsonValue::number(Stats.TotalSteps));
  V.set("distinct_states", JsonValue::number(Stats.DistinctStates));
  V.set("distinct_terminal_states",
        JsonValue::number(Stats.DistinctTerminalStates));
  V.set("steps_per_execution", minMaxToJson(Stats.StepsPerExecution));
  V.set("blocking_per_execution", minMaxToJson(Stats.BlockingPerExecution));
  V.set("preemptions_per_execution",
        minMaxToJson(Stats.PreemptionsPerExecution));
  V.set("threads_per_execution", minMaxToJson(Stats.ThreadsPerExecution));

  JsonValue Hist = JsonValue::array();
  for (uint64_t Bucket : Stats.PreemptionHistogram.buckets())
    Hist.Arr.push_back(JsonValue::number(Bucket));
  V.set("preemption_histogram", std::move(Hist));

  JsonValue Coverage = JsonValue::array();
  for (const search::CoveragePoint &P : Stats.Coverage) {
    JsonValue Point = JsonValue::array();
    Point.Arr.push_back(JsonValue::number(P.Executions));
    Point.Arr.push_back(JsonValue::number(P.States));
    Coverage.Arr.push_back(std::move(Point));
  }
  V.set("coverage", std::move(Coverage));

  JsonValue PerBound = JsonValue::array();
  for (const search::BoundCoverage &B : Stats.PerBound) {
    JsonValue Row = JsonValue::object();
    Row.set("bound", JsonValue::number(B.Bound));
    Row.set("states", JsonValue::number(B.States));
    Row.set("executions", JsonValue::number(B.Executions));
    PerBound.Arr.push_back(std::move(Row));
  }
  V.set("per_bound", std::move(PerBound));

  V.set("completed", JsonValue::boolean(Stats.Completed));
  return V;
}

bool icb::session::statsFromJson(const JsonValue &V, SearchStats &Out) {
  if (!V.isObject())
    return false;
  Out = SearchStats();
  if (!V.getU64("executions", Out.Executions) ||
      !V.getU64("total_steps", Out.TotalSteps) ||
      !V.getU64("distinct_states", Out.DistinctStates) ||
      !V.getU64("distinct_terminal_states", Out.DistinctTerminalStates) ||
      !V.getBool("completed", Out.Completed))
    return false;
  if (!minMaxFromJson(V.find("steps_per_execution"),
                      Out.StepsPerExecution) ||
      !minMaxFromJson(V.find("blocking_per_execution"),
                      Out.BlockingPerExecution) ||
      !minMaxFromJson(V.find("preemptions_per_execution"),
                      Out.PreemptionsPerExecution) ||
      !minMaxFromJson(V.find("threads_per_execution"),
                      Out.ThreadsPerExecution))
    return false;

  const JsonValue *Hist = V.find("preemption_histogram");
  if (!Hist || !Hist->isArray())
    return false;
  for (size_t I = 0; I != Hist->Arr.size(); ++I) {
    if (Hist->Arr[I].K != JsonValue::Kind::Number)
      return false;
    Out.PreemptionHistogram.increment(I, Hist->Arr[I].U);
  }

  const JsonValue *Coverage = V.find("coverage");
  if (!Coverage || !Coverage->isArray())
    return false;
  for (const JsonValue &PointV : Coverage->Arr) {
    if (!PointV.isArray() || PointV.Arr.size() != 2 ||
        PointV.Arr[0].K != JsonValue::Kind::Number ||
        PointV.Arr[1].K != JsonValue::Kind::Number)
      return false;
    Out.Coverage.push_back({PointV.Arr[0].U, PointV.Arr[1].U});
  }

  const JsonValue *PerBound = V.find("per_bound");
  if (!PerBound || !PerBound->isArray())
    return false;
  for (const JsonValue &RowV : PerBound->Arr) {
    search::BoundCoverage Row;
    uint64_t Bound = 0;
    if (!RowV.getU64("bound", Bound) || Bound > UINT32_MAX ||
        !RowV.getU64("states", Row.States) ||
        !RowV.getU64("executions", Row.Executions))
      return false;
    Row.Bound = static_cast<unsigned>(Bound);
    Out.PerBound.push_back(Row);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

JsonValue icb::session::metricsToJson(const obs::MetricsSnapshot &M) {
  JsonValue V = JsonValue::object();

  // Work-derived section: identical across worker counts and resume.
  JsonValue Counters = JsonValue::object();
  JsonValue TimingCounters = JsonValue::object();
  for (size_t I = 0; I != obs::NumCounters; ++I) {
    auto C = static_cast<obs::Counter>(I);
    uint64_t Value = I < M.Counters.size() ? M.Counters[I] : 0;
    (obs::counterIsDeterministic(C) ? Counters : TimingCounters)
        .set(obs::counterName(C), JsonValue::number(Value));
  }
  V.set("counters", std::move(Counters));
  V.set("replay_depth", minMaxToJson(M.ReplayDepth));

  JsonValue PerBound = JsonValue::array();
  for (uint64_t Bucket : M.ExecutionsPerBound.buckets())
    PerBound.Arr.push_back(JsonValue::number(Bucket));
  V.set("executions_per_bound", std::move(PerBound));

  JsonValue SleepSaved = JsonValue::array();
  for (uint64_t Bucket : M.SleepSavedPerBound.buckets())
    SleepSaved.Arr.push_back(JsonValue::number(Bucket));
  V.set("sleep_saved_per_bound", std::move(SleepSaved));

  // Schedule-space estimator mass (format v5): the tree fixes every
  // split, so this is work-derived like executions_per_bound.
  V.set("est_mass_per_bound", histToJson(M.EstMassPerBound));

  // Per-preemption-site profiles (format v5). Taken (defer-time) and
  // Execs (every item-start, pruned or not) are tree-derived. Bugs and
  // NewStates are timing-class: under --jobs the shared work-item cache
  // admits exactly one of several same-digest chains, so which site's
  // chain runs past the claim — and therefore detects the bugs / first
  // sees the states downstream of it — depends on worker timing. Sites
  // whose only data is timing-class are omitted here (their very
  // presence is attribution-dependent) and appear under timing only.
  JsonValue Sites = JsonValue::object();
  JsonValue SiteNewStates = JsonValue::object();
  JsonValue SiteBugs = JsonValue::object();
  for (const auto &Entry : M.Sites) {
    const obs::SiteStat &S = Entry.second;
    if (!S.Taken.buckets().empty() || !S.Execs.buckets().empty()) {
      JsonValue Row = JsonValue::object();
      Row.set("taken", histToJson(S.Taken));
      Row.set("execs", histToJson(S.Execs));
      Sites.set(Entry.first, std::move(Row));
    }
    if (!S.NewStates.buckets().empty())
      SiteNewStates.set(Entry.first, histToJson(S.NewStates));
    if (!S.Bugs.buckets().empty())
      SiteBugs.set(Entry.first, histToJson(S.Bugs));
  }
  V.set("sites", std::move(Sites));

  // Timing section: one particular run on one particular machine. The
  // determinism tests and the resume CI normalization drop this subtree.
  JsonValue Timing = JsonValue::object();
  Timing.set("counters", std::move(TimingCounters));
  Timing.set("site_new_states", std::move(SiteNewStates));
  Timing.set("site_bugs", std::move(SiteBugs));
  JsonValue Phases = JsonValue::object();
  for (size_t I = 0; I != obs::NumPhases; ++I) {
    MinMax P = I < M.Phases.size() ? M.Phases[I] : MinMax();
    Phases.set(obs::phaseName(static_cast<obs::Phase>(I)),
               minMaxToJson(P));
  }
  Timing.set("phases_ns", std::move(Phases));
  JsonValue PhaseHist = JsonValue::object();
  for (size_t I = 0; I != obs::NumPhases; ++I) {
    JsonValue Buckets = JsonValue::array();
    if (I < M.PhaseHist.size())
      for (uint64_t Bucket : M.PhaseHist[I].buckets())
        Buckets.Arr.push_back(JsonValue::number(Bucket));
    PhaseHist.set(obs::phaseName(static_cast<obs::Phase>(I)),
                  std::move(Buckets));
  }
  Timing.set("phase_hist_log2", std::move(PhaseHist));
  JsonValue Workers = JsonValue::array();
  for (const obs::WorkerMetrics &W : M.Workers) {
    JsonValue Row = JsonValue::object();
    Row.set("busy_ns", JsonValue::number(W.BusyNanos));
    Row.set("idle_ns", JsonValue::number(W.IdleNanos));
    Workers.Arr.push_back(std::move(Row));
  }
  Timing.set("workers", std::move(Workers));
  V.set("timing", std::move(Timing));
  return V;
}

bool icb::session::metricsFromJson(const JsonValue &V,
                                   obs::MetricsSnapshot &Out) {
  if (!V.isObject())
    return false;
  Out = obs::MetricsSnapshot();
  Out.Counters.assign(obs::NumCounters, 0);
  Out.Phases.assign(obs::NumPhases, MinMax());

  const JsonValue *Counters = V.find("counters");
  const JsonValue *Timing = V.find("timing");
  if (!Counters || !Counters->isObject() || !Timing || !Timing->isObject())
    return false;
  const JsonValue *TimingCounters = Timing->find("counters");
  const JsonValue *Phases = Timing->find("phases_ns");
  if (!TimingCounters || !TimingCounters->isObject() || !Phases ||
      !Phases->isObject())
    return false;
  // Counter/phase names absent from the file default to zero: format v2
  // checkpoints predate the POR metrics but must keep loading.
  for (size_t I = 0; I != obs::NumCounters; ++I) {
    auto C = static_cast<obs::Counter>(I);
    const JsonValue &Section =
        obs::counterIsDeterministic(C) ? *Counters : *TimingCounters;
    const char *Name = obs::counterName(C);
    if (Section.find(Name) && !Section.getU64(Name, Out.Counters[I]))
      return false;
  }
  if (!minMaxFromJson(V.find("replay_depth"), Out.ReplayDepth))
    return false;
  for (size_t I = 0; I != obs::NumPhases; ++I) {
    const JsonValue *P =
        Phases->find(obs::phaseName(static_cast<obs::Phase>(I)));
    if (P && !minMaxFromJson(P, Out.Phases[I]))
      return false;
  }

  // Optional: absent in checkpoints predating format v4.
  Out.PhaseHist.assign(obs::NumPhases, Histogram());
  if (const JsonValue *PhaseHist = Timing->find("phase_hist_log2")) {
    if (!PhaseHist->isObject())
      return false;
    for (size_t I = 0; I != obs::NumPhases; ++I) {
      const JsonValue *Buckets =
          PhaseHist->find(obs::phaseName(static_cast<obs::Phase>(I)));
      if (!Buckets)
        continue;
      if (!Buckets->isArray())
        return false;
      for (size_t J = 0; J != Buckets->Arr.size(); ++J) {
        if (Buckets->Arr[J].K != JsonValue::Kind::Number)
          return false;
        Out.PhaseHist[I].increment(J, Buckets->Arr[J].U);
      }
    }
  }

  const JsonValue *PerBound = V.find("executions_per_bound");
  if (!PerBound || !PerBound->isArray())
    return false;
  for (size_t I = 0; I != PerBound->Arr.size(); ++I) {
    if (PerBound->Arr[I].K != JsonValue::Kind::Number)
      return false;
    Out.ExecutionsPerBound.increment(I, PerBound->Arr[I].U);
  }

  // Optional: absent in format v2 checkpoints.
  if (const JsonValue *SleepSaved = V.find("sleep_saved_per_bound")) {
    if (!SleepSaved->isArray())
      return false;
    for (size_t I = 0; I != SleepSaved->Arr.size(); ++I) {
      if (SleepSaved->Arr[I].K != JsonValue::Kind::Number)
        return false;
      Out.SleepSavedPerBound.increment(I, SleepSaved->Arr[I].U);
    }
  }

  // Optional (format v5): estimator mass and per-site profiles. Absent in
  // older checkpoints — the estimator resumes simply uncredited.
  if (const JsonValue *EstMass = V.find("est_mass_per_bound"))
    if (!histFromJson(EstMass, Out.EstMassPerBound))
      return false;
  if (const JsonValue *Sites = V.find("sites")) {
    if (!Sites->isObject())
      return false;
    for (const auto &Entry : Sites->Obj) {
      obs::SiteStat &S = Out.Sites[Entry.first];
      if (!Entry.second.isObject() ||
          !histFromJson(Entry.second.find("taken"), S.Taken) ||
          !histFromJson(Entry.second.find("execs"), S.Execs))
        return false;
    }
  }
  if (const JsonValue *SiteNew = Timing->find("site_new_states")) {
    if (!SiteNew->isObject())
      return false;
    for (const auto &Entry : SiteNew->Obj)
      if (!histFromJson(&Entry.second, Out.Sites[Entry.first].NewStates))
        return false;
  }
  if (const JsonValue *SiteBug = Timing->find("site_bugs")) {
    if (!SiteBug->isObject())
      return false;
    for (const auto &Entry : SiteBug->Obj)
      if (!histFromJson(&Entry.second, Out.Sites[Entry.first].Bugs))
        return false;
  }

  const JsonValue *Workers = Timing->find("workers");
  if (!Workers || !Workers->isArray())
    return false;
  for (const JsonValue &RowV : Workers->Arr) {
    obs::WorkerMetrics W;
    if (!RowV.getU64("busy_ns", W.BusyNanos) ||
        !RowV.getU64("idle_ns", W.IdleNanos))
      return false;
    Out.Workers.push_back(W);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Bug
//===----------------------------------------------------------------------===//

JsonValue icb::session::bugToJson(const Bug &B) {
  JsonValue V = JsonValue::object();
  V.set("kind", JsonValue::str(search::bugKindName(B.Kind)));
  V.set("message", JsonValue::str(B.Message));
  V.set("preemptions", JsonValue::number(B.Preemptions));
  V.set("context_switches", JsonValue::number(B.ContextSwitches));
  V.set("steps", JsonValue::number(B.Steps));
  V.set("schedule", JsonValue::str(tidsToText(B.Schedule)));
  V.set("annotated_schedule", JsonValue::str(B.Sched.str()));
  return V;
}

bool icb::session::bugFromJson(const JsonValue &V, Bug &Out) {
  if (!V.isObject())
    return false;
  Out = Bug();
  std::string KindName, ScheduleText, AnnotatedText;
  uint64_t Preemptions = 0, ContextSwitches = 0;
  if (!V.getString("kind", KindName) ||
      !search::bugKindFromName(KindName, Out.Kind) ||
      !V.getString("message", Out.Message) ||
      !V.getU64("preemptions", Preemptions) || Preemptions > UINT32_MAX ||
      !V.getU64("context_switches", ContextSwitches) ||
      ContextSwitches > UINT32_MAX || !V.getU64("steps", Out.Steps) ||
      !V.getString("schedule", ScheduleText) ||
      !V.getString("annotated_schedule", AnnotatedText))
    return false;
  Out.Preemptions = static_cast<unsigned>(Preemptions);
  Out.ContextSwitches = static_cast<unsigned>(ContextSwitches);
  if (!tidsFromText(ScheduleText, Out.Schedule))
    return false;
  if (!trace::Schedule::parse(AnnotatedText, Out.Sched))
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// SearchLimits
//===----------------------------------------------------------------------===//

JsonValue icb::session::limitsToJson(const SearchLimits &Limits) {
  JsonValue V = JsonValue::object();
  V.set("max_executions", JsonValue::number(Limits.MaxExecutions));
  V.set("max_steps", JsonValue::number(Limits.MaxSteps));
  V.set("max_states", JsonValue::number(Limits.MaxStates));
  V.set("max_preemption_bound",
        JsonValue::number(Limits.MaxPreemptionBound));
  V.set("stop_at_first_bug", JsonValue::boolean(Limits.StopAtFirstBug));
  return V;
}

bool icb::session::limitsFromJson(const JsonValue &V, SearchLimits &Out) {
  if (!V.isObject())
    return false;
  Out = SearchLimits();
  uint64_t Bound = 0;
  if (!V.getU64("max_executions", Out.MaxExecutions) ||
      !V.getU64("max_steps", Out.MaxSteps) ||
      !V.getU64("max_states", Out.MaxStates) ||
      !V.getU64("max_preemption_bound", Bound) || Bound > UINT32_MAX ||
      !V.getBool("stop_at_first_bug", Out.StopAtFirstBug))
    return false;
  Out.MaxPreemptionBound = static_cast<unsigned>(Bound);
  return true;
}

//===----------------------------------------------------------------------===//
// EngineSnapshot
//===----------------------------------------------------------------------===//

namespace {

JsonValue itemsToJson(const std::vector<SavedWorkItem> &Items) {
  JsonValue V = JsonValue::array();
  for (const SavedWorkItem &Item : Items) {
    JsonValue Row = JsonValue::object();
    Row.set("prefix", JsonValue::str(tidsToText(Item.Prefix)));
    Row.set("next", JsonValue::number(Item.Next));
    if (!Item.Sleep.empty())
      Row.set("sleep", JsonValue::str(tidsToText(Item.Sleep)));
    // Bound-policy budget state (format v4); only the thread policy
    // produces non-empty sets.
    if (!Item.BoundThreads.empty())
      Row.set("bound_threads", JsonValue::str(tidsToText(Item.BoundThreads)));
    if (!Item.BoundVars.empty())
      Row.set("bound_vars", JsonValue::str(u64sToText(Item.BoundVars)));
    // Estimator mass and seeding site (format v5); absent when the
    // estimator is dark, so older readers see nothing new to reject.
    if (Item.EstMass != 0)
      Row.set("est_mass", JsonValue::number(Item.EstMass));
    if (!Item.Site.empty())
      Row.set("site", JsonValue::str(Item.Site));
    V.Arr.push_back(std::move(Row));
  }
  return V;
}

bool itemsFromJson(const JsonValue *V, std::vector<SavedWorkItem> &Out) {
  if (!V || !V->isArray())
    return false;
  for (const JsonValue &RowV : V->Arr) {
    SavedWorkItem Item;
    std::string PrefixText;
    if (!RowV.getString("prefix", PrefixText) ||
        !tidsFromText(PrefixText, Item.Prefix) ||
        !RowV.getU32("next", Item.Next))
      return false;
    // Optional: only POR items carry sleep sets (and v2 files never do).
    if (RowV.find("sleep")) {
      std::string SleepText;
      if (!RowV.getString("sleep", SleepText) ||
          !tidsFromText(SleepText, Item.Sleep))
        return false;
    }
    // Optional (format v4): only thread-policy items carry budget sets.
    if (RowV.find("bound_threads")) {
      std::string ThreadsText;
      if (!RowV.getString("bound_threads", ThreadsText) ||
          !tidsFromText(ThreadsText, Item.BoundThreads))
        return false;
    }
    if (RowV.find("bound_vars")) {
      std::string VarsText;
      if (!RowV.getString("bound_vars", VarsText) ||
          !u64sFromText(VarsText, Item.BoundVars))
        return false;
    }
    // Optional (format v5): estimator mass and seeding site.
    if (RowV.find("est_mass") && !RowV.getU64("est_mass", Item.EstMass))
      return false;
    if (RowV.find("site") && !RowV.getString("site", Item.Site))
      return false;
    Out.push_back(std::move(Item));
  }
  return true;
}

bool hexField(const JsonValue &V, const char *Key,
              std::vector<uint64_t> &Out) {
  std::string Text;
  return V.getString(Key, Text) && digestsFromHex(Text, Out);
}

} // namespace

JsonValue icb::session::workItemsToJson(
    const std::vector<search::SavedWorkItem> &Items) {
  return itemsToJson(Items);
}

bool icb::session::workItemsFromJson(const JsonValue &V,
                                     std::vector<search::SavedWorkItem> &Out) {
  return itemsFromJson(&V, Out);
}

JsonValue icb::session::snapshotToJson(const EngineSnapshot &Snap) {
  JsonValue V = JsonValue::object();
  V.set("bound", JsonValue::number(Snap.Bound));
  V.set("final", JsonValue::boolean(Snap.Final));
  V.set("stats", statsToJson(Snap.Stats));

  JsonValue Bugs = JsonValue::array();
  for (const Bug &B : Snap.Bugs)
    Bugs.Arr.push_back(bugToJson(B));
  V.set("bugs", std::move(Bugs));

  // Absent entirely for unmetered runs; resuming restores it so the
  // continued run's work-derived counters match an uninterrupted run's.
  if (!Snap.Metrics.empty())
    V.set("metrics", metricsToJson(Snap.Metrics));

  if (!Snap.Final) {
    V.set("current_queue", itemsToJson(Snap.CurrentQueue));
    V.set("next_queue", itemsToJson(Snap.NextQueue));
    JsonValue Sampler = JsonValue::object();
    Sampler.set("stride", JsonValue::number(Snap.Sampler.Stride));
    Sampler.set("last_executions",
                JsonValue::number(Snap.Sampler.LastExecutions));
    Sampler.set("last_states", JsonValue::number(Snap.Sampler.LastStates));
    Sampler.set("have_pending",
                JsonValue::boolean(Snap.Sampler.HavePending));
    V.set("sampler", std::move(Sampler));
    // Digest sets dominate checkpoint size on long runs; past the
    // threshold they switch to the sorted delta-encoded form (format v3).
    constexpr size_t DigestCompactThreshold = 4096;
    V.set("seen_digests",
          JsonValue::str(
              digestsToHexCompact(Snap.SeenDigests, DigestCompactThreshold)));
    V.set("terminal_digests",
          JsonValue::str(digestsToHexCompact(Snap.TerminalDigests,
                                             DigestCompactThreshold)));
    V.set("item_digests",
          JsonValue::str(
              digestsToHexCompact(Snap.ItemDigests, DigestCompactThreshold)));
  }
  return V;
}

bool icb::session::snapshotFromJson(const JsonValue &V,
                                    EngineSnapshot &Out) {
  if (!V.isObject())
    return false;
  Out = EngineSnapshot();
  uint64_t Bound = 0;
  if (!V.getU64("bound", Bound) || Bound > UINT32_MAX ||
      !V.getBool("final", Out.Final))
    return false;
  Out.Bound = static_cast<unsigned>(Bound);
  const JsonValue *Stats = V.find("stats");
  if (!Stats || !statsFromJson(*Stats, Out.Stats))
    return false;

  const JsonValue *Bugs = V.find("bugs");
  if (!Bugs || !Bugs->isArray())
    return false;
  for (const JsonValue &BugV : Bugs->Arr) {
    Bug B;
    if (!bugFromJson(BugV, B))
      return false;
    Out.Bugs.push_back(std::move(B));
  }

  if (const JsonValue *Metrics = V.find("metrics"))
    if (!metricsFromJson(*Metrics, Out.Metrics))
      return false;

  if (Out.Final)
    return true;

  if (!itemsFromJson(V.find("current_queue"), Out.CurrentQueue) ||
      !itemsFromJson(V.find("next_queue"), Out.NextQueue))
    return false;
  const JsonValue *Sampler = V.find("sampler");
  if (!Sampler || !Sampler->isObject() ||
      !Sampler->getU64("stride", Out.Sampler.Stride) ||
      !Sampler->getU64("last_executions", Out.Sampler.LastExecutions) ||
      !Sampler->getU64("last_states", Out.Sampler.LastStates) ||
      !Sampler->getBool("have_pending", Out.Sampler.HavePending))
    return false;
  if (!hexField(V, "seen_digests", Out.SeenDigests) ||
      !hexField(V, "terminal_digests", Out.TerminalDigests) ||
      !hexField(V, "item_digests", Out.ItemDigests))
    return false;
  return true;
}
