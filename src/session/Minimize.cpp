//===- session/Minimize.cpp - Delta-debugging schedule shrinker -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "session/Minimize.h"
#include "rt/Explore.h"
#include "rt/ReplayExecutor.h"
#include "search/IcbCore.h"
#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

namespace icb::session {

namespace {

/// One departure from the canonical nonpreemptive default: at scheduling
/// point \p Index, run \p Tid instead.
struct Directive {
  uint64_t Index = 0;
  uint32_t Tid = 0;
};

template <typename Vec, typename T>
bool contains(const Vec &V, const T &X) {
  return std::find(V.begin(), V.end(), X) != V.end();
}

/// Tries a candidate directive set; true when the target bug still fires
/// (filling \p Out with the observed exposure).
using Tester =
    std::function<bool(const std::vector<Directive> &, search::Bug &)>;

/// Classic ddmin to 1-minimality: repeatedly drop complement chunks while
/// the bug survives, refining granularity down to single directives.
/// \p Dirs must already reproduce with \p Best as its exposure.
std::vector<Directive> ddmin(std::vector<Directive> Dirs, const Tester &Test,
                             unsigned &Replays, search::Bug &Best) {
  // Cheap fast path: many bugs need only a fraction of the directives, and
  // some need none (a bound-0 exposure recorded with extra noise).
  if (!Dirs.empty()) {
    search::Bug B;
    ++Replays;
    if (Test({}, B)) {
      Best = std::move(B);
      return {};
    }
  }

  size_t Chunks = 2;
  while (Dirs.size() >= 2) {
    bool Reduced = false;
    size_t N = std::min(Chunks, Dirs.size());
    for (size_t C = 0; C < N && !Reduced; ++C) {
      size_t Lo = Dirs.size() * C / N;
      size_t Hi = Dirs.size() * (C + 1) / N;
      std::vector<Directive> Cand;
      Cand.reserve(Dirs.size() - (Hi - Lo));
      for (size_t I = 0; I < Dirs.size(); ++I)
        if (I < Lo || I >= Hi)
          Cand.push_back(Dirs[I]);
      search::Bug B;
      ++Replays;
      if (Test(Cand, B)) {
        Dirs = std::move(Cand);
        Best = std::move(B);
        Chunks = std::max<size_t>(N - 1, 2);
        Reduced = true;
      }
    }
    if (!Reduced) {
      if (N >= Dirs.size())
        break; // Tested every single-directive removal: 1-minimal.
      Chunks = std::min(Dirs.size(), Chunks * 2);
    }
  }

  if (Dirs.size() == 1) {
    search::Bug B;
    ++Replays;
    if (Test({}, B)) {
      Best = std::move(B);
      Dirs.clear();
    }
  }
  return Dirs;
}

MinimizeResult finishResult(const ReproArtifact &A, unsigned Replays,
                            size_t DirsBefore, size_t DirsAfter,
                            search::Bug Minimized) {
  MinimizeResult R;
  R.Reproduced = true;
  R.Replays = Replays;
  R.DirectivesBefore = static_cast<unsigned>(DirsBefore);
  R.DirectivesAfter = static_cast<unsigned>(DirsAfter);
  R.PreemptionsBefore = A.Found.Preemptions;
  R.PreemptionsAfter = Minimized.Preemptions;
  R.Improved = DirsAfter < DirsBefore ||
               Minimized.Preemptions < A.Found.Preemptions ||
               Minimized.Steps < A.Found.Steps;
  R.Minimized = std::move(Minimized);
  return R;
}

//===----------------------------------------------------------------------===//
// Runtime form
//===----------------------------------------------------------------------===//

/// Replays a recorded schedule verbatim while recording where it departs
/// from the nonpreemptive default (nonpreemptive continuation past the
/// end, like rt::replaySchedule).
class ExtractPolicy : public rt::SchedulePolicy {
public:
  explicit ExtractPolicy(const trace::Schedule &Sched) : Sched(Sched) {}

  rt::ThreadId pick(const rt::SchedPoint &P) override {
    rt::ThreadId Def = P.LastEnabled ? P.Last : P.Enabled.front();
    if (P.Index >= Sched.length())
      return Def;
    rt::ThreadId Tid = Sched.entry(P.Index).Tid;
    if (!contains(P.Enabled, Tid)) {
      Diverged = true;
      return AbortExecution;
    }
    if (Tid != Def)
      Dirs.push_back({P.Index, Tid});
    return Tid;
  }

  const trace::Schedule &Sched;
  std::vector<Directive> Dirs;
  bool Diverged = false;
};

/// Follows the directive set, nonpreemptive default everywhere else. A
/// directive whose thread is not enabled aborts the candidate (schedules
/// regenerated around a removed directive may drift; such candidates
/// simply fail).
class DirectivePolicy : public rt::SchedulePolicy {
public:
  explicit DirectivePolicy(const std::vector<Directive> &Dirs) : Dirs(Dirs) {}

  rt::ThreadId pick(const rt::SchedPoint &P) override {
    if (Next < Dirs.size() && Dirs[Next].Index == P.Index) {
      rt::ThreadId Tid = Dirs[Next].Tid;
      ++Next;
      if (!contains(P.Enabled, Tid))
        return AbortExecution;
      return Tid;
    }
    return P.LastEnabled ? P.Last : P.Enabled.front();
  }

private:
  const std::vector<Directive> &Dirs;
  size_t Next = 0;
};

} // namespace

MinimizeResult minimizeRt(const ReproArtifact &A, const rt::TestCase &Test) {
  MinimizeResult Failed;
  rt::Scheduler Sched(reproExecOptions(A));
  unsigned Replays = 0;

  ExtractPolicy Extract(A.Found.Sched);
  rt::ExecutionResult R0 = Sched.run(Test, Extract);
  ++Replays;
  Failed.Replays = Replays;
  if (Extract.Diverged || !rt::isErrorStatus(R0.Status))
    return Failed;
  search::Bug Baseline = rt::bugFromResult(R0);
  if (Baseline.Kind != A.Found.Kind || Baseline.Message != A.Found.Message)
    return Failed;

  auto Try = [&](const std::vector<Directive> &Dirs,
                 search::Bug &Out) -> bool {
    DirectivePolicy Policy(Dirs);
    rt::ExecutionResult R = Sched.run(Test, Policy);
    if (!rt::isErrorStatus(R.Status))
      return false;
    search::Bug B = rt::bugFromResult(R);
    if (B.Kind != A.Found.Kind || B.Message != A.Found.Message)
      return false;
    Out = std::move(B);
    return true;
  };

  size_t Before = Extract.Dirs.size();
  search::Bug Best = std::move(Baseline);
  std::vector<Directive> Min =
      ddmin(std::move(Extract.Dirs), Try, Replays, Best);
  return finishResult(A, Replays, Before, Min.size(), std::move(Best));
}

//===----------------------------------------------------------------------===//
// Model-VM form
//===----------------------------------------------------------------------===//

namespace {

/// Runs the VM under a directive set; true when some bug fires, with the
/// exposure (kind, message, schedule, preemption count) in \p Out.
bool runVmDirected(const vm::Interp &VM, const std::vector<Directive> &Dirs,
                   uint64_t MaxSteps, search::Bug &Out) {
  vm::State S = VM.initialState();
  vm::ThreadId Last = vm::InvalidThread;
  size_t Next = 0;
  Out = search::Bug();

  for (uint64_t Index = 0;; ++Index) {
    std::vector<vm::ThreadId> Enabled = VM.enabledThreads(S);
    if (Enabled.empty()) {
      if (S.allDone())
        return false;
      Out.Kind = search::BugKind::Deadlock;
      Out.Message = search::detail::describeDeadlock(VM, S);
      Out.Steps = Out.Schedule.size();
      return true;
    }
    if (Index >= MaxSteps)
      return false; // Runaway candidate (livelocked without the directive).

    vm::ThreadId Tid;
    if (Next < Dirs.size() && Dirs[Next].Index == Index) {
      Tid = Dirs[Next].Tid;
      ++Next;
      if (!contains(Enabled, Tid))
        return false; // Infeasible directive.
    } else {
      Tid = contains(Enabled, Last) ? Last : Enabled[0];
    }
    if (Last != vm::InvalidThread && Tid != Last && contains(Enabled, Last))
      ++Out.Preemptions;

    vm::StepResult R = VM.step(S, Tid);
    Out.Schedule.push_back(Tid);
    Last = Tid;

    if (R.Status == vm::StepStatus::AssertFailed ||
        R.Status == vm::StepStatus::ModelError) {
      Out.Kind = R.Status == vm::StepStatus::AssertFailed
                     ? search::BugKind::AssertFailure
                     : search::BugKind::ModelError;
      Out.Message = R.Status == vm::StepStatus::AssertFailed
                        ? VM.program().Messages[R.MsgId]
                        : R.ModelErrorText;
      Out.Steps = Out.Schedule.size();
      return true;
    }
  }
}

/// Decomposes a recorded VM schedule into directives; false when the
/// schedule is not replayable (corrupt artifact).
bool extractVmDirectives(const vm::Interp &VM,
                         const std::vector<vm::ThreadId> &Sched,
                         std::vector<Directive> &Out) {
  vm::State S = VM.initialState();
  vm::ThreadId Last = vm::InvalidThread;
  for (size_t I = 0; I < Sched.size(); ++I) {
    std::vector<vm::ThreadId> Enabled = VM.enabledThreads(S);
    vm::ThreadId Tid = Sched[I];
    if (!contains(Enabled, Tid))
      return false;
    vm::ThreadId Def = contains(Enabled, Last) ? Last : Enabled[0];
    if (Tid != Def)
      Out.push_back({I, Tid});
    VM.step(S, Tid);
    Last = Tid;
  }
  return true;
}

} // namespace

MinimizeResult minimizeVm(const ReproArtifact &A, const vm::Program &Prog) {
  MinimizeResult Failed;
  vm::Interp VM(Prog);
  unsigned Replays = 0;

  std::vector<Directive> Dirs;
  if (!extractVmDirectives(VM, A.Found.Schedule, Dirs))
    return Failed;

  // Candidate executions may legitimately run past the recorded length
  // once a directive is dropped; cap generously to catch true runaways.
  uint64_t MaxSteps =
      std::max<uint64_t>(1u << 16, 16 * (A.Found.Steps + 1));

  auto Try = [&](const std::vector<Directive> &Cand,
                 search::Bug &Out) -> bool {
    search::Bug B;
    if (!runVmDirected(VM, Cand, MaxSteps, B))
      return false;
    if (B.Kind != A.Found.Kind || B.Message != A.Found.Message)
      return false;
    Out = std::move(B);
    return true;
  };

  search::Bug Baseline;
  ++Replays;
  Failed.Replays = Replays;
  if (!Try(Dirs, Baseline))
    return Failed;

  size_t Before = Dirs.size();
  search::Bug Best = std::move(Baseline);
  std::vector<Directive> Min = ddmin(std::move(Dirs), Try, Replays, Best);
  return finishResult(A, Replays, Before, Min.size(), std::move(Best));
}

} // namespace icb::session
