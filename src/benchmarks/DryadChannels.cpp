//===- benchmarks/DryadChannels.cpp - Dryad channel library ---------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/DryadChannels.h"
#include "rt/Atomic.h"
#include "rt/Managed.h"
#include "rt/SharedVar.h"
#include "rt/Sync.h"
#include "rt/Thread.h"
#include "support/Debug.h"
#include "support/Format.h"
#include <memory>
#include <vector>

using namespace icb;
using namespace icb::rt;
using namespace icb::bench;

const char *icb::bench::dryadBugName(DryadBug Bug) {
  switch (Bug) {
  case DryadBug::None:
    return "none";
  case DryadBug::StatsRace:
    return "stats-race";
  case DryadBug::Fig3Uaf:
    return "fig3-use-after-free";
  case DryadBug::LateWrite:
    return "late-write";
  case DryadBug::AlertLostUpdate:
    return "alert-lost-update";
  case DryadBug::EarlyAck:
    return "early-ack";
  }
  ICB_UNREACHABLE("unknown dryad bug");
}

namespace {

constexpr int StopItem = -7;
constexpr unsigned QueueCap = 8;

/// RChannelReaderImpl's shared state (Figure 3's m_baseCS included).
struct Channel {
  Channel()
      : BaseCS("m_baseCS"), QueueCS("m_queueCS"),
        ItemsSem("itemsAvailable", 0), AckSem("stopAcks", 0),
        Hd("chHead", 0), Tl("chTail", 0), Closing("closing", 0),
        StopSeen("stopSeen", 0), AlertCount("alertCount", 0),
        ProcessedTotal("processedTotal", 0),
        ItemsWritten("itemsWritten", 0),
        WriterStarted("writerStarted", /*ManualReset=*/true) {
    Buf.reserve(QueueCap);
    for (unsigned I = 0; I != QueueCap; ++I)
      Buf.push_back(std::make_unique<SharedVar<int>>(
          strFormat("chBuf[%u]", I), 0));
  }

  Mutex BaseCS;
  Mutex QueueCS;
  Semaphore ItemsSem;
  Semaphore AckSem;
  std::vector<std::unique_ptr<SharedVar<int>>> Buf;
  Atomic<int> Hd;
  Atomic<int> Tl;
  Atomic<int> Closing;
  Atomic<int> StopSeen;
  Atomic<int> AlertCount;
  SharedVar<int> ProcessedTotal; ///< Guarded by BaseCS.
  SharedVar<int> ItemsWritten;   ///< Guarded by QueueCS.
  Event WriterStarted;
};

void enqueue(ManagedPtr<Channel> Ch, int Value) {
  Ch->QueueCS.lock();
  int T = Ch->Tl.load();
  testAssert(T - Ch->Hd.load() < static_cast<int>(QueueCap),
             "Dryad: channel queue overflow");
  Ch->Buf[static_cast<size_t>(T) % QueueCap]->set(Value);
  Ch->Tl.store(T + 1);
  Ch->QueueCS.unlock();
  Ch->ItemsSem.release();
}

int dequeue(ManagedPtr<Channel> Ch) {
  Ch->QueueCS.lock();
  int H = Ch->Hd.load();
  testAssert(H < Ch->Tl.load(), "Dryad: dequeue from an empty channel");
  int Value = Ch->Buf[static_cast<size_t>(H) % QueueCap]->get();
  Ch->Hd.store(H + 1);
  Ch->QueueCS.unlock();
  return Value;
}

/// Figure 3's RChannelReaderImpl::AlertApplication.
void alertApplication(ManagedPtr<Channel> Ch, DryadBug Bug) {
  if (Bug == DryadBug::AlertLostUpdate) {
    // BUG: count the alert with a load/store pair before entering the
    // critical section; concurrent alerts lose an update.
    int A = Ch->AlertCount.load();
    Ch->AlertCount.store(A + 1);
  }
  // Notify application.
  // XXX: Preempt here for the bug (Figure 3): after this point `Ch` may
  // already have been deleted by TestChannel.
  Ch->BaseCS.lock(); // EnterCriticalSection(&m_baseCS).
  if (Bug != DryadBug::AlertLostUpdate)
    Ch->AlertCount.fetchAdd(1);
  Ch->BaseCS.unlock(); // LeaveCriticalSection(&m_baseCS).
}

/// Worker thread body: drain items; on the stop sentinel, acknowledge and
/// run the alert/cleanup path, then exit.
void workerBody(ManagedPtr<Channel> Ch, const DryadConfig &Config) {
  int Pending = 0; // Batched statistics, flushed on exit.
  while (true) {
    Ch->ItemsSem.acquire();
    if (Config.Bug == DryadBug::StatsRace) {
      // BUG: peek at the producer's statistic before taking the queue
      // lock; nothing orders this read after the producer's writes.
      (void)Ch->ItemsWritten.get();
    }
    int Value = dequeue(Ch);
    if (Value == StopItem) {
      Ch->StopSeen.store(1);
      if (Config.Bug == DryadBug::EarlyAck) {
        // BUG: acknowledge the stop before flushing the pending
        // statistics; close() can observe a stale total.
        Ch->AckSem.release();
        Ch->BaseCS.lock();
        Ch->ProcessedTotal.set(Ch->ProcessedTotal.get() + Pending);
        Ch->BaseCS.unlock();
      } else {
        Ch->BaseCS.lock();
        Ch->ProcessedTotal.set(Ch->ProcessedTotal.get() + Pending);
        Ch->BaseCS.unlock();
        Ch->AckSem.release();
      }
      alertApplication(Ch, Config.Bug);
      return;
    }
    testAssert(!(Config.Bug == DryadBug::LateWrite &&
                 Ch->StopSeen.load() != 0),
               "Dryad: ordinary item received after channel stop");
    ++Pending;
  }
}

/// The producer ("vertex") writing items into the channel.
void producerBody(ManagedPtr<Channel> Ch, const DryadConfig &Config) {
  Ch->WriterStarted.set();
  for (unsigned I = 0; I != Config.Items; ++I) {
    if (Config.Bug == DryadBug::LateWrite) {
      // BUG: check-then-act against close(): the flag check and the
      // enqueue are not atomic.
      if (Ch->Closing.load() != 0)
        return;
      enqueue(Ch, static_cast<int>(I));
    } else {
      Ch->QueueCS.lock();
      bool Open = Ch->Closing.load() == 0;
      Ch->QueueCS.unlock();
      if (!Open)
        return;
      enqueue(Ch, static_cast<int>(I));
    }
    Ch->QueueCS.lock();
    Ch->ItemsWritten.set(Ch->ItemsWritten.get() + 1);
    Ch->QueueCS.unlock();
  }
}

/// RChannelReader::Close(): mark closing, send one stop per worker, wait
/// for every worker's acknowledgement. Per Figure 3 this does *not* wait
/// for the workers to finish their alert/cleanup path.
void closeChannel(ManagedPtr<Channel> Ch, const DryadConfig &Config) {
  Ch->Closing.store(1);
  for (unsigned W = 0; W != Config.Workers; ++W)
    enqueue(Ch, StopItem);
  for (unsigned W = 0; W != Config.Workers; ++W)
    Ch->AckSem.acquire();
  if (Config.Bug == DryadBug::LateWrite) {
    // The channel is closed; nothing may be left in the queue.
    Ch->QueueCS.lock();
    testAssert(Ch->Hd.load() == Ch->Tl.load(),
               "Dryad: closed channel still holds items");
    Ch->QueueCS.unlock();
  }
  if (Config.Bug == DryadBug::EarlyAck) {
    Ch->BaseCS.lock();
    int Total = Ch->ProcessedTotal.get();
    Ch->BaseCS.unlock();
    testAssert(Total == static_cast<int>(Config.Items),
               "Dryad: close() observed a stale processed total");
  }
}

} // namespace

rt::TestCase icb::bench::dryadTest(DryadConfig Config) {
  std::string Name = strFormat("dryad-%uw-%ui-%s", Config.Workers,
                               Config.Items, dryadBugName(Config.Bug));
  return {Name, [Config] {
    ManagedPtr<Channel> Ch = makeManaged<Channel>("Channel");
    // Creating a channel allocates worker threads (Figure 3).
    std::vector<std::unique_ptr<Thread>> Workers;
    Workers.reserve(Config.Workers);
    for (unsigned W = 0; W != Config.Workers; ++W)
      Workers.push_back(std::make_unique<Thread>(
          [Ch, Config] { workerBody(Ch, Config); },
          strFormat("chWorker%u", W)));
    Thread Producer([Ch, Config] { producerBody(Ch, Config); }, "producer");

    Ch->WriterStarted.wait();
    if (Config.Bug != DryadBug::LateWrite)
      Producer.join(); // Correct drivers wait for the writer first.

    closeChannel(Ch, Config);

    if (Config.Bug == DryadBug::Fig3Uaf) {
      // Figure 3: "wrong assumption that channel->Close() waits for worker
      // threads to be finished" — delete while alerts may be in flight.
      Ch.destroy();
      for (auto &W : Workers)
        W->join();
      return;
    }

    for (auto &W : Workers)
      W->join();
    if (Config.Bug == DryadBug::LateWrite) {
      Producer.join();
      Ch->QueueCS.lock();
      testAssert(Ch->Hd.load() == Ch->Tl.load(),
                 "Dryad: closed channel still holds items");
      Ch->QueueCS.unlock();
    }
    testAssert(Ch->AlertCount.load() == static_cast<int>(Config.Workers),
               "Dryad: alert notifications were lost");
    Ch.destroy();
  }};
}
