//===- benchmarks/BluetoothModel.cpp - Bluetooth as a VM model ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/BluetoothModel.h"
#include "support/Format.h"
#include "vm/Builder.h"

using namespace icb;
using namespace icb::vm;

namespace {

struct BtVars {
  GlobalVar PendingIo;
  GlobalVar StoppingFlag;
  GlobalVar Stopped;
  EventVar StoppingEvent;
};

/// Emits the shared reference-drop: `if (--pendingIo == 0) set(event)`.
/// AddG is interlocked, mirroring the runtime form's fetchAdd.
void emitRelease(ThreadBuilder &T, const BtVars &V) {
  Label Skip = T.newLabel();
  T.imm(Reg{1}, -1);
  T.addG(Reg{0}, V.PendingIo, Reg{1}); // r0 = post-decrement value.
  T.bnz(Reg{0}, Skip);
  T.setE(V.StoppingEvent);
  T.bind(Skip);
}

void emitWorker(ThreadBuilder &W, const BtVars &V, bool WithBug) {
  Label Out = W.newLabel();
  if (WithBug) {
    // BUG: check-then-act — the flag check and the pendingIo increment
    // are separate shared accesses.
    W.loadG(Reg{2}, V.StoppingFlag);
    W.bnz(Reg{2}, Out);
    W.imm(Reg{1}, 1);
    W.addG(Reg{0}, V.PendingIo, Reg{1});
  } else {
    // Correct: publish the reference first, then re-check and back out.
    Label Entered = W.newLabel();
    W.imm(Reg{1}, 1);
    W.addG(Reg{0}, V.PendingIo, Reg{1});
    W.loadG(Reg{2}, V.StoppingFlag);
    W.bz(Reg{2}, Entered);
    emitRelease(W, V);
    W.jmp(Out);
    W.bind(Entered);
  }
  // Inside the driver: it must not have been stopped under us.
  W.loadG(Reg{3}, V.Stopped);
  W.logicalNot(Reg{4}, Reg{3});
  W.assertTrue(Reg{4},
               "Bluetooth: driver used by worker after stop completed");
  emitRelease(W, V);
  W.bind(Out);
  W.halt();
}

void emitStopper(ThreadBuilder &S, const BtVars &V) {
  S.storeImm(V.StoppingFlag, 1, Reg{0});
  emitRelease(S, V); // Drop the initial reference.
  S.waitE(V.StoppingEvent);
  S.storeImm(V.Stopped, 1, Reg{0});
  S.halt();
}

} // namespace

vm::Program icb::bench::bluetoothModel(unsigned Workers, bool WithBug) {
  ProgramBuilder PB(strFormat("bluetooth-model-%uw%s", Workers,
                              WithBug ? "-bug" : ""));
  BtVars V;
  V.PendingIo = PB.addGlobal("pendingIo", 1);
  V.StoppingFlag = PB.addGlobal("stoppingFlag", 0);
  V.Stopped = PB.addGlobal("stopped", 0);
  V.StoppingEvent = PB.addEvent("stoppingEvent", /*ManualReset=*/true);

  emitStopper(PB.addThread("stopper"), V);
  for (unsigned I = 0; I != Workers; ++I)
    emitWorker(PB.addThread(strFormat("worker%u", I)), V, WithBug);
  return PB.build();
}
