//===- benchmarks/TxnManagerModel.cpp - Transaction manager model ---------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/TxnManagerModel.h"
#include "support/Debug.h"
#include "support/Format.h"
#include "vm/Builder.h"

using namespace icb;
using namespace icb::vm;
using namespace icb::bench;

const char *icb::bench::txnBugName(TxnBug Bug) {
  switch (Bug) {
  case TxnBug::None:
    return "none";
  case TxnBug::CommitStomp:
    return "commit-stomp";
  case TxnBug::ReapCollision:
    return "reap-collision";
  case TxnBug::CommitUpsert:
    return "commit-upsert";
  }
  ICB_UNREACHABLE("unknown txn bug");
}

namespace {

/// Transaction states.
constexpr int64_t Empty = 0;
constexpr int64_t Active = 1;
constexpr int64_t Committed = 2;

/// All the shared objects of the model.
struct TxnVars {
  GlobalVar State0; ///< Transaction in bucket 0.
  GlobalVar State1; ///< Transaction in bucket 1.
  GlobalVar Owner0; ///< Claim flag of the buggy bucket-0 protocols.
  GlobalVar Busy0;  ///< Timer-inside-critical marker (CommitStomp).
  GlobalVar Owner1; ///< Claim flag of the buggy bucket-1 latch.
  GlobalVar Busy1;  ///< Reaper-inside-critical marker (ReapCollision).
  LockVar Lock0;
  LockVar Lock1;
};

/// Emits `lock; if (state == Active) state = NewValue; unlock`.
void emitLockedTransition(ThreadBuilder &T, const TxnVars &V, LockVar Lock,
                          GlobalVar State, int64_t NewValue) {
  (void)V;
  Label Skip = T.newLabel();
  T.lock(Lock);
  T.loadG(Reg{0}, State);
  T.imm(Reg{1}, Active);
  T.eq(Reg{2}, Reg{0}, Reg{1});
  T.bz(Reg{2}, Skip);
  T.storeImm(State, NewValue, Reg{3});
  T.bind(Skip);
  T.unlock(Lock);
}

/// Worker side of ReapCollision: the delete path claims bucket 1 with the
/// same broken check-then-announce latch the CommitStomp commit uses on
/// bucket 0 (the same idiom copy-pasted onto a second path — lifelike),
/// and asserts the reaper is not mid-flight.
void emitBuggyDelete(ThreadBuilder &W, const TxnVars &V) {
  Label Fallback = W.newLabel();
  Label Done = W.newLabel();
  W.loadG(Reg{0}, V.Owner1); // Check...
  W.bnz(Reg{0}, Fallback);
  W.storeImm(V.Owner1, 1, Reg{1}); // ...then announce (BUG: not atomic).
  W.loadG(Reg{2}, V.Busy1);
  W.logicalNot(Reg{3}, Reg{2});
  W.assertTrue(Reg{3}, "txnmgr: delete entered bucket 1 while the reaper "
                       "was mid-flight");
  W.storeImm(V.State1, Empty, Reg{4});
  W.storeImm(V.Owner1, 0, Reg{5});
  W.jmp(Done);
  W.bind(Fallback);
  W.lock(V.Lock1);
  W.storeImm(V.State1, Empty, Reg{6});
  W.unlock(V.Lock1);
  W.bind(Done);
}

/// Timer side of ReapCollision: the reaper enters bucket 1 through the
/// same broken latch, marking itself busy while inside.
void emitBuggyReap(ThreadBuilder &T, const TxnVars &V) {
  Label Skip = T.newLabel();
  Label NoFlush = T.newLabel();
  T.loadG(Reg{0}, V.Owner1);
  T.bnz(Reg{0}, Skip);
  T.storeImm(V.Owner1, 1, Reg{1});
  T.storeImm(V.Busy1, 1, Reg{2});
  T.loadG(Reg{3}, V.State1);
  T.imm(Reg{4}, Active);
  T.eq(Reg{5}, Reg{3}, Reg{4});
  T.bz(Reg{5}, NoFlush);
  T.storeImm(V.State1, Empty, Reg{6});
  T.bind(NoFlush);
  T.storeImm(V.Busy1, 0, Reg{7});
  T.storeImm(V.Owner1, 0, Reg{8});
  T.bind(Skip);
}

/// Worker thread: create both transactions, commit txn0, delete txn1,
/// join the timer, run the final audits.
void emitWorker(ThreadBuilder &W, const TxnVars &V, TxnBug Bug,
                ThreadRef Timer) {
  // create(txn0); create(txn1).
  W.lock(V.Lock0);
  W.storeImm(V.State0, Active, Reg{0});
  W.unlock(V.Lock0);
  W.lock(V.Lock1);
  W.storeImm(V.State1, Active, Reg{0});
  W.unlock(V.Lock1);

  // commit(txn0).
  switch (Bug) {
  case TxnBug::CommitStomp: {
    // Broken lock elision: claim the bucket with a check-then-announce
    // flag (not atomic), then assert no flush is mid-flight.
    Label Fallback = W.newLabel();
    Label SkipCommit = W.newLabel();
    Label CommitEnd = W.newLabel();
    W.loadG(Reg{0}, V.Owner0); // Check...
    W.bnz(Reg{0}, Fallback);
    W.storeImm(V.Owner0, 1, Reg{1}); // ...then announce (BUG: not atomic).
    W.loadG(Reg{2}, V.Busy0);
    W.logicalNot(Reg{3}, Reg{2});
    W.assertTrue(Reg{3}, "txnmgr: commit entered the table while the "
                         "timer's flush was mid-critical");
    W.loadG(Reg{4}, V.State0);
    W.imm(Reg{5}, Active);
    W.eq(Reg{6}, Reg{4}, Reg{5});
    W.bz(Reg{6}, SkipCommit);
    W.storeImm(V.State0, Committed, Reg{7});
    W.bind(SkipCommit);
    W.storeImm(V.Owner0, 0, Reg{8});
    W.jmp(CommitEnd);
    W.bind(Fallback);
    emitLockedTransition(W, V, V.Lock0, V.State0, Committed);
    W.bind(CommitEnd);
    break;
  }
  case TxnBug::CommitUpsert: {
    // Same broken claim, but the commit tolerates a flushed transaction
    // by re-creating it; the post-commit audit is the only detector.
    Label Fallback = W.newLabel();
    Label DoCommit = W.newLabel();
    Label Verify = W.newLabel();
    W.loadG(Reg{0}, V.Owner0);
    W.bnz(Reg{0}, Fallback);
    W.storeImm(V.Owner0, 1, Reg{1});
    W.loadG(Reg{2}, V.State0);
    W.imm(Reg{3}, Active);
    W.eq(Reg{4}, Reg{2}, Reg{3});
    W.bnz(Reg{4}, DoCommit);
    W.storeImm(V.State0, Active, Reg{5}); // Upsert a flushed transaction.
    W.bind(DoCommit);
    W.storeImm(V.State0, Committed, Reg{6});
    W.storeImm(V.Owner0, 0, Reg{7});
    W.jmp(Verify);
    W.bind(Fallback);
    // The fallback also upserts: commit must never be silently dropped.
    W.lock(V.Lock0);
    W.storeImm(V.State0, Committed, Reg{6});
    W.unlock(V.Lock0);
    W.bind(Verify);
    W.assertGlobalEq(V.State0, Committed, Reg{8}, Reg{9},
                     "txnmgr: committed transaction lost to a concurrent "
                     "flush");
    break;
  }
  case TxnBug::None:
  case TxnBug::ReapCollision:
    emitLockedTransition(W, V, V.Lock0, V.State0, Committed);
    break;
  }

  // delete(txn1).
  if (Bug == TxnBug::ReapCollision) {
    emitBuggyDelete(W, V);
  } else {
    Label Skip = W.newLabel();
    W.lock(V.Lock1);
    W.loadG(Reg{0}, V.State1);
    W.bz(Reg{0}, Skip);
    W.storeImm(V.State1, Empty, Reg{1});
    W.bind(Skip);
    W.unlock(V.Lock1);
  }

  W.join(Timer);
  W.halt();
}

/// Timer thread: TimerRounds passes flushing active transactions from
/// both buckets.
void emitTimer(ThreadBuilder &T, const TxnVars &V, TxnBug Bug,
               unsigned Rounds) {
  constexpr Reg RoundReg{15};
  Label Loop = T.newLabel();
  Label End = T.newLabel();
  T.imm(RoundReg, static_cast<int64_t>(Rounds));
  T.bind(Loop);
  T.bz(RoundReg, End);

  // Flush bucket 0.
  switch (Bug) {
  case TxnBug::CommitStomp:
  case TxnBug::CommitUpsert: {
    // The timer uses the same broken claim protocol for its flush.
    Label Skip = T.newLabel();
    Label NoFlush = T.newLabel();
    T.loadG(Reg{0}, V.Owner0);
    T.bnz(Reg{0}, Skip);
    T.storeImm(V.Owner0, 1, Reg{1});
    if (Bug == TxnBug::CommitStomp)
      T.storeImm(V.Busy0, 1, Reg{2});
    T.loadG(Reg{3}, V.State0);
    T.imm(Reg{4}, Active);
    T.eq(Reg{5}, Reg{3}, Reg{4});
    T.bz(Reg{5}, NoFlush);
    T.storeImm(V.State0, Empty, Reg{6});
    T.bind(NoFlush);
    if (Bug == TxnBug::CommitStomp)
      T.storeImm(V.Busy0, 0, Reg{7});
    T.storeImm(V.Owner0, 0, Reg{8});
    T.bind(Skip);
    break;
  }
  case TxnBug::None:
  case TxnBug::ReapCollision:
    emitLockedTransition(T, V, V.Lock0, V.State0, Empty);
    break;
  }

  // Reap bucket 1.
  if (Bug == TxnBug::ReapCollision)
    emitBuggyReap(T, V);
  else
    emitLockedTransition(T, V, V.Lock1, V.State1, Empty);

  T.imm(Reg{14}, 1);
  T.sub(RoundReg, RoundReg, Reg{14});
  T.jmp(Loop);
  T.bind(End);
  T.halt();
}

} // namespace

vm::Program icb::bench::txnManagerModel(TxnConfig Config) {
  ProgramBuilder PB(strFormat("txnmgr-%ur-%s", Config.TimerRounds,
                              txnBugName(Config.Bug)));
  TxnVars V;
  V.State0 = PB.addGlobal("state0", Empty);
  V.State1 = PB.addGlobal("state1", Empty);
  V.Owner0 = PB.addGlobal("owner0", 0);
  V.Busy0 = PB.addGlobal("busy0", 0);
  V.Owner1 = PB.addGlobal("owner1", 0);
  V.Busy1 = PB.addGlobal("busy1", 0);
  V.Lock0 = PB.addLock("bucket0");
  V.Lock1 = PB.addLock("bucket1");

  ThreadBuilder &Worker = PB.addThread("worker");
  ThreadBuilder &Timer = PB.addThread("timer");
  emitWorker(Worker, V, Config.Bug, Timer.ref());
  emitTimer(Timer, V, Config.Bug, Config.TimerRounds);
  return PB.build();
}
