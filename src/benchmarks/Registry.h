//===- benchmarks/Registry.h - Benchmark metadata and factories -*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One place that knows every benchmark of the evaluation: its name as it
/// appears in the paper's tables, its size (lines of our reimplementation,
/// the Table 1 "LOC" surrogate), the thread count its driver allocates,
/// the default (correct or representative) test, and each seeded bug
/// variant with the preemption bound the paper reports for it. The table
/// and figure harnesses iterate this registry instead of hard-coding
/// benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_BENCHMARKS_REGISTRY_H
#define ICB_BENCHMARKS_REGISTRY_H

#include "rt/Scheduler.h"
#include "vm/Program.h"
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace icb::bench {

/// One seeded defect of a benchmark.
struct BugVariant {
  std::string Label;
  /// Preemption bound at which the paper (Table 2) exposes it.
  unsigned PaperBound = 0;
  /// Factory for the runtime form (null for model-only benchmarks).
  std::function<rt::TestCase()> MakeRt;
  /// Factory for the model form (nullopt-producing when runtime-only).
  std::function<vm::Program()> MakeVm;

  bool isModel() const { return static_cast<bool>(MakeVm); }
};

/// One benchmark program of the evaluation.
struct BenchmarkEntry {
  /// Name as printed in the paper's tables ("Bluetooth", "APE", ...).
  std::string Name;
  /// Lines of our reimplementation (Table 1's LOC surrogate).
  unsigned Loc = 0;
  /// Threads the test driver allocates (Table 1's "Max Num Threads").
  unsigned DriverThreads = 0;
  /// True when the benchmark row appears in Table 1.
  bool InTable1 = false;
  /// True when the benchmark row appears in Table 2.
  bool InTable2 = false;
  /// Correct/default configuration (for characteristics and coverage).
  std::function<rt::TestCase()> MakeDefaultRt; ///< Null for model-only.
  std::function<vm::Program()> MakeDefaultVm;  ///< Null for runtime-only.
  /// The seeded defects (Table 2's bug rows).
  std::vector<BugVariant> Bugs;
};

/// All benchmarks in the paper's table order.
const std::vector<BenchmarkEntry> &allBenchmarks();

/// Looks a benchmark up by name; null if unknown.
const BenchmarkEntry *findBenchmark(const std::string &Name);

} // namespace icb::bench

#endif // ICB_BENCHMARKS_REGISTRY_H
