//===- benchmarks/FileSystemModel.h - File system model ---------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The file system model: "a simplified model of a file system derived
/// [from] prior work (see Figure 7 in [Flanagan-Godefroid POPL'05]). The
/// program emulates processes creating files and thereby allocating inodes
/// and blocks. Each inode and block is protected by a lock."
///
/// Thread tid picks inode tid % NumInodes; if the inode has no block, it
/// searches the block table (locking each candidate) for a free block and
/// claims it. The model has no bug; it is a coverage benchmark (Figure 4:
/// full coverage within 4 preemptions at the paper's scale).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_BENCHMARKS_FILESYSTEMMODEL_H
#define ICB_BENCHMARKS_FILESYSTEMMODEL_H

#include "rt/Scheduler.h"

namespace icb::bench {

struct FileSystemConfig {
  /// The paper uses 26 blocks / 32 inodes with up to 4 threads; smaller
  /// defaults keep exhaustive search tractable on a laptop.
  unsigned Threads = 3;
  unsigned NumInodes = 4;
  unsigned NumBlocks = 4;
};

/// Builds the closed file-system test.
rt::TestCase fileSystemTest(FileSystemConfig Config);

} // namespace icb::bench

#endif // ICB_BENCHMARKS_FILESYSTEMMODEL_H
