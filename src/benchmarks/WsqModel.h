//===- benchmarks/WsqModel.h - Work-stealing queue as a VM model -*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work-stealing queue benchmark expressed as a ZING-side model program
/// (the same THE protocol as benchmarks/WorkStealingQueue.h on the
/// stateless runtime): a victim pushes and pops at the tail, a thief steals
/// at the head under a lock, and the owner falls back to that lock only
/// when contending for the last element. The harness checks every pushed
/// item is taken exactly once.
///
/// Because the victim never overflows the buffer, Items slot globals
/// suffice; push writes the item number into Slots[t] (via a compare chain
/// — the VM has no indexed addressing) before publishing the tail, and
/// pop/steal read the slot back. Per-item take counters turn duplicate
/// takes and lost items into assertion failures.
///
/// The model form is what the parallel ICB engine explores, so this is
/// also the workload of bench/parallel_scaling and of the determinism
/// tests (identical results for any --jobs value). The seeded bug variants
/// are exposed here through the builder API only — Table 2's registry rows
/// stay exactly as the paper reports them (the runtime-form variants).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_BENCHMARKS_WSQMODEL_H
#define ICB_BENCHMARKS_WSQMODEL_H

#include "benchmarks/WorkStealingQueue.h"
#include "vm/Program.h"

namespace icb::bench {

struct WsqModelConfig {
  /// Items the victim pushes (popping some, the thief stealing others).
  unsigned Items = 3;
  /// Reuses the runtime form's bug taxonomy (WsqBug::None = correct).
  WsqBug Bug = WsqBug::None;
};

/// Builds the victim/thief work-stealing test as a model-VM program.
vm::Program wsqModel(WsqModelConfig Config);

} // namespace icb::bench

#endif // ICB_BENCHMARKS_WSQMODEL_H
