//===- benchmarks/WsqModel.cpp - Work-stealing queue as a VM model --------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/WsqModel.h"
#include "support/Format.h"
#include "vm/Builder.h"

using namespace icb;
using namespace icb::vm;
using namespace icb::bench;

namespace {

constexpr int64_t Empty = -1;

// Register conventions shared by the emit helpers below. The pop/steal
// emitters use RT/RH/RCmp/RInc, the slot chains and Take use RA/RB, the
// popped value travels in RVal, and the audit counter RCount survives
// everything else.
constexpr Reg RT{0};   ///< Tail-side working value (t).
constexpr Reg ROne{1}; ///< The constant 1.
constexpr Reg RH{2};   ///< Head-side working value (h).
constexpr Reg RTmp{3};
constexpr Reg RCmp{4};
constexpr Reg RInc{5};
constexpr Reg RA{6};
constexpr Reg RB{7};
constexpr Reg RCount{8};
constexpr Reg RVal{9}; ///< Value returned by pop/steal (-1 = empty).

struct WsqVars {
  GlobalVar Head;
  GlobalVar Tail;
  std::vector<GlobalVar> Slots; ///< The buffer; Tail never exceeds Items.
  std::vector<GlobalVar> Taken; ///< One take counter per item.
  LockVar QLock;
  unsigned Items = 0;
};

/// The VM has no indexed addressing, so dynamic slot accesses compile to a
/// compare chain over the (small, fixed) buffer. RVal = Slots[Idx].
/// Clobbers RA/RB; preserves Idx.
void emitSlotRead(ThreadBuilder &B, const WsqVars &V, Reg Idx) {
  Label End = B.newLabel();
  for (unsigned I = 0; I != V.Slots.size(); ++I) {
    Label Next = B.newLabel();
    B.imm(RA, static_cast<int64_t>(I));
    B.eq(RB, Idx, RA);
    B.bz(RB, Next);
    B.loadG(RVal, V.Slots[I]);
    B.jmp(End);
    B.bind(Next);
  }
  B.imm(RA, 0);
  B.assertTrue(RA, "wsq-model: slot index out of range");
  B.bind(End);
}

/// Slots[Idx] = Value (a compile-time constant: the victim pushes item I
/// at its I-th push). Clobbers RA/RB; preserves Idx.
void emitSlotWrite(ThreadBuilder &B, const WsqVars &V, Reg Idx,
                   int64_t Value) {
  Label End = B.newLabel();
  for (unsigned I = 0; I != V.Slots.size(); ++I) {
    Label Next = B.newLabel();
    B.imm(RA, static_cast<int64_t>(I));
    B.eq(RB, Idx, RA);
    B.bz(RB, Next);
    B.storeImm(V.Slots[I], Value, RB);
    B.jmp(End);
    B.bind(Next);
  }
  B.imm(RA, 0);
  B.assertTrue(RA, "wsq-model: slot index out of range");
  B.bind(End);
}

/// Owner-side push of the constant \p Value: store the slot, then publish
/// the tail (the THE ordering).
void emitPush(ThreadBuilder &B, const WsqVars &V, int64_t Value) {
  B.loadG(RT, V.Tail);
  emitSlotWrite(B, V, RT, Value);
  B.imm(ROne, 1);
  B.add(RT, RT, ROne);
  B.storeG(V.Tail, RT);
}

/// BUG (PopCheckThenAct): conflict check before the claim — a preemption
/// between the check and the tail store lets the thief steal slot t first;
/// the owner then returns the same element.
void emitPopCheckThenAct(ThreadBuilder &B, const WsqVars &V) {
  Label EmptyL = B.newLabel();
  Label Done = B.newLabel();
  B.loadG(RT, V.Tail);
  B.imm(ROne, 1);
  B.sub(RT, RT, ROne); // t = Tail - 1.
  B.loadG(RH, V.Head);
  B.le(RCmp, RH, RT); // h <= t: something to take.
  B.bz(RCmp, EmptyL);
  // <-- preempt here: the thief can take slot t before we claim it.
  B.storeG(V.Tail, RT);
  emitSlotRead(B, V, RT);
  B.jmp(Done);
  B.bind(EmptyL);
  B.imm(RVal, Empty);
  B.bind(Done);
}

/// Owner-side pop following the THE protocol: claim by publishing the
/// decremented tail, then look for a conflict. The conflict path is the
/// correct lock fallback, or (PopRetryNoLock) the buggy lock-free retry.
void emitPop(ThreadBuilder &B, const WsqVars &V, WsqBug Bug) {
  if (Bug == WsqBug::PopCheckThenAct) {
    emitPopCheckThenAct(B, V);
    return;
  }
  Label FastRet = B.newLabel();
  Label Done = B.newLabel();
  B.loadG(RT, V.Tail);
  B.imm(ROne, 1);
  B.sub(RT, RT, ROne);  // t = Tail - 1.
  B.storeG(V.Tail, RT); // Claim first (THE).
  B.loadG(RH, V.Head);
  B.sub(RTmp, RT, ROne);
  B.le(RCmp, RH, RTmp); // h <= t - 1: at least two elements, t is safe.
  B.bnz(RCmp, FastRet);
  B.add(RInc, RT, ROne);
  B.storeG(V.Tail, RInc); // Restore; settle the last-element race below.
  if (Bug == WsqBug::PopRetryNoLock) {
    // BUG: retry the optimistic protocol instead of taking the lock. The
    // unsafe case is the last element (h == t) with the thief parked
    // mid-steal inside its critical section.
    Label Fast2 = B.newLabel();
    B.loadG(RT, V.Tail);
    B.sub(RT, RT, ROne);
    B.storeG(V.Tail, RT);
    B.loadG(RH, V.Head);
    B.le(RCmp, RH, RT); // Unsafe for h == t: the thief may take it too.
    B.bnz(RCmp, Fast2);
    B.add(RInc, RT, ROne);
    B.storeG(V.Tail, RInc);
    B.imm(RVal, Empty);
    B.jmp(Done);
    B.bind(Fast2);
    emitSlotRead(B, V, RT);
    B.jmp(Done);
  } else {
    // Correct conflict path: re-run the claim while holding the thief's
    // lock, so exactly one side takes the last element.
    Label LockedRet = B.newLabel();
    B.lock(V.QLock);
    B.loadG(RT, V.Tail);
    B.sub(RT, RT, ROne);
    B.storeG(V.Tail, RT);
    B.loadG(RH, V.Head);
    B.le(RCmp, RH, RT);
    B.bnz(RCmp, LockedRet);
    B.add(RInc, RT, ROne);
    B.storeG(V.Tail, RInc); // Restore: the deque is empty.
    B.unlock(V.QLock);
    B.imm(RVal, Empty);
    B.jmp(Done);
    B.bind(LockedRet);
    emitSlotRead(B, V, RT);
    B.unlock(V.QLock);
    B.jmp(Done);
  }
  B.bind(FastRet);
  emitSlotRead(B, V, RT);
  B.bind(Done);
}

/// Thief-side steal from the head, under the lock unless the
/// UnsynchronizedSteal bug drops it.
void emitSteal(ThreadBuilder &B, const WsqVars &V, WsqBug Bug) {
  bool Locked = Bug != WsqBug::UnsynchronizedSteal;
  Label EmptyL = B.newLabel();
  Label Done = B.newLabel();
  if (Locked)
    B.lock(V.QLock);
  B.loadG(RH, V.Head);
  B.loadG(RT, V.Tail);
  B.lt(RCmp, RH, RT);
  B.bz(RCmp, EmptyL);
  emitSlotRead(B, V, RH);
  // <-- without the lock, the owner can pop this same element before the
  // head claim below is published.
  B.imm(ROne, 1);
  B.add(RInc, RH, ROne);
  B.storeG(V.Head, RInc);
  if (Locked)
    B.unlock(V.QLock);
  B.jmp(Done);
  B.bind(EmptyL);
  if (Locked)
    B.unlock(V.QLock);
  B.imm(RVal, Empty);
  B.bind(Done);
}

/// Audits the value in RVal: -1 is ignored, anything else must be a valid
/// item whose take counter goes 0 -> 1 exactly once.
void emitTake(ThreadBuilder &B, const WsqVars &V) {
  Label Skip = B.newLabel();
  B.imm(RA, Empty);
  B.eq(RB, RVal, RA);
  B.bnz(RB, Skip);
  for (unsigned I = 0; I != V.Items; ++I) {
    Label Next = B.newLabel();
    B.imm(RA, static_cast<int64_t>(I));
    B.eq(RB, RVal, RA);
    B.bz(RB, Next);
    B.imm(RA, 1);
    B.addG(RB, V.Taken[I], RA); // Post-add value; must be the first take.
    B.imm(RA, 1);
    B.eq(RB, RB, RA);
    B.assertTrue(RB, "wsq-model: item taken twice (lost/duplicated work)");
    B.jmp(Skip);
    B.bind(Next);
  }
  B.imm(RA, 0);
  B.assertTrue(RA,
               "wsq-model: queue produced an item that was never pushed");
  B.bind(Skip);
}

/// Pops up to Items + 1 times, auditing every value, until empty.
void emitDrain(ThreadBuilder &B, const WsqVars &V, WsqBug Bug) {
  Label End = B.newLabel();
  for (unsigned I = 0; I <= V.Items; ++I) {
    emitPop(B, V, Bug);
    B.imm(RA, Empty);
    B.eq(RB, RVal, RA);
    B.bnz(RB, End);
    emitTake(B, V);
  }
  B.bind(End);
}

} // namespace

Program icb::bench::wsqModel(WsqModelConfig Config) {
  ProgramBuilder P(strFormat("wsq-model-%ui-%s", Config.Items,
                             wsqBugName(Config.Bug)));
  WsqVars V;
  V.Items = Config.Items;
  V.Head = P.addGlobal("head", 0);
  V.Tail = P.addGlobal("tail", 0);
  V.QLock = P.addLock("qlock");
  // Tail never exceeds the net item count, so Items slots suffice (the
  // runtime form's circular buffer never wraps under this driver either).
  for (unsigned I = 0; I != Config.Items; ++I)
    V.Slots.push_back(P.addGlobal(strFormat("slot[%u]", I), Empty));
  for (unsigned I = 0; I != Config.Items; ++I)
    V.Taken.push_back(P.addGlobal(strFormat("taken[%u]", I), 0));

  ThreadBuilder &Victim = P.addThread("victim");
  ThreadBuilder &Thief = P.addThread("thief");

  // Thief: a bounded number of steal attempts keeps every schedule finite
  // (the real thief retries forever).
  for (unsigned I = 0; I != Config.Items; ++I) {
    emitSteal(Thief, V, Config.Bug);
    emitTake(Thief, V);
  }
  Thief.halt();

  // Victim: push all items, popping after every second push, then drain
  // concurrently with the thief.
  for (unsigned I = 0; I != Config.Items; ++I) {
    emitPush(Victim, V, static_cast<int64_t>(I));
    if (I % 2 == 1) {
      emitPop(Victim, V, Config.Bug);
      emitTake(Victim, V);
    }
  }
  emitDrain(Victim, V, Config.Bug);

  // Final audit once the thief is done: drain leftovers (the thief may
  // simply have lost the race), then require every item taken exactly
  // once.
  Victim.join(Thief.ref());
  emitDrain(Victim, V, Config.Bug);
  Victim.imm(RCount, 0);
  for (unsigned I = 0; I != Config.Items; ++I) {
    Victim.loadG(RA, V.Taken[I]);
    Victim.add(RCount, RCount, RA);
  }
  Victim.imm(RA, static_cast<int64_t>(Config.Items));
  Victim.eq(RB, RCount, RA);
  Victim.assertTrue(RB, "wsq-model: items lost (push/take mismatch)");
  Victim.halt();

  return P.build();
}
