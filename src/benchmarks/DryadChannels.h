//===- benchmarks/DryadChannels.h - Dryad channel library -------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Dryad channels benchmark: "Dryad is a distributed execution engine
/// ... The test ... has 5 threads and exercises the shared-memory channel
/// library used for communication between the nodes in the data-flow
/// graph."
///
/// Our substitute is a shared-memory channel: a bounded item queue fed by
/// a producer thread, drained by channel-owned worker threads, with a
/// close()/delete protocol. Five seeded bugs reproduce Table 2's
/// distribution for Dryad (one at preemption bound 0, four at bound 1):
///
///   * StatsRace      (@0) — the items-written statistic is updated by
///     the producer and read by workers without synchronization: a data
///     race in every schedule.
///   * Fig3Uaf        (@1) — the paper's Figure 3 use-after-free,
///     faithfully: workers acknowledge the stop sentinel and *then* run
///     alertApplication(), which enters the channel's m_baseCS critical
///     section. close() returns once all acknowledgements are in —
///     "wrong assumption that channel->Close() waits for worker threads
///     to be finished" — and main deletes the channel. A preemption
///     right before the EnterCriticalSection in alertApplication lets
///     the delete land first.
///   * LateWrite      (@1) — close() does not synchronize with an active
///     writer: the producer's stopping-flag check and its enqueue are not
///     atomic, so an item can land in a closed channel.
///   * AlertLostUpdate(@1) — alertApplication counts alerts with a
///     load/store pair; concurrent alerts lose one.
///   * EarlyAck       (@1) — a worker acknowledges the stop before
///     flushing its pending statistics, so close() can observe a stale
///     total.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_BENCHMARKS_DRYADCHANNELS_H
#define ICB_BENCHMARKS_DRYADCHANNELS_H

#include "rt/Scheduler.h"

namespace icb::bench {

/// Which seeded Dryad defect (if any) is active.
enum class DryadBug : uint8_t {
  None,
  StatsRace,       ///< Exposed with 0 preemptions (data race).
  Fig3Uaf,         ///< Exposed with 1 preemption (use-after-free).
  LateWrite,       ///< Exposed with 1 preemption (assertion).
  AlertLostUpdate, ///< Exposed with 1 preemption (assertion).
  EarlyAck,        ///< Exposed with 1 preemption (assertion).
};

const char *dryadBugName(DryadBug Bug);

struct DryadConfig {
  /// Channel worker threads (paper test: 5 threads total = main +
  /// producer + workers; we default to 3 workers for the same count).
  unsigned Workers = 3;
  unsigned Items = 2;
  DryadBug Bug = DryadBug::None;
};

/// Builds the closed Dryad channel test.
rt::TestCase dryadTest(DryadConfig Config);

} // namespace icb::bench

#endif // ICB_BENCHMARKS_DRYADCHANNELS_H
