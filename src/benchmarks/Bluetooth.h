//===- benchmarks/Bluetooth.h - Bluetooth PnP driver benchmark --*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Bluetooth Plug-and-Play driver benchmark: "a sample Bluetooth PnP
/// driver modified to run as a library in user space ... captures the
/// synchronization and logic required for basic PnP functionality. We
/// wrote a test driver with three threads that emulated the scenario of
/// the driver being stopped when worker threads are performing operations
/// on the driver."
///
/// The synchronization skeleton is the classic pendingIo/stoppingFlag
/// protocol (the same model appears in the KISS paper): worker threads
/// enter the driver by checking the stopping flag and incrementing a
/// pending-I/O count; the stopper raises the flag, drops its own
/// reference, waits for the count to drain, then marks the driver
/// stopped. The known bug (Table 2: one bug, exposed at preemption bound
/// 1) is the non-atomic check-then-increment in the worker entry path: a
/// preemption between the flag check and the increment lets the stopper
/// complete while a worker is still inside the driver.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_BENCHMARKS_BLUETOOTH_H
#define ICB_BENCHMARKS_BLUETOOTH_H

#include "rt/Scheduler.h"

namespace icb::bench {

struct BluetoothConfig {
  /// Worker threads performing driver operations (paper: 2, plus the
  /// stopper = 3 threads).
  unsigned Workers = 2;
  /// Seed the check-then-act bug in the worker entry path.
  bool WithBug = true;
};

/// Builds the closed Bluetooth test (driver + stop-vs-work test driver).
rt::TestCase bluetoothTest(BluetoothConfig Config);

} // namespace icb::bench

#endif // ICB_BENCHMARKS_BLUETOOTH_H
