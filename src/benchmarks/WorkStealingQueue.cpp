//===- benchmarks/WorkStealingQueue.cpp - Cilk THE work stealing ----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/WorkStealingQueue.h"
#include "rt/Atomic.h"
#include "rt/SharedVar.h"
#include "rt/Sync.h"
#include "rt/Thread.h"
#include "support/Debug.h"
#include "support/Format.h"
#include <memory>
#include <vector>

using namespace icb;
using namespace icb::rt;
using namespace icb::bench;

const char *icb::bench::wsqBugName(WsqBug Bug) {
  switch (Bug) {
  case WsqBug::None:
    return "none";
  case WsqBug::PopCheckThenAct:
    return "pop-check-then-act";
  case WsqBug::PopRetryNoLock:
    return "pop-retry-no-lock";
  case WsqBug::UnsynchronizedSteal:
    return "unsynchronized-steal";
  }
  ICB_UNREACHABLE("unknown wsq bug");
}

namespace {

constexpr int Empty = -1;

/// The THE-protocol deque over a bounded circular buffer. Head and Tail
/// are interlocked variables; Slots are plain data, race-checked.
class WsDeque {
public:
  WsDeque(unsigned Capacity, WsqBug Bug)
      : Head("head", 0), Tail("tail", 0), QLock("qlock"), Bug(Bug),
        Mask(static_cast<int>(Capacity) - 1) {
    ICB_ASSERT((Capacity & (Capacity - 1)) == 0,
               "capacity must be a power of two");
    Slots.reserve(Capacity);
    for (unsigned I = 0; I != Capacity; ++I)
      Slots.push_back(std::make_unique<SharedVar<int>>(
          strFormat("slot[%u]", I), Empty));
  }

  /// Owner-side push; the harness never overflows the buffer.
  void push(int Value) {
    int T = Tail.load();
    int H = Head.load();
    testAssert(T - H <= Mask, "wsq: push into a full buffer");
    Slots[static_cast<size_t>(T & Mask)]->set(Value);
    Tail.store(T + 1);
  }

  /// Owner-side pop from the tail (the THE protocol: claim by publishing
  /// the decremented tail, then look for a conflict).
  int pop() {
    if (Bug == WsqBug::PopCheckThenAct)
      return popCheckThenAct();
    int T = Tail.load() - 1;
    Tail.store(T);
    int H = Head.load();
    if (H <= T - 1)
      return Slots[static_cast<size_t>(T & Mask)]->get(); // >= 2 elements.
    // Possible conflict with the thief over the last element (H == T) or
    // the deque is already empty (H > T): restore and settle it.
    Tail.store(T + 1);
    if (Bug == WsqBug::PopRetryNoLock)
      return popRetryNoLock();
    return takeLastUnderLock();
  }

  /// Thief-side steal from the head.
  int steal() {
    if (Bug == WsqBug::UnsynchronizedSteal)
      return stealWithoutLock();
    QLock.lock();
    int H = Head.load();
    int T = Tail.load();
    if (H >= T) {
      QLock.unlock();
      return Empty;
    }
    int Value = Slots[static_cast<size_t>(H & Mask)]->get();
    Head.store(H + 1);
    QLock.unlock();
    return Value;
  }

private:
  /// Correct conflict path: re-run the claim while holding the thief's
  /// lock, so exactly one side takes the last element.
  int takeLastUnderLock() {
    QLock.lock();
    int T = Tail.load() - 1;
    Tail.store(T);
    int H = Head.load();
    if (H <= T) {
      int Value = Slots[static_cast<size_t>(T & Mask)]->get();
      QLock.unlock();
      return Value;
    }
    Tail.store(T + 1); // Restore: the deque is empty.
    QLock.unlock();
    return Empty;
  }

  /// BUG (1 preemption): conflict check before the claim. A preemption
  /// between the check and the tail store lets the thief take slot T
  /// first; we then return the same element.
  int popCheckThenAct() {
    int T = Tail.load() - 1;
    int H = Head.load();
    if (H > T)
      return Empty;
    // <-- preempt here: the thief can steal slot T before we claim it.
    Tail.store(T);
    return Slots[static_cast<size_t>(T & Mask)]->get();
  }

  /// BUG (2 preemptions): the conflict path retries the optimistic
  /// protocol instead of taking the lock. The unsafe case is the last
  /// element (H == T): the thief must be parked mid-steal — after reading
  /// head/tail, before publishing its head claim — which requires
  /// preempting the owner into the thief and the thief back into the
  /// owner, both at nonblocking operations.
  int popRetryNoLock() {
    int T = Tail.load() - 1;
    Tail.store(T);
    int H = Head.load();
    if (H <= T) // Unsafe for H == T: the thief may take it too.
      return Slots[static_cast<size_t>(T & Mask)]->get();
    Tail.store(T + 1);
    return Empty;
  }

  /// BUG (2 preemptions): steal without the lock. Against the correct
  /// locking pop, a duplicate take of the last element again requires the
  /// thief to be split in the middle of its read-check-claim sequence.
  int stealWithoutLock() {
    int H = Head.load();
    int T = Tail.load();
    if (H >= T)
      return Empty;
    int Value = Slots[static_cast<size_t>(H & Mask)]->get();
    // <-- owner can pop this same element before we publish the claim.
    Head.store(H + 1);
    return Value;
  }

  Atomic<int> Head;
  Atomic<int> Tail;
  Mutex QLock;
  std::vector<std::unique_ptr<SharedVar<int>>> Slots;
  WsqBug Bug;
  int Mask;
};

} // namespace

rt::TestCase icb::bench::workStealingTest(WsqConfig Config) {
  std::string Name = strFormat("wsq-%ui-%s", Config.Items,
                               wsqBugName(Config.Bug));
  return {Name, [Config] {
    WsDeque Deque(Config.Capacity, Config.Bug);
    // One take-counter per item; atomic so victim and thief can both
    // report without introducing races of their own.
    std::vector<std::unique_ptr<Atomic<int>>> Taken;
    Taken.reserve(Config.Items);
    for (unsigned I = 0; I != Config.Items; ++I)
      Taken.push_back(std::make_unique<Atomic<int>>(
          strFormat("taken[%u]", I), 0));

    auto Take = [&Taken](int Value) {
      if (Value == Empty)
        return;
      testAssert(Value >= 0 &&
                     static_cast<unsigned>(Value) < Taken.size(),
                 "wsq: queue produced an item that was never pushed");
      int Prev = Taken[static_cast<size_t>(Value)]->fetchAdd(1);
      testAssert(Prev == 0, "wsq: item taken twice (lost/duplicated work)");
    };

    Thread Victim(
        [&] {
          // Push all items, popping after every second push, then drain.
          for (unsigned I = 0; I != Config.Items; ++I) {
            Deque.push(static_cast<int>(I));
            if (I % 2 == 1)
              Take(Deque.pop());
          }
          for (unsigned I = 0; I <= Config.Items; ++I) {
            int V = Deque.pop();
            if (V == Empty)
              break;
            Take(V);
          }
        },
        "victim");
    Thread Thief(
        [&] {
          // A bounded number of steal attempts keeps every schedule
          // finite (the real thief retries forever).
          for (unsigned I = 0; I != Config.Items; ++I)
            Take(Deque.steal());
        },
        "thief");
    Victim.join();
    Thief.join();

    // Every pushed item was taken exactly once or is still in the deque
    // (the thief may simply have lost the race); drain the leftovers.
    unsigned TakenCount = 0;
    for (unsigned I = 0; I != Config.Items; ++I) {
      int N = Taken[I]->load();
      testAssert(N <= 1, "wsq: item taken twice (final audit)");
      TakenCount += static_cast<unsigned>(N);
    }
    for (unsigned I = 0; I <= Config.Items; ++I) {
      int V = Deque.pop();
      if (V == Empty)
        break;
      Take(V);
      ++TakenCount;
    }
    testAssert(TakenCount == Config.Items,
               "wsq: items lost (push/take mismatch)");
  }};
}
