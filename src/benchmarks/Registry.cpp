//===- benchmarks/Registry.cpp - Benchmark metadata and factories ---------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "benchmarks/Ape.h"
#include "benchmarks/Bluetooth.h"
#include "benchmarks/BluetoothModel.h"
#include "benchmarks/DryadChannels.h"
#include "benchmarks/FileSystemModel.h"
#include "benchmarks/TxnManagerModel.h"
#include "benchmarks/WorkStealingQueue.h"
#include "benchmarks/WsqModel.h"

using namespace icb;
using namespace icb::bench;

namespace {

std::vector<BenchmarkEntry> buildRegistry() {
  std::vector<BenchmarkEntry> Entries;

  // --- Bluetooth ----------------------------------------------------------
  {
    BenchmarkEntry E;
    E.Name = "Bluetooth";
    E.Loc = 135; // Lines of Bluetooth.{h,cpp}.
    E.DriverThreads = 3;
    E.InTable1 = true;
    E.InTable2 = true;
    E.MakeDefaultRt = [] { return bluetoothTest({2, /*WithBug=*/false}); };
    // Model-VM form of the same protocol; the target of --jobs/--model
    // runs (the parallel ICB engine explores model VMs).
    E.MakeDefaultVm = [] { return bluetoothModel(2, /*WithBug=*/false); };
    E.Bugs.push_back({"stop-vs-work check-then-act", 1,
                      [] { return bluetoothTest({2, /*WithBug=*/true}); },
                      [] { return bluetoothModel(2, /*WithBug=*/true); }});
    Entries.push_back(std::move(E));
  }

  // --- File system model ---------------------------------------------------
  {
    BenchmarkEntry E;
    E.Name = "File System Model";
    E.Loc = 150; // Lines of FileSystemModel.{h,cpp}.
    E.DriverThreads = 3;
    E.InTable1 = true;
    E.InTable2 = false; // No bugs: coverage benchmark only.
    E.MakeDefaultRt = [] { return fileSystemTest({3, 4, 4}); };
    Entries.push_back(std::move(E));
  }

  // --- Work-stealing queue -------------------------------------------------
  {
    BenchmarkEntry E;
    E.Name = "Work Stealing Queue";
    E.Loc = 290; // Lines of WorkStealingQueue.{h,cpp}.
    E.DriverThreads = 2;
    E.InTable1 = true;
    E.InTable2 = true;
    E.MakeDefaultRt = [] {
      return workStealingTest({3, 4, WsqBug::None});
    };
    // Model-VM form (THE protocol, explicit slot payloads). Bug variants
    // carry both forms; Table 2 harnesses prefer the runtime form when
    // present, so the paper's rows are untouched.
    E.MakeDefaultVm = [] { return wsqModel({3, WsqBug::None}); };
    E.Bugs.push_back({wsqBugName(WsqBug::PopCheckThenAct), 1,
                      [] {
                        return workStealingTest({3, 4,
                                                 WsqBug::PopCheckThenAct});
                      },
                      [] { return wsqModel({3, WsqBug::PopCheckThenAct}); }});
    E.Bugs.push_back({wsqBugName(WsqBug::PopRetryNoLock), 2,
                      [] {
                        return workStealingTest({3, 4,
                                                 WsqBug::PopRetryNoLock});
                      },
                      [] { return wsqModel({3, WsqBug::PopRetryNoLock}); }});
    E.Bugs.push_back({wsqBugName(WsqBug::UnsynchronizedSteal), 2,
                      [] {
                        return workStealingTest(
                            {3, 4, WsqBug::UnsynchronizedSteal});
                      },
                      [] {
                        return wsqModel({3, WsqBug::UnsynchronizedSteal});
                      }});
    Entries.push_back(std::move(E));
  }

  // --- Transaction manager (ZING-side model) -------------------------------
  {
    BenchmarkEntry E;
    E.Name = "Transaction Manager";
    E.Loc = 330; // Lines of TxnManagerModel.{h,cpp}.
    E.DriverThreads = 2;
    E.InTable1 = false; // As in the paper, it appears in Table 2 only.
    E.InTable2 = true;
    E.MakeDefaultVm = [] { return txnManagerModel({2, TxnBug::None}); };
    E.Bugs.push_back({txnBugName(TxnBug::CommitStomp), 2, nullptr, [] {
                        return txnManagerModel({2, TxnBug::CommitStomp});
                      }});
    E.Bugs.push_back({txnBugName(TxnBug::ReapCollision), 2, nullptr, [] {
                        return txnManagerModel({2, TxnBug::ReapCollision});
                      }});
    E.Bugs.push_back({txnBugName(TxnBug::CommitUpsert), 3, nullptr, [] {
                        return txnManagerModel({2, TxnBug::CommitUpsert});
                      }});
    Entries.push_back(std::move(E));
  }

  // --- APE -----------------------------------------------------------------
  {
    BenchmarkEntry E;
    E.Name = "APE";
    E.Loc = 245; // Lines of Ape.{h,cpp}.
    E.DriverThreads = 3;
    E.InTable1 = true;
    E.InTable2 = true;
    E.MakeDefaultRt = [] { return apeTest({2, 2, ApeBug::None}); };
    E.Bugs.push_back({apeBugName(ApeBug::MissingSentinel), 0, [] {
                        return apeTest({2, 2, ApeBug::MissingSentinel});
                      },
                      nullptr});
    E.Bugs.push_back({apeBugName(ApeBug::EagerTeardown), 0, [] {
                        return apeTest({2, 2, ApeBug::EagerTeardown});
                      },
                      nullptr});
    E.Bugs.push_back({apeBugName(ApeBug::LostCompletionUpdate), 1, [] {
                        return apeTest({2, 2,
                                        ApeBug::LostCompletionUpdate});
                      },
                      nullptr});
    E.Bugs.push_back({apeBugName(ApeBug::BrokenStatsLatch), 2, [] {
                        return apeTest({2, 2, ApeBug::BrokenStatsLatch});
                      },
                      nullptr});
    Entries.push_back(std::move(E));
  }

  // --- Dryad channels -------------------------------------------------------
  {
    BenchmarkEntry E;
    E.Name = "Dryad Channels";
    E.Loc = 320; // Lines of DryadChannels.{h,cpp}.
    E.DriverThreads = 5;
    E.InTable1 = true;
    E.InTable2 = true;
    E.MakeDefaultRt = [] { return dryadTest({3, 2, DryadBug::None}); };
    E.Bugs.push_back({dryadBugName(DryadBug::StatsRace), 0, [] {
                        return dryadTest({3, 2, DryadBug::StatsRace});
                      },
                      nullptr});
    E.Bugs.push_back({dryadBugName(DryadBug::Fig3Uaf), 1, [] {
                        return dryadTest({3, 2, DryadBug::Fig3Uaf});
                      },
                      nullptr});
    E.Bugs.push_back({dryadBugName(DryadBug::LateWrite), 1, [] {
                        return dryadTest({3, 2, DryadBug::LateWrite});
                      },
                      nullptr});
    E.Bugs.push_back({dryadBugName(DryadBug::AlertLostUpdate), 1, [] {
                        return dryadTest({3, 2, DryadBug::AlertLostUpdate});
                      },
                      nullptr});
    E.Bugs.push_back({dryadBugName(DryadBug::EarlyAck), 1, [] {
                        return dryadTest({3, 2, DryadBug::EarlyAck});
                      },
                      nullptr});
    Entries.push_back(std::move(E));
  }

  return Entries;
}

} // namespace

const std::vector<BenchmarkEntry> &icb::bench::allBenchmarks() {
  static const std::vector<BenchmarkEntry> Registry = buildRegistry();
  return Registry;
}

const BenchmarkEntry *icb::bench::findBenchmark(const std::string &Name) {
  for (const BenchmarkEntry &E : allBenchmarks())
    if (E.Name == Name)
      return &E;
  return nullptr;
}
