//===- benchmarks/Ape.cpp - Asynchronous Processing Environment -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Ape.h"
#include "rt/Atomic.h"
#include "rt/Managed.h"
#include "rt/SharedVar.h"
#include "rt/Sync.h"
#include "rt/Thread.h"
#include "support/Debug.h"
#include "support/Format.h"
#include <memory>
#include <vector>

using namespace icb;
using namespace icb::rt;
using namespace icb::bench;

const char *icb::bench::apeBugName(ApeBug Bug) {
  switch (Bug) {
  case ApeBug::None:
    return "none";
  case ApeBug::MissingSentinel:
    return "missing-sentinel";
  case ApeBug::EagerTeardown:
    return "eager-teardown";
  case ApeBug::LostCompletionUpdate:
    return "lost-completion-update";
  case ApeBug::BrokenStatsLatch:
    return "broken-stats-latch";
  }
  ICB_UNREACHABLE("unknown ape bug");
}

namespace {

constexpr int StopItem = -99;
constexpr unsigned QueueCap = 8;

/// The environment's shared state; allocated managed so teardown bugs
/// surface as use-after-free reports.
struct ApeEnv {
  ApeEnv()
      : QLock("apeQueueLock"), WorkSem("workAvailable", 0),
        Hd("apeHead", 0), Tl("apeTail", 0), Processed("processed", 0),
        AllDone("allDone", /*ManualReset=*/true) {
    Buf.reserve(QueueCap);
    for (unsigned I = 0; I != QueueCap; ++I)
      Buf.push_back(std::make_unique<SharedVar<int>>(
          strFormat("apeBuf[%u]", I), 0));
    StatsBusy.reserve(4);
    for (unsigned I = 0; I != 4; ++I)
      StatsBusy.push_back(std::make_unique<Atomic<int>>(
          strFormat("statsBusy[%u]", I), 0));
  }

  Mutex QLock;
  Semaphore WorkSem;
  std::vector<std::unique_ptr<SharedVar<int>>> Buf;
  Atomic<int> Hd;
  Atomic<int> Tl;
  Atomic<int> Processed;
  Event AllDone;
  /// Hand-rolled latch of the buggy statistics critical region.
  Atomic<int> StatsOwner{"statsOwner", 0};
  Atomic<int> ItemsAccounted{"itemsAccounted", 0};
  /// Per-worker inside-the-region markers (the assertion's witness).
  std::vector<std::unique_ptr<Atomic<int>>> StatsBusy;
};

/// Producer-side enqueue (main thread).
void apeEnqueue(ManagedPtr<ApeEnv> Env, int Value) {
  Env->QLock.lock();
  int T = Env->Tl.load();
  testAssert(T - Env->Hd.load() < static_cast<int>(QueueCap),
             "APE: queue overflow");
  Env->Buf[static_cast<size_t>(T) % QueueCap]->set(Value);
  Env->Tl.store(T + 1);
  Env->QLock.unlock();
  Env->WorkSem.release();
}

/// Correct dequeue: under the queue lock. Returns the item.
int apeDequeueLocked(ManagedPtr<ApeEnv> Env) {
  Env->QLock.lock();
  int H = Env->Hd.load();
  testAssert(H < Env->Tl.load(), "APE: dequeue from an empty queue");
  int Value = Env->Buf[static_cast<size_t>(H) % QueueCap]->get();
  Env->Hd.store(H + 1);
  Env->QLock.unlock();
  return Value;
}

/// Buggy "optimized" statistics flush: a hand-rolled check-then-announce
/// latch guards the accounting region instead of QLock. The check and the
/// announce are separate operations, so two straddling claim sequences
/// both enter; the in-region assertion is the witness.
void apeFlushStats(ManagedPtr<ApeEnv> Env, unsigned Me, unsigned Other) {
  if (Env->StatsOwner.load() != 0) {
    // Contended: fall back to the real lock.
    Env->QLock.lock();
    Env->ItemsAccounted.fetchAdd(1);
    Env->QLock.unlock();
    return;
  }
  Env->StatsOwner.store(1); // BUG: check and announce are not atomic.
  testAssert(Env->StatsBusy[Other]->load() == 0,
             "APE: two workers inside the statistics critical region");
  Env->StatsBusy[Me]->store(1);
  Env->ItemsAccounted.fetchAdd(1);
  Env->StatsBusy[Me]->store(0);
  Env->StatsOwner.store(0);
}

/// Marks one item processed; the last one signals completion.
void apeComplete(ManagedPtr<ApeEnv> Env, unsigned TotalItems, ApeBug Bug) {
  if (Bug == ApeBug::LostCompletionUpdate) {
    // BUG: load/store instead of an interlocked increment.
    int P = Env->Processed.load();
    Env->Processed.store(P + 1);
    if (P + 1 == static_cast<int>(TotalItems))
      Env->AllDone.set();
    return;
  }
  if (Env->Processed.fetchAdd(1) + 1 == static_cast<int>(TotalItems))
    Env->AllDone.set();
}

void apeWorker(ManagedPtr<ApeEnv> Env, unsigned Me, unsigned Other,
               const ApeConfig &Config) {
  while (true) {
    Env->WorkSem.acquire();
    int Value = apeDequeueLocked(Env);
    if (Value == StopItem)
      return;
    if (Config.Bug == ApeBug::BrokenStatsLatch)
      apeFlushStats(Env, Me, Other);
    apeComplete(Env, Config.Items, Config.Bug);
  }
}

} // namespace

rt::TestCase icb::bench::apeTest(ApeConfig Config) {
  std::string Name = strFormat("ape-%uw-%ui-%s", Config.Workers,
                               Config.Items, apeBugName(Config.Bug));
  return {Name, [Config] {
    ManagedPtr<ApeEnv> Env = makeManaged<ApeEnv>("ApeEnv");
    std::vector<std::unique_ptr<Thread>> Workers;
    Workers.reserve(Config.Workers);
    for (unsigned W = 0; W != Config.Workers; ++W)
      Workers.push_back(std::make_unique<Thread>(
          [Env, W, Config] {
            apeWorker(Env, W, (W + 1) % Config.Workers, Config);
          },
          strFormat("apeWorker%u", W)));

    for (unsigned I = 0; I != Config.Items; ++I)
      apeEnqueue(Env, static_cast<int>(I));
    Env->AllDone.wait();

    if (Config.Bug != ApeBug::MissingSentinel) {
      // Wake every worker with a shutdown sentinel.
      for (unsigned W = 0; W != Config.Workers; ++W)
        apeEnqueue(Env, StopItem);
    }
    if (Config.Bug == ApeBug::EagerTeardown) {
      // BUG: tear the environment down before the workers have drained
      // their sentinels; a worker parked on WorkSem touches freed memory.
      Env.destroy();
      for (auto &W : Workers)
        W->join();
      return;
    }
    for (auto &W : Workers)
      W->join();
    testAssert(Env->Processed.load() == static_cast<int>(Config.Items),
               "APE: completion signaled before all items were processed");
    Env.destroy();
  }};
}
