//===- benchmarks/WorkStealingQueue.h - Cilk THE work stealing --*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work-stealing queue benchmark: "an implementation [Leijen,
/// MSR-TR-2006-162] of the work-stealing queue algorithm originally
/// designed for the Cilk multithreaded programming system [Frigo et al.].
/// The program has a queue of work items implemented using a bounded
/// circular buffer. Our test driver consists of two threads, a victim and
/// a thief ... Potential interference between the two threads is
/// controlled by means of sophisticated non-blocking synchronization."
///
/// The deque follows the THE protocol as used in Leijen's futures library:
/// the owner pushes and pops at the tail without a lock on the fast path;
/// the thief steals at the head under a lock; the owner falls back to the
/// lock only when it might be contending for the last element. Head and
/// tail are interlocked (sync) variables; the element buffer is ordinary
/// data, race-checked per Section 3.1.
///
/// "The implementor gave us ... three variations of his implementation,
/// each containing what he considered to be a subtle bug." Our three
/// seeded variants reproduce Table 2's distribution (one bug at preemption
/// bound 1, two at bound 2):
///
///   * PopCheckThenAct      — the owner's pop checks for a conflict before
///     committing the tail decrement (classic THE inversion): a single
///     preemption lets the thief steal the same element first.
///   * PopRetryNoLock       — the owner's conflict path retries the
///     optimistic protocol instead of taking the lock; losing the
///     last-element race requires splitting the thief mid-steal, i.e.
///     two preemptions.
///   * UnsynchronizedSteal  — the thief skips the lock entirely; again
///     only a split steal (two preemptions) produces a duplicate take
///     against the correct locking pop.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_BENCHMARKS_WORKSTEALINGQUEUE_H
#define ICB_BENCHMARKS_WORKSTEALINGQUEUE_H

#include "rt/Scheduler.h"

namespace icb::bench {

/// Which seeded defect (if any) the queue carries.
enum class WsqBug : uint8_t {
  None,
  PopCheckThenAct,     ///< Exposed with 1 preemption.
  PopRetryNoLock,      ///< Exposed with 2 preemptions.
  UnsynchronizedSteal, ///< Exposed with 2 preemptions.
};

const char *wsqBugName(WsqBug Bug);

struct WsqConfig {
  /// Items the victim pushes (popping some, the thief stealing others).
  unsigned Items = 3;
  /// Circular-buffer capacity (power of two).
  unsigned Capacity = 4;
  WsqBug Bug = WsqBug::None;
};

/// Builds the closed victim/thief test. The harness checks that every
/// pushed item is taken exactly once (no loss, no duplication).
rt::TestCase workStealingTest(WsqConfig Config);

} // namespace icb::bench

#endif // ICB_BENCHMARKS_WORKSTEALINGQUEUE_H
