//===- benchmarks/TxnManagerModel.h - Transaction manager model -*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transaction manager benchmark: "This program provides transactions
/// in a system for authoring web services ... the in-flight transactions
/// are stored in a hashtable, access to which is synchronized using
/// fine-grained locking ... Each test contains two threads. One thread
/// performing an operation — create, commit, or delete — on a transaction.
/// The second thread is a timer thread that periodically flushes from the
/// hashtable all pending transactions that have timed out." The paper's
/// version is "a ZING model constructed semi-automatically from the C#
/// implementation"; ours is a model VM program built with the same
/// structure: a two-bucket table with per-bucket locks, a worker doing
/// create/commit/delete, and a timer flushing active transactions.
///
/// Three seeded bugs reproduce Table 2's distribution for the transaction
/// manager (two at preemption bound 2, one at bound 3). All three are
/// broken lock-elision "optimizations" of the bucket locking:
///
///   * CommitStomp   (@2) — commit claims the bucket with a check-then-
///     announce owner flag (a broken test-and-set); entering while the
///     timer's flush is mid-critical requires the two claim sequences to
///     straddle each other, i.e. two preemptions.
///   * ReapCollision (@2) — the delete path and the timer's reaper claim
///     bucket 1 through the same broken check-then-announce latch; a
///     straddled entry puts both inside the bucket at once.
///   * CommitUpsert  (@3) — like CommitStomp, but the commit path
///     tolerates observing a flushed transaction (it re-creates it), so
///     the only failure is the timer's flush landing *after* the commit
///     write with the claim sequences crossed — a three-preemption
///     pattern (the worker is split twice).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_BENCHMARKS_TXNMANAGERMODEL_H
#define ICB_BENCHMARKS_TXNMANAGERMODEL_H

#include "vm/Program.h"

namespace icb::bench {

/// Which seeded transaction-manager defect (if any) is active.
enum class TxnBug : uint8_t {
  None,
  CommitStomp,   ///< Exposed with 2 preemptions (assertion).
  ReapCollision, ///< Exposed with 2 preemptions (assertion).
  CommitUpsert,  ///< Exposed with 3 preemptions (assertion).
};

const char *txnBugName(TxnBug Bug);

struct TxnConfig {
  /// Timer passes over the table.
  unsigned TimerRounds = 2;
  TxnBug Bug = TxnBug::None;
};

/// Builds the transaction manager as a model-VM program (worker + timer).
vm::Program txnManagerModel(TxnConfig Config);

} // namespace icb::bench

#endif // ICB_BENCHMARKS_TXNMANAGERMODEL_H
