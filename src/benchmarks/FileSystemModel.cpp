//===- benchmarks/FileSystemModel.cpp - File system model -----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/FileSystemModel.h"
#include "rt/SharedVar.h"
#include "rt/Sync.h"
#include "rt/Thread.h"
#include "support/Format.h"
#include <memory>
#include <vector>

using namespace icb;
using namespace icb::rt;
using namespace icb::bench;

namespace {

/// The file system's shared tables, all lock-protected data variables.
struct FsState {
  explicit FsState(const FileSystemConfig &Config) {
    InodeLocks.reserve(Config.NumInodes);
    Inodes.reserve(Config.NumInodes);
    for (unsigned I = 0; I != Config.NumInodes; ++I) {
      InodeLocks.push_back(
          std::make_unique<Mutex>(strFormat("locki[%u]", I)));
      Inodes.push_back(std::make_unique<SharedVar<int>>(
          strFormat("inode[%u]", I), 0));
    }
    BlockLocks.reserve(Config.NumBlocks);
    Busy.reserve(Config.NumBlocks);
    for (unsigned B = 0; B != Config.NumBlocks; ++B) {
      BlockLocks.push_back(
          std::make_unique<Mutex>(strFormat("lockb[%u]", B)));
      Busy.push_back(std::make_unique<SharedVar<int>>(
          strFormat("busy[%u]", B), 0));
    }
  }

  std::vector<std::unique_ptr<Mutex>> InodeLocks;
  std::vector<std::unique_ptr<SharedVar<int>>> Inodes;
  std::vector<std::unique_ptr<Mutex>> BlockLocks;
  std::vector<std::unique_ptr<SharedVar<int>>> Busy;
};

/// Figure 7 of Flanagan-Godefroid, POPL'05: allocate a block for this
/// thread's inode if it has none.
void createFile(FsState &Fs, unsigned Tid, const FileSystemConfig &Config) {
  unsigned I = Tid % Config.NumInodes;
  Fs.InodeLocks[I]->lock();
  if (Fs.Inodes[I]->get() == 0) {
    unsigned B = (I * 2) % Config.NumBlocks;
    while (true) {
      Fs.BlockLocks[B]->lock();
      if (Fs.Busy[B]->get() == 0) {
        Fs.Busy[B]->set(1);
        Fs.Inodes[I]->set(static_cast<int>(B) + 1);
        Fs.BlockLocks[B]->unlock();
        break;
      }
      Fs.BlockLocks[B]->unlock();
      B = (B + 1) % Config.NumBlocks;
    }
  }
  Fs.InodeLocks[I]->unlock();
}

} // namespace

rt::TestCase icb::bench::fileSystemTest(FileSystemConfig Config) {
  std::string Name = strFormat("filesystem-%ut-%ui-%ub", Config.Threads,
                               Config.NumInodes, Config.NumBlocks);
  return {Name, [Config] {
    FsState Fs(Config);
    std::vector<std::unique_ptr<Thread>> Threads;
    Threads.reserve(Config.Threads);
    for (unsigned T = 0; T != Config.Threads; ++T)
      Threads.push_back(std::make_unique<Thread>(
          [&Fs, T, Config] { createFile(Fs, T, Config); },
          strFormat("proc%u", T)));
    for (auto &T : Threads)
      T->join();
    // Post-condition: every inode that claimed a block points at a busy
    // block, and no two inodes share one.
    for (unsigned I = 0; I != Config.NumInodes; ++I) {
      int Block = Fs.Inodes[I]->get();
      if (Block != 0)
        testAssert(Fs.Busy[static_cast<unsigned>(Block) - 1]->get() == 1,
                   "file system: inode points at a free block");
    }
    for (unsigned I = 0; I != Config.NumInodes; ++I)
      for (unsigned J = I + 1; J != Config.NumInodes; ++J) {
        int A = Fs.Inodes[I]->get();
        int B = Fs.Inodes[J]->get();
        testAssert(A == 0 || A != B,
                   "file system: two inodes share one block");
      }
  }};
}
