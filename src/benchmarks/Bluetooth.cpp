//===- benchmarks/Bluetooth.cpp - Bluetooth PnP driver benchmark ----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Bluetooth.h"
#include "rt/Atomic.h"
#include "rt/Sync.h"
#include "rt/Thread.h"
#include "support/Format.h"
#include <memory>
#include <vector>

using namespace icb;
using namespace icb::rt;
using namespace icb::bench;

namespace {

/// The driver's shared state. pendingIo starts at 1: the stopper owns the
/// initial reference and drops it when it begins stopping.
struct BtDriver {
  BtDriver()
      : PendingIo("pendingIo", 1), StoppingFlag("stoppingFlag", 0),
        StoppingEvent("stoppingEvent", /*ManualReset=*/true),
        Stopped("stopped", 0) {}

  Atomic<int> PendingIo;
  Atomic<int> StoppingFlag;
  Event StoppingEvent;
  Atomic<int> Stopped;
};

/// Drops one pending-I/O reference; the last one out signals the stopper.
void releaseReference(BtDriver &D) {
  if (D.PendingIo.fetchAdd(-1) == 1)
    D.StoppingEvent.set();
}

/// Worker entry: returns true if the driver accepted the request.
bool enterDriver(BtDriver &D, bool WithBug) {
  if (WithBug) {
    // BUG: check-then-act. A preemption between the flag check and the
    // increment lets the stopper drain pendingIo and stop the driver while
    // this worker still enters it.
    if (D.StoppingFlag.load() != 0)
      return false;
    D.PendingIo.fetchAdd(1);
    return true;
  }
  // Correct protocol: publish the reference first, then re-check; back
  // out if the driver is stopping.
  D.PendingIo.fetchAdd(1);
  if (D.StoppingFlag.load() != 0) {
    releaseReference(D);
    return false;
  }
  return true;
}

/// One driver operation performed by a worker thread.
void workerBody(BtDriver &D, bool WithBug) {
  if (!enterDriver(D, WithBug))
    return;
  // Inside the driver: it must not have been stopped under us.
  testAssert(D.Stopped.load() == 0,
             "Bluetooth: driver used by worker after stop completed");
  releaseReference(D);
}

/// The PnP stop path.
void stopperBody(BtDriver &D) {
  D.StoppingFlag.store(1);
  releaseReference(D); // Drop the initial reference.
  D.StoppingEvent.wait();
  D.Stopped.store(1);
}

} // namespace

rt::TestCase icb::bench::bluetoothTest(BluetoothConfig Config) {
  std::string Name =
      strFormat("bluetooth-%uw%s", Config.Workers,
                Config.WithBug ? "-bug" : "");
  return {Name, [Config] {
    BtDriver D;
    // The paper's driver allocates three threads: a stopper and two
    // workers; main only orchestrates. Keeping the stopper off the main
    // thread matters for the bound: the single preemption lands after the
    // worker's flag check, and the switch into the stopper is free.
    std::vector<std::unique_ptr<Thread>> Threads;
    Threads.reserve(Config.Workers + 1);
    Threads.push_back(
        std::make_unique<Thread>([&D] { stopperBody(D); }, "stopper"));
    for (unsigned I = 0; I != Config.Workers; ++I)
      Threads.push_back(std::make_unique<Thread>(
          [&D, Config] { workerBody(D, Config.WithBug); },
          strFormat("worker%u", I)));
    for (auto &T : Threads)
      T->join();
  }};
}
