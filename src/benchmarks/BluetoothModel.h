//===- benchmarks/BluetoothModel.h - Bluetooth as a VM model ----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Bluetooth driver benchmark expressed as a ZING-side model program
/// (the same protocol as benchmarks/Bluetooth.h on the stateless runtime).
/// Having both forms lets the test suite cross-validate the two model
/// checkers on a real benchmark: both must expose the stop-vs-work bug at
/// preemption bound 1, and both must certify the fixed protocol.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_BENCHMARKS_BLUETOOTHMODEL_H
#define ICB_BENCHMARKS_BLUETOOTHMODEL_H

#include "vm/Program.h"

namespace icb::bench {

/// Builds the Bluetooth stop-vs-work protocol as a model-VM program:
/// one stopper thread plus \p Workers worker threads.
vm::Program bluetoothModel(unsigned Workers, bool WithBug);

} // namespace icb::bench

#endif // ICB_BENCHMARKS_BLUETOOTHMODEL_H
