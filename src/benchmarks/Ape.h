//===- benchmarks/Ape.h - Asynchronous Processing Environment ---*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// APE, the Asynchronous Processing Environment: "a set of data structures
/// and functions that provide logical structure and debugging support to
/// asynchronous multithreaded code ... the main thread initializes APE's
/// data structures, creates two worker threads, and finally waits for them
/// to finish. The worker threads concurrently exercise certain parts of
/// the interface."
///
/// Our substitute is an asynchronous work-queue library: a bounded item
/// queue fed by the main thread, drained by two workers gated on a
/// counting semaphore, with a completion event and shutdown sentinels.
/// Four seeded bugs reproduce Table 2's distribution for APE (two bugs at
/// preemption bound 0, one at 1, one at 2):
///
///   * MissingSentinel       (@0) — shutdown never wakes the workers:
///     they block on the work semaphore forever while main joins them.
///   * EagerTeardown         (@0) — main destroys the environment right
///     after queueing the shutdown sentinels, while workers are still
///     parked on (or about to touch) its semaphore: use-after-free.
///   * LostCompletionUpdate  (@1) — the processed-items counter is
///     updated with a load/store pair; one preemption loses an update and
///     the completion event is never signaled: deadlock.
///   * BrokenStatsLatch      (@2) — workers flush their statistics inside
///     a critical region guarded by a hand-rolled check-then-announce
///     latch (a broken test-and-set). Entering it concurrently requires
///     the two claim sequences to straddle each other — two preemptions —
///     and is caught by an in-region assertion.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_BENCHMARKS_APE_H
#define ICB_BENCHMARKS_APE_H

#include "rt/Scheduler.h"

namespace icb::bench {

/// Which seeded APE defect (if any) is active.
enum class ApeBug : uint8_t {
  None,
  MissingSentinel,      ///< Exposed with 0 preemptions (deadlock).
  EagerTeardown,        ///< Exposed with 0 preemptions (use-after-free).
  LostCompletionUpdate, ///< Exposed with 1 preemption (deadlock).
  BrokenStatsLatch,     ///< Exposed with 2 preemptions (assertion).
};

const char *apeBugName(ApeBug Bug);

struct ApeConfig {
  unsigned Workers = 2;
  unsigned Items = 2;
  ApeBug Bug = ApeBug::None;
};

/// Builds the closed APE test (init, two workers, wait, shutdown).
rt::TestCase apeTest(ApeConfig Config);

} // namespace icb::bench

#endif // ICB_BENCHMARKS_APE_H
