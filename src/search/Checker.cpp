//===- search/Checker.cpp - One-call model checking facade ----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/Checker.h"
#include "search/Dfs.h"
#include "search/IcbSearch.h"
#include "search/ParallelIcb.h"
#include "search/RandomWalk.h"
#include "support/Debug.h"

using namespace icb;
using namespace icb::search;

std::unique_ptr<Strategy> icb::search::makeStrategy(const SearchOptions &Opts) {
  switch (Opts.Kind) {
  case StrategyKind::Icb: {
    if (Opts.Jobs != 1) {
      ParallelIcbSearch::Options O;
      O.Jobs = Opts.Jobs;
      O.Shards = Opts.Shards;
      O.UseStateCache = Opts.UseStateCache;
      O.RecordSchedules = Opts.RecordSchedules;
      O.UseSleepSets = Opts.UseSleepSets;
      O.Limits = Opts.Limits;
      O.Policy = Opts.Policy;
      O.Observer = Opts.Observer;
      O.Resume = Opts.Resume;
      O.Metrics = Opts.Metrics;
      O.Lease = Opts.Lease;
      return std::make_unique<ParallelIcbSearch>(O);
    }
    IcbSearch::Options O;
    O.UseStateCache = Opts.UseStateCache;
    O.RecordSchedules = Opts.RecordSchedules;
    O.UseSleepSets = Opts.UseSleepSets;
    O.Limits = Opts.Limits;
    O.Policy = Opts.Policy;
    O.Observer = Opts.Observer;
    O.Resume = Opts.Resume;
    O.Metrics = Opts.Metrics;
    O.Lease = Opts.Lease;
    return std::make_unique<IcbSearch>(O);
  }
  case StrategyKind::Dfs: {
    DfsSearch::Options O;
    O.UseStateCache = Opts.UseStateCache;
    O.DepthBound = 0;
    O.Limits = Opts.Limits;
    O.Metrics = Opts.Metrics;
    return std::make_unique<DfsSearch>(O);
  }
  case StrategyKind::DepthBoundedDfs: {
    DfsSearch::Options O;
    O.UseStateCache = false;
    O.DepthBound = Opts.DepthBound;
    O.Limits = Opts.Limits;
    O.Metrics = Opts.Metrics;
    return std::make_unique<DfsSearch>(O);
  }
  case StrategyKind::IterativeDfs: {
    IterativeDeepeningSearch::Options O;
    O.InitialBound = Opts.DepthBound;
    O.Increment = Opts.DepthBound;
    O.Limits = Opts.Limits;
    O.Metrics = Opts.Metrics;
    return std::make_unique<IterativeDeepeningSearch>(O);
  }
  case StrategyKind::Random: {
    RandomWalk::Options O;
    O.Seed = Opts.Seed;
    O.Executions = Opts.RandomExecutions;
    O.Limits = Opts.Limits;
    O.Metrics = Opts.Metrics;
    return std::make_unique<RandomWalk>(O);
  }
  }
  ICB_UNREACHABLE("unknown strategy kind");
}

SearchResult icb::search::checkProgram(const vm::Program &Prog,
                                       const SearchOptions &Opts) {
  vm::Interp Interp(Prog);
  return makeStrategy(Opts)->run(Interp);
}
