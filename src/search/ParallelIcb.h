//===- search/ParallelIcb.h - Multithreaded ICB search ----------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel counterpart of IcbSearch: the same Algorithm 1, with each
/// bound's work queue drained by a pool of workers.
///
/// Parallelizing ICB is natural because the algorithm is a sequence of
/// independent batches: every work item queued for bound c can be explored
/// in isolation — items only communicate *forward*, by publishing deferred
/// (preempting) continuations for bound c + 1. The engine therefore runs
/// one fork/join round per bound:
///
///   * the bound's items are dealt round-robin onto per-worker
///     work-stealing deques; workers pop their own bottom (LIFO) and steal
///     from others' tops (FIFO) when dry, so a bound with few roots but
///     deep subtrees still spreads — nonpreempting branches discovered
///     mid-execution go onto the owner's deque bottom where they are
///     stealable;
///   * deferred continuations are published to a lock-striped next queue
///     (one stripe per worker — steady-state pushes are uncontended);
///   * the visited-state set and the (state, thread) work-item cache are
///     ShardedStateCaches probed concurrently;
///   * statistics and bugs accumulate worker-locally and merge at the
///     bound barrier with commutative folds, so results are independent of
///     scheduling;
///   * the pool's join *is* Algorithm 1's per-bound barrier: bound c + 1
///     starts only after bound c is fully drained, preserving the minimal
///     preemption guarantee for every reported bug.
///
/// Determinism: with the work-item cache off the engine enumerates the
/// complete bounded tree, every exposure of every bug is recorded, and
/// duplicate reports are canonicalized to the lexicographically smallest
/// (Preemptions, Steps, Schedule) exposure — results, including schedules
/// and per-execution distributions, are bit-identical for any worker
/// count. With the cache on, each (state, thread) node is claimed by
/// exactly one worker *before* being stepped; the *set* of claimed nodes
/// is the same whatever the timing, so Executions, TotalSteps,
/// DistinctStates, the per-bound snapshots, the preemption histogram, and
/// the set of distinct bugs with their minimal preemption counts are
/// identical for any worker count. What the cache does leave
/// timing-dependent is *attribution*: which chain claims a shared node
/// decides where the other chains truncate, so the per-execution
/// step/blocking distributions and the particular exposing schedule of a
/// bug may differ between runs (the sequential cached engine has the same
/// property — its attribution just follows its fixed LIFO order). Runs
/// that trip a resource limit mid-bound are nondeterministic in the
/// obvious way (the limit fires at a timing-dependent point), exactly as
/// a Ctrl-C would be.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_PARALLELICB_H
#define ICB_SEARCH_PARALLELICB_H

#include "search/BoundPolicy.h"
#include "search/EngineObserver.h"
#include "search/Strategy.h"

namespace icb::search {

/// Work-stealing parallel iterative context bounding.
class ParallelIcbSearch final : public Strategy {
public:
  struct Options {
    /// Worker threads draining each bound. 0 picks the hardware
    /// concurrency. 1 is a valid (sequentialized) configuration — handy
    /// for determinism comparisons against higher counts.
    unsigned Jobs = 0;
    /// Shards in the concurrent state caches; 0 derives one from the
    /// worker count (at least 64, at least 8x jobs, power of two).
    unsigned Shards = 0;
    /// Prune (state, thread) work items already explored (ZING mode).
    bool UseStateCache = false;
    /// Carry full schedules in work items so bug reports are replayable.
    bool RecordSchedules = true;
    /// Bounded POR: sleep sets composed with the preemption bound
    /// (VmExecutor::Options::UseSleepSets). Sleep sets travel inside the
    /// work items, so worker count still does not affect results.
    bool UseSleepSets = false;
    SearchLimits Limits;
    /// Bound policy (see BoundPolicy.h). Null = preemption bounding at
    /// Limits.MaxPreemptionBound. Must outlive the run.
    const BoundPolicy *Policy = nullptr;
    /// Session hooks and resume snapshot (see EngineObserver.h).
    EngineObserver *Observer = nullptr;
    const EngineSnapshot *Resume = nullptr;
    /// Observability registry (see obs/Metrics.h).
    obs::MetricsRegistry *Metrics = nullptr;
    /// Distributed lease participation (see search::LeaseMode; Drain
    /// only — roots leases run through the sequential driver).
    LeaseMode Lease = LeaseMode::Off;
  };

  explicit ParallelIcbSearch(Options Opts) : Opts(Opts) {}

  SearchResult run(const vm::Interp &Interp) override;
  std::string name() const override { return "icb-par"; }

private:
  Options Opts;
};

} // namespace icb::search

#endif // ICB_SEARCH_PARALLELICB_H
