//===- search/RandomWalk.cpp - Uniform random-walk baseline ---------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/RandomWalk.h"
#include "obs/PhaseTimer.h"
#include "search/StateCache.h"
#include "support/Prng.h"
#include <algorithm>

using namespace icb;
using namespace icb::search;
using namespace icb::vm;

namespace icb::search::detail {
// Defined in Dfs.cpp; shared deadlock pretty-printer.
std::string describeDeadlock(const Interp &Interp, const State &S);
} // namespace icb::search::detail

SearchResult RandomWalk::run(const Interp &Interp) {
  Xoshiro256 Rng(Opts.Seed);
  StateCache Seen;
  SearchResult Result;
  BugCollector Bugs;
  SearchStats &Stats = Result.Stats;
  CoverageSampler<CoveragePoint> Sampler;

  obs::MetricShard *Shard = nullptr;
  if (Opts.Metrics) {
    Opts.Metrics->ensureShards(1);
    Shard = &Opts.Metrics->shard(0);
  }
  auto ProbeSeen = [&](uint64_t Hash) {
    bool New = Seen.insert(Hash);
    obs::count(Shard, New ? obs::Counter::SeenMiss : obs::Counter::SeenHit);
    return New;
  };

  State S0 = Interp.initialState();
  uint64_t InitialHash = S0.hash();

  bool LimitHit = false;
  for (uint64_t Exec = 0; Exec != Opts.Executions && !LimitHit; ++Exec) {
    obs::ScopedPhase ExecTimer(Shard, obs::Phase::Execute);
    State S = S0;
    ProbeSeen(InitialHash);
    std::vector<ThreadId> Sched;
    unsigned Np = 0;
    uint64_t Blocking = 0;
    ThreadId Last = InvalidThread;
    bool BugThisExec = false;

    while (true) {
      std::vector<ThreadId> Enabled = Interp.enabledThreads(S);
      if (Enabled.empty()) {
        if (!S.allDone()) {
          Bug NewBug;
          NewBug.Kind = BugKind::Deadlock;
          NewBug.Message = detail::describeDeadlock(Interp, S);
          NewBug.Preemptions = Np;
          NewBug.Steps = Sched.size();
          NewBug.Schedule = Sched;
          Bugs.add(std::move(NewBug));
          BugThisExec = true;
        }
        break;
      }
      bool LastEnabled =
          Last != InvalidThread &&
          std::find(Enabled.begin(), Enabled.end(), Last) != Enabled.end();
      ThreadId T = Enabled[Rng.pickIndex(Enabled.size())];
      if (Last != InvalidThread && T != Last && LastEnabled)
        ++Np;
      StepResult R = Interp.step(S, T);
      ++Stats.TotalSteps;
      Blocking += R.WasBlockingOp ? 1 : 0;
      Sched.push_back(T);
      ProbeSeen(S.hash());
      Last = T;
      if (R.Status == StepStatus::AssertFailed ||
          R.Status == StepStatus::ModelError) {
        Bug NewBug;
        NewBug.Kind = R.Status == StepStatus::AssertFailed
                          ? BugKind::AssertFailure
                          : BugKind::ModelError;
        NewBug.Message = R.Status == StepStatus::AssertFailed
                             ? Interp.program().Messages[R.MsgId]
                             : R.ModelErrorText;
        NewBug.Preemptions = Np;
        NewBug.Steps = Sched.size();
        NewBug.Schedule = Sched;
        Bugs.add(std::move(NewBug));
        BugThisExec = true;
        break;
      }
    }

    ++Stats.Executions;
    Stats.StepsPerExecution.observe(Sched.size());
    Stats.PreemptionsPerExecution.observe(Np);
    Stats.PreemptionHistogram.increment(Np);
    Stats.BlockingPerExecution.observe(Blocking);
    obs::count(Shard, obs::Counter::Chains);
    ICB_OBS(Shard, Shard->ExecutionsPerBound.increment(Np));
    Sampler.observe(Stats.Coverage, Stats.Executions, Seen.size());
    LimitHit = Stats.Executions >= Opts.Limits.MaxExecutions ||
               Stats.TotalSteps >= Opts.Limits.MaxSteps ||
               Seen.size() >= Opts.Limits.MaxStates ||
               (Opts.Limits.StopAtFirstBug && BugThisExec);
  }

  Stats.DistinctStates = Seen.size();
  Stats.Completed = false; // Random sampling never proves exhaustion.
  Sampler.finish(Stats.Coverage);
  Result.Bugs = Bugs.take();
  return Result;
}
