//===- search/ShardedStateCache.h - Concurrent visited-state set -*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent counterpart of StateCache: a set of 64-bit state (or
/// work-item) digests sharded over independently locked open-addressing
/// tables so the parallel ICB workers' `Seen`/`ItemCache` probes do not
/// serialize on one mutex. Digests are already well mixed (SplitMix64
/// finalizer output), so the shard index is taken from the *high* bits and
/// the in-shard slot from the *low* bits — the two are independent.
///
/// Membership is by digest only (hash compaction), exactly like the
/// sequential cache; DESIGN.md discusses why collisions are negligible at
/// our state counts. Inserts are linearizable per digest: for every digest
/// exactly one insert() call across all threads returns true.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_SHARDEDSTATECACHE_H
#define ICB_SEARCH_SHARDEDSTATECACHE_H

#include "support/Hashing.h"
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace icb::search {

class ShardedStateCache {
public:
  /// Creates a cache with \p ShardCount shards (rounded up to a power of
  /// two; 0 picks the default of 64).
  explicit ShardedStateCache(unsigned ShardCount = 0);
  ~ShardedStateCache();

  ShardedStateCache(const ShardedStateCache &) = delete;
  ShardedStateCache &operator=(const ShardedStateCache &) = delete;

  /// Inserts a digest; returns true iff it was new. Thread-safe.
  bool insert(uint64_t Digest);

  /// Inserts a (state, thread) work-item digest; returns true if new.
  bool insertWorkItem(uint64_t StateDigest, uint32_t Tid) {
    return insert(hashCombine(StateDigest, Tid));
  }

  /// Thread-safe membership probe.
  bool contains(uint64_t Digest) const;

  /// Number of stored digests. Exact when no inserts are in flight (the
  /// parallel engine reads it at bound barriers); a lower-bound hint while
  /// inserts race (good enough for the MaxStates limit check).
  uint64_t size() const;

  void clear();

  /// All stored digests in unspecified order (checkpoint serialization).
  /// Callers must quiesce concurrent inserts first (the drivers snapshot
  /// only at bound barriers or after worker shutdown).
  std::vector<uint64_t> digests() const;

  unsigned shards() const { return ShardCount; }

private:
  struct Shard;

  Shard &shardFor(uint64_t Digest) const;

  std::unique_ptr<Shard[]> ShardArr;
  unsigned ShardCount = 1;
  unsigned ShardBits = 0;
};

} // namespace icb::search

#endif // ICB_SEARCH_SHARDEDSTATECACHE_H
