//===- search/IcbEngine.h - Algorithm 1 drivers over an Executor -*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two drivers of Algorithm 1, templated over an Executor (see
/// Executor.h): a sequential reference driver and a work-stealing parallel
/// driver. Between them they own everything that is *not* "execute one
/// work item": the per-bound queues and barrier, the visited-state and
/// work-item caches, statistics, coverage sampling, limit checking, and
/// bug deduplication. The executors own how a work item becomes an
/// execution — stepping a model VM or replaying a schedule prefix on the
/// fiber runtime.
///
/// Sequential driver: a FIFO queue of the bound's roots; nonpreempting
/// branches go on a private LIFO stack (depth-first within a chain keeps
/// memory bounded); deferred items queue for the next bound; one snapshot
/// per bound. This is bit-for-bit the historical sequential model-VM
/// behavior.
///
/// Parallel driver: one fork/join round per bound. Parallelizing ICB is
/// natural because the algorithm is a sequence of independent batches:
/// every work item queued for bound c can be explored in isolation — items
/// only communicate *forward*, by publishing deferred (preempting)
/// continuations for bound c + 1.
///
///   * the bound's items are dealt round-robin onto per-worker
///     work-stealing deques; workers pop their own bottom (LIFO) and steal
///     from others' tops (FIFO) when dry, so a bound with few roots but
///     deep subtrees still spreads — nonpreempting branches discovered
///     mid-execution go onto the owner's deque bottom where they are
///     stealable;
///   * deferred continuations are published to a lock-striped next queue
///     (one stripe per worker — steady-state pushes are uncontended);
///   * the visited-state set and the (state, thread) work-item cache are
///     ShardedStateCaches probed concurrently;
///   * statistics and bugs accumulate worker-locally and merge at the
///     bound barrier with commutative folds, so results are independent of
///     scheduling;
///   * the pool's join *is* Algorithm 1's per-bound barrier: bound c + 1
///     starts only after bound c is fully drained, preserving the minimal
///     preemption guarantee for every reported bug.
///
/// Determinism: with the work-item cache off the drivers enumerate the
/// complete bounded tree, every exposure of every bug is recorded, and
/// (under canonical bug mode) duplicate reports collapse to the
/// lexicographically smallest (Preemptions, Steps, Schedule) exposure —
/// aggregate results and bug reports are identical for any worker count.
/// With the cache on, each (state, thread) node is claimed by exactly one
/// worker *before* being stepped; the *set* of claimed nodes is the same
/// whatever the timing, so the aggregate counts, per-bound snapshots,
/// histogram, and the distinct bugs with their minimal preemption counts
/// are identical for any worker count, while per-execution distributions
/// and exposing schedules are attribution-dependent. Runs that trip a
/// resource limit mid-bound are nondeterministic in the obvious way (the
/// limit fires at a timing-dependent point), exactly as a Ctrl-C would be.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_ICBENGINE_H
#define ICB_SEARCH_ICBENGINE_H

#include "search/Executor.h"
#include "search/SearchTypes.h"
#include "search/ShardedStateCache.h"
#include "search/StateCache.h"
#include "support/Stats.h"
#include "support/StripedQueue.h"
#include "support/WorkStealingDeque.h"
#include "support/WorkerPool.h"
#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

namespace icb::search {

/// Driver knobs common to both engines.
struct IcbEngineOptions {
  SearchLimits Limits;
  /// Deduplicate bugs to the canonical minimal (Preemptions, Steps,
  /// Schedule) exposure, reported in (kind, message) order — what the
  /// parallel driver always does, and what makes a sequential run's bug
  /// report byte-comparable to a parallel one. Off = the historical
  /// sequential model-VM policy (first exposure wins at equal preemption
  /// counts, discovery order), kept for bit-for-bit compatibility.
  bool CanonicalBugs = false;
  /// Parallel driver only: shards in the concurrent caches (0 = auto).
  unsigned Shards = 0;
};

namespace detail {

/// Sequential reference driver: drains each bound's queue on the calling
/// thread. This class is the Ctx its executor drives.
template <typename Executor> class SequentialEngineDriver {
public:
  using WorkItem = typename Executor::WorkItem;

  SequentialEngineDriver(Executor &E, const IcbEngineOptions &Opts)
      : E(E), Opts(Opts) {}

  SearchResult run() {
    SearchResult Result;

    for (WorkItem &Item : E.rootItems(*this))
      WorkQueue.push_back(std::move(Item));

    // Algorithm 1 lines 9-21: drain the current bound, snapshot coverage,
    // move on to the next.
    while (true) {
      while (!WorkQueue.empty() && !LimitHit) {
        WorkItem Item = std::move(WorkQueue.front());
        WorkQueue.pop_front();
        processItem(std::move(Item));
      }
      Stats.PerBound.push_back({CurrBound, Seen.size(), Stats.Executions});
      if (LimitHit || NextQueue.empty() ||
          CurrBound >= Opts.Limits.MaxPreemptionBound)
        break;
      ++CurrBound;
      std::swap(WorkQueue, NextQueue);
      NextQueue.clear();
    }

    Stats.DistinctStates = Seen.size();
    Stats.DistinctTerminalStates = Terminal.size();
    Stats.Completed = !LimitHit && WorkQueue.empty() && NextQueue.empty();
    Sampler.finish(Stats.Coverage);
    Result.Stats = std::move(Stats);
    Result.Bugs = Opts.CanonicalBugs ? takeCanonicalBugs(std::move(Canonical))
                                     : Bugs.take();
    return Result;
  }

  // --- Executor context hooks ------------------------------------------
  bool claimItem(uint64_t Digest) { return ItemCache.insert(Digest); }
  void noteState(uint64_t Digest) { Seen.insert(Digest); }
  void noteTerminal(uint64_t Digest) { Terminal.insert(Digest); }
  void countSteps(uint64_t N) { Stats.TotalSteps += N; }
  void defer(WorkItem &&Item) { NextQueue.push_back(std::move(Item)); }
  void branch(WorkItem &&Item) { Local.push_back(std::move(Item)); }
  unsigned bound() const { return CurrBound; }

  void recordBug(Bug NewBug) {
    NewBug.Preemptions = CurrBound;
    if (Opts.CanonicalBugs)
      canonicalMergeBug(Canonical, std::move(NewBug));
    else
      Bugs.add(std::move(NewBug));
    if (Opts.Limits.StopAtFirstBug)
      LimitHit = true;
  }

  void endExecution(const ExecutionFacts &F) {
    ++Stats.Executions;
    Stats.StepsPerExecution.observe(F.Steps);
    Stats.PreemptionsPerExecution.observe(CurrBound);
    Stats.PreemptionHistogram.increment(CurrBound);
    Stats.BlockingPerExecution.observe(F.Blocking);
    if (F.ThreadsUsed)
      Stats.ThreadsPerExecution.observe(F.ThreadsUsed);
    Sampler.observe(Stats.Coverage, Stats.Executions, Seen.size());
    if (Stats.Executions >= Opts.Limits.MaxExecutions ||
        Stats.TotalSteps >= Opts.Limits.MaxSteps ||
        Seen.size() >= Opts.Limits.MaxStates)
      LimitHit = true;
  }
  // ---------------------------------------------------------------------

private:
  /// Explores everything reachable from \p Item without further
  /// preemptions; preemptive continuations go to NextQueue. The local
  /// stack holds the nonpreempting branches (Algorithm 1 lines 33-37).
  void processItem(WorkItem Item) {
    Local.push_back(std::move(Item));
    while (!Local.empty() && !LimitHit) {
      WorkItem W = std::move(Local.back());
      Local.pop_back();
      E.runChain(std::move(W), *this);
    }
  }

  Executor &E;
  IcbEngineOptions Opts;
  std::deque<WorkItem> WorkQueue;
  std::deque<WorkItem> NextQueue;
  std::vector<WorkItem> Local;
  StateCache Seen;      ///< Distinct visited states (coverage metric).
  StateCache Terminal;  ///< Distinct terminal fingerprints (rt executor).
  StateCache ItemCache; ///< (state, thread) pruning when caching is on.
  unsigned CurrBound = 0;
  bool LimitHit = false;
  SearchStats Stats;
  CoverageSampler<CoveragePoint> Sampler;
  BugCollector Bugs;
  CanonicalBugMap Canonical;
};

/// Work-stealing parallel driver; one executor per worker.
template <typename Executor> class ParallelEngineDriver {
public:
  using WorkItem = typename Executor::WorkItem;

  ParallelEngineDriver(std::vector<std::unique_ptr<Executor>> &Executors,
                       const IcbEngineOptions &O)
      : Executors(Executors), Opts(O),
        Jobs(static_cast<unsigned>(Executors.size())),
        Seen(shardCountFor(O.Shards, Jobs)),
        Terminal(shardCountFor(O.Shards, Jobs)),
        ItemCache(shardCountFor(O.Shards, Jobs)), NextQueue(Jobs),
        Workers(Jobs) {}

  SearchResult run() {
    SearchResult Result;

    WorkerCtx Ctx0{*this, 0};
    std::vector<WorkItem> Items = Executors[0]->rootItems(Ctx0);
    if (Items.empty()) {
      // Degenerate single-execution program (already accounted by
      // rootItems); mirror the sequential driver's snapshots.
      finalize(Result, !Stop.load());
      Result.Stats.PerBound.push_back(
          {0, Seen.size(), Result.Stats.Executions});
      Result.Stats.Coverage.push_back(
          {Result.Stats.Executions, Seen.size()});
      return Result;
    }

    WorkerPool Pool(Jobs);
    bool MoreBounds = false;
    while (true) {
      // Deal this bound's roots round-robin across the worker deques.
      Pending.store(Items.size(), std::memory_order_relaxed);
      for (size_t I = 0; I != Items.size(); ++I)
        Workers[I % Jobs].Deque.pushBottom(std::move(Items[I]));
      Items.clear();

      // One fork/join round drains the bound; the join is the barrier
      // that guarantees bound c is exhausted before bound c + 1 begins.
      Pool.run([this](unsigned Index) { workerMain(Index); });

      // Quiescent: every count below is exact and schedule-independent.
      Result.Stats.PerBound.push_back(
          {CurrBound, Seen.size(), Executions.load()});
      Result.Stats.Coverage.push_back({Executions.load(), Seen.size()});

      Items = NextQueue.drain();
      if (Stop.load() || Items.empty() ||
          CurrBound >= Opts.Limits.MaxPreemptionBound) {
        MoreBounds = !Items.empty();
        break;
      }
      ++CurrBound;
    }

    finalize(Result, !Stop.load() && !MoreBounds);
    return Result;
  }

private:
  /// Worker-local accumulation; folded into the global result at bound
  /// barriers / at the end. Padded to a cache line so neighbouring
  /// workers' hot counters do not false-share.
  struct alignas(64) WorkerState {
    WorkStealingDeque<WorkItem> Deque;

    // Worker-local slices of SearchStats (all merged with commutative
    // folds, so the merged totals are schedule-independent).
    MinMax StepsPerExecution;
    MinMax BlockingPerExecution;
    MinMax PreemptionsPerExecution;
    MinMax ThreadsPerExecution;
    Histogram PreemptionHistogram;

    /// Worker-local distinct bugs: (kind, message) -> canonical minimal
    /// exposure (see canonicalMergeBug).
    CanonicalBugMap Bugs;
  };

  /// The per-worker Ctx the executor drives. Thin: routes the hooks to
  /// the driver with the worker index attached.
  struct WorkerCtx {
    ParallelEngineDriver &D;
    unsigned Index;

    bool claimItem(uint64_t Digest) { return D.ItemCache.insert(Digest); }
    void noteState(uint64_t Digest) { D.Seen.insert(Digest); }
    void noteTerminal(uint64_t Digest) { D.Terminal.insert(Digest); }
    void countSteps(uint64_t N) {
      D.TotalSteps.fetch_add(N, std::memory_order_relaxed);
    }
    void defer(WorkItem &&Item) {
      D.NextQueue.push(Index, std::move(Item));
    }
    void branch(WorkItem &&Item) {
      // Onto the owner's bottom: popped LIFO by the owner (depth-first,
      // keeps memory bounded), stolen FIFO from the top by idle workers.
      D.Pending.fetch_add(1, std::memory_order_relaxed);
      D.Workers[Index].Deque.pushBottom(std::move(Item));
    }
    unsigned bound() const { return D.CurrBound; }
    void recordBug(Bug NewBug) { D.recordBug(Index, std::move(NewBug)); }
    void endExecution(const ExecutionFacts &F) {
      D.endExecution(Index, F);
    }
  };

  bool takeItem(unsigned Index, WorkItem &Out) {
    if (Workers[Index].Deque.tryPopBottom(Out))
      return true;
    for (unsigned Hop = 1; Hop < Jobs; ++Hop)
      if (Workers[(Index + Hop) % Jobs].Deque.trySteal(Out))
        return true;
    return false;
  }

  void workerMain(unsigned Index) {
    WorkerCtx Ctx{*this, Index};
    Executor &E = *Executors[Index];
    WorkItem Item;
    while (!Stop.load(std::memory_order_relaxed)) {
      if (takeItem(Index, Item)) {
        E.runChain(std::move(Item), Ctx);
        // The chain (and everything it pushed) is accounted; releasing
        // our claim last means Pending only hits zero once no work
        // remains.
        Pending.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (Pending.load(std::memory_order_acquire) == 0)
        return; // Bound drained: no queued items, no running executions.
      std::this_thread::yield(); // Someone is still producing; retry.
    }
  }

  void recordBug(unsigned Index, Bug NewBug) {
    NewBug.Preemptions = CurrBound;
    canonicalMergeBug(Workers[Index].Bugs, std::move(NewBug));
    if (Opts.Limits.StopAtFirstBug)
      Stop.store(true, std::memory_order_relaxed);
  }

  void endExecution(unsigned Index, const ExecutionFacts &F) {
    WorkerState &W = Workers[Index];
    uint64_t Execs = Executions.fetch_add(1, std::memory_order_relaxed) + 1;
    W.StepsPerExecution.observe(F.Steps);
    W.PreemptionsPerExecution.observe(CurrBound);
    W.PreemptionHistogram.increment(CurrBound);
    W.BlockingPerExecution.observe(F.Blocking);
    if (F.ThreadsUsed)
      W.ThreadsPerExecution.observe(F.ThreadsUsed);
    if (Execs >= Opts.Limits.MaxExecutions ||
        TotalSteps.load(std::memory_order_relaxed) >= Opts.Limits.MaxSteps ||
        Seen.size() >= Opts.Limits.MaxStates)
      Stop.store(true, std::memory_order_relaxed);
  }

  void finalize(SearchResult &Result, bool Complete) {
    SearchStats &Stats = Result.Stats;
    Stats.Executions = Executions.load();
    Stats.TotalSteps = TotalSteps.load();
    Stats.DistinctStates = Seen.size();
    Stats.DistinctTerminalStates = Terminal.size();
    Stats.Completed = Complete;

    CanonicalBugMap Merged;
    for (WorkerState &W : Workers) {
      Stats.StepsPerExecution.merge(W.StepsPerExecution);
      Stats.BlockingPerExecution.merge(W.BlockingPerExecution);
      Stats.PreemptionsPerExecution.merge(W.PreemptionsPerExecution);
      Stats.ThreadsPerExecution.merge(W.ThreadsPerExecution);
      Stats.PreemptionHistogram.merge(W.PreemptionHistogram);
      for (auto &Entry : W.Bugs)
        canonicalMergeBug(Merged, std::move(Entry.second));
      W.Bugs.clear();
    }
    Result.Bugs = takeCanonicalBugs(std::move(Merged));
  }

  static unsigned shardCountFor(unsigned Requested, unsigned Jobs) {
    if (Requested)
      return Requested; // Cache rounds up to a power of two itself.
    unsigned Want = Jobs * 8;
    return Want < 64 ? 64 : Want;
  }

  std::vector<std::unique_ptr<Executor>> &Executors;
  IcbEngineOptions Opts;
  unsigned Jobs;

  ShardedStateCache Seen;      ///< Distinct visited states.
  ShardedStateCache Terminal;  ///< Distinct terminal fingerprints (rt).
  ShardedStateCache ItemCache; ///< (state, thread) pruning when caching on.
  StripedQueue<WorkItem> NextQueue; ///< Deferred items for bound c + 1.
  std::vector<WorkerState> Workers;

  std::atomic<uint64_t> Executions{0};
  std::atomic<uint64_t> TotalSteps{0};
  /// Items in deques plus executions in flight this round; the round is
  /// over when it reaches zero (nothing queued, nobody producing).
  std::atomic<uint64_t> Pending{0};
  std::atomic<bool> Stop{false};

  unsigned CurrBound = 0; ///< Written between rounds only.
};

} // namespace detail

/// Runs Algorithm 1 sequentially with \p E executing the work items.
template <typename Executor>
SearchResult runSequentialIcbEngine(Executor &E,
                                    const IcbEngineOptions &Opts) {
  detail::SequentialEngineDriver<Executor> Driver(E, Opts);
  return Driver.run();
}

/// Runs Algorithm 1 with one worker (and one executor) per entry of
/// \p Executors; the executor at index i runs on worker thread i only.
template <typename Executor>
SearchResult
runParallelIcbEngine(std::vector<std::unique_ptr<Executor>> &Executors,
                     const IcbEngineOptions &Opts) {
  detail::ParallelEngineDriver<Executor> Driver(Executors, Opts);
  return Driver.run();
}

} // namespace icb::search

#endif // ICB_SEARCH_ICBENGINE_H
