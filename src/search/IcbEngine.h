//===- search/IcbEngine.h - Algorithm 1 drivers over an Executor -*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two drivers of Algorithm 1, templated over an Executor (see
/// Executor.h): a sequential reference driver and a work-stealing parallel
/// driver. Between them they own everything that is *not* "execute one
/// work item": the per-bound queues and barrier, the visited-state and
/// work-item caches, statistics, coverage sampling, limit checking, and
/// bug deduplication. The executors own how a work item becomes an
/// execution — stepping a model VM or replaying a schedule prefix on the
/// fiber runtime.
///
/// Sequential driver: a FIFO queue of the bound's roots; nonpreempting
/// branches go on a private LIFO stack (depth-first within a chain keeps
/// memory bounded); deferred items queue for the next bound; one snapshot
/// per bound. This is bit-for-bit the historical sequential model-VM
/// behavior.
///
/// Parallel driver: one fork/join round per bound. Parallelizing ICB is
/// natural because the algorithm is a sequence of independent batches:
/// every work item queued for bound c can be explored in isolation — items
/// only communicate *forward*, by publishing deferred (preempting)
/// continuations for bound c + 1.
///
///   * the bound's items are dealt round-robin onto per-worker
///     work-stealing deques; workers pop their own bottom (LIFO) and steal
///     from others' tops (FIFO) when dry, so a bound with few roots but
///     deep subtrees still spreads — nonpreempting branches discovered
///     mid-execution go onto the owner's deque bottom where they are
///     stealable;
///   * deferred continuations are published to a lock-striped next queue
///     (one stripe per worker — steady-state pushes are uncontended);
///   * the visited-state set and the (state, thread) work-item cache are
///     ShardedStateCaches probed concurrently;
///   * statistics and bugs accumulate worker-locally and merge at the
///     bound barrier with commutative folds, so results are independent of
///     scheduling;
///   * the pool's join *is* Algorithm 1's per-bound barrier: bound c + 1
///     starts only after bound c is fully drained, preserving the minimal
///     preemption guarantee for every reported bug.
///
/// Determinism: with the work-item cache off the drivers enumerate the
/// complete bounded tree, every exposure of every bug is recorded, and
/// (under canonical bug mode) duplicate reports collapse to the
/// lexicographically smallest (Preemptions, Steps, Schedule) exposure —
/// aggregate results and bug reports are identical for any worker count.
/// With the cache on, each (state, thread) node is claimed by exactly one
/// worker *before* being stepped; the *set* of claimed nodes is the same
/// whatever the timing, so the aggregate counts, per-bound snapshots,
/// histogram, and the distinct bugs with their minimal preemption counts
/// are identical for any worker count, while per-execution distributions
/// and exposing schedules are attribution-dependent. Runs that trip a
/// resource limit mid-bound are nondeterministic in the obvious way (the
/// limit fires at a timing-dependent point), exactly as a Ctrl-C would be.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_ICBENGINE_H
#define ICB_SEARCH_ICBENGINE_H

#include "obs/Metrics.h"
#include "obs/PhaseTimer.h"
#include "search/BoundPolicy.h"
#include "search/EngineObserver.h"
#include "search/Executor.h"
#include "search/SearchTypes.h"
#include "search/ShardedStateCache.h"
#include "search/StateCache.h"
#include "support/Debug.h"
#include "support/Stats.h"
#include "support/StripedQueue.h"
#include "support/WorkStealingDeque.h"
#include "support/WorkerPool.h"
#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

namespace icb::search {

/// Driver knobs common to both engines.
struct IcbEngineOptions {
  SearchLimits Limits;
  /// The bound policy charging every scheduling decision (BoundPolicy.h).
  /// Null = preemption bounding at Limits.MaxPreemptionBound, the
  /// historical behavior. The policy must outlive the run; it is shared
  /// read-only across workers.
  const BoundPolicy *Policy = nullptr;
  /// Deduplicate bugs to the canonical minimal (Preemptions, Steps,
  /// Schedule) exposure, reported in (kind, message) order — what the
  /// parallel driver always does, and what makes a sequential run's bug
  /// report byte-comparable to a parallel one. Off = the historical
  /// sequential model-VM policy (first exposure wins at equal preemption
  /// counts, discovery order), kept for bit-for-bit compatibility.
  bool CanonicalBugs = false;
  /// Parallel driver only: shards in the concurrent caches (0 = auto).
  unsigned Shards = 0;
  /// Session hooks: periodic checkpoints, cooperative stop, per-bound
  /// progress. Null = unobserved (the historical behavior).
  EngineObserver *Observer = nullptr;
  /// Observability registry: the drivers hand each worker its MetricShard
  /// and fold the shards into every snapshot. Null = unmetered; under
  /// ICB_NO_METRICS the hot-path instrumentation is compiled out and the
  /// registry only ever reports zeros.
  obs::MetricsRegistry *Metrics = nullptr;
  /// Continue from this resumable safe-point snapshot instead of the
  /// executor's root items. Must come from a run with the same executor,
  /// benchmark, and driver configuration; Final snapshots are re-emitted
  /// by the session layer without invoking the engine at all.
  const EngineSnapshot *Resume = nullptr;
  /// Distributed lease participation (see search::LeaseMode): Roots seeds
  /// and returns the bound-0 frontier without draining it (sequential
  /// driver only); Drain executes exactly the resumed bound and returns
  /// the published continuations instead of advancing. In either lease
  /// mode the driver suppresses the per-bound rows and the coverage
  /// sampler — the coordinator owns the bound barrier — and captures the
  /// remaining queues plus the lease-local digest sets in the result.
  LeaseMode Lease = LeaseMode::Off;
};

namespace detail {

#ifndef ICB_NO_METRICS
/// True when \p MS carries an attached trace ring (tracing enabled on the
/// registry). Emission sites branch on this once; the common case is one
/// null test.
inline bool tracing(const obs::MetricShard *MS) {
  return MS && MS->Trace;
}

/// Appends one decision-level event to \p MS's trace ring. Callers have
/// already checked tracing(MS).
inline void traceEvent(obs::MetricShard *MS, obs::TraceEventKind Kind,
                       uint64_t Arg0, uint64_t Arg1, const std::string &Str,
                       unsigned Extra) {
  obs::TraceEvent Ev;
  Ev.Kind = Kind;
  Ev.Nanos = obs::nowNanos();
  Ev.Arg0 = Arg0;
  Ev.Arg1 = Arg1;
  Ev.Str = MS->Trace->intern(Str);
  Ev.Extra = static_cast<uint16_t>(Extra);
  MS->Trace->append(Ev);
}

/// Splits the whole schedule-space mass (obs::EstimateOne) across the
/// surviving roots of both queues, the first root absorbing the integer
/// remainder so the total is exact (see obs::EstimateOne).
template <typename WorkItem>
inline void splitRootMass(std::vector<WorkItem> &Current,
                          std::vector<WorkItem> &Deferred) {
  uint64_t Kept = Current.size() + Deferred.size();
  if (Kept == 0)
    return;
  uint64_t Share = obs::EstimateOne / Kept;
  bool First = true;
  auto Assign = [&](WorkItem &W) {
    W.Est = First ? obs::EstimateOne - Share * (Kept - 1) : Share;
    First = false;
  };
  for (WorkItem &W : Current)
    Assign(W);
  for (WorkItem &W : Deferred)
    Assign(W);
}
#endif

/// Sequential reference driver: drains each bound's queue on the calling
/// thread. This class is the Ctx its executor drives.
template <typename Executor> class SequentialEngineDriver {
public:
  using WorkItem = typename Executor::WorkItem;

  SequentialEngineDriver(Executor &E, const IcbEngineOptions &Opts)
      : E(E), Opts(Opts), DefaultPolicy(Opts.Limits.MaxPreemptionBound),
        BP(Opts.Policy ? *Opts.Policy : DefaultPolicy) {
    if (Opts.Metrics) {
      Opts.Metrics->ensureShards(1);
      MShard = &Opts.Metrics->shard(0);
    }
  }

  SearchResult run() {
    SearchResult Result;

    if (Opts.Resume)
      restore(*Opts.Resume);
    else
      seedRoots(E.rootItems(*this));

    if (Opts.Lease == LeaseMode::Roots) {
      // Roots lease: hand the seeded frontier back unexecuted. The
      // degenerate no-schedulable-thread program has already accounted its
      // single execution (and any deadlock) through the hooks above.
      Stats.DistinctStates = Seen.size();
      Stats.DistinctTerminalStates = Terminal.size();
      Stats.Completed = true;
      captureLease(Result);
      Result.Stats = std::move(Stats);
      Result.Bugs = Opts.CanonicalBugs
                        ? takeCanonicalBugs(std::move(Canonical))
                        : Bugs.take();
      return Result;
    }

    // Algorithm 1 lines 9-21: drain the current bound, snapshot coverage,
    // move on to the next. Checkpoint safe points sit between work-item
    // chains: Local is empty there, so the frontier is exactly the two
    // queues, in replayable FIFO order.
    bool Stopped = false;
    while (true) {
      while (!WorkQueue.empty() && !LimitHit) {
        if (Opts.Observer && Opts.Observer->stopRequested()) {
          Stopped = true;
          break;
        }
        WorkItem Item = std::move(WorkQueue.front());
        WorkQueue.pop_front();
        processItem(std::move(Item));
        if (Opts.Observer && !LimitHit &&
            Opts.Observer->checkpointDue(Stats.Executions))
          emitResumable();
      }
      if (Stopped || Opts.Lease != LeaseMode::Off)
        break; // A drain lease never advances past its bound.
      Stats.PerBound.push_back({CurrBound, Seen.size(), Stats.Executions});
      if (Opts.Observer)
        Opts.Observer->onBoundComplete(Stats.PerBound.back());
      if (LimitHit || NextQueue.empty() || CurrBound >= BP.frontierBound())
        break;
      ++CurrBound;
      std::swap(WorkQueue, NextQueue);
      NextQueue.clear();
    }

    if (Stopped && Opts.Lease == LeaseMode::Off)
      emitResumable(); // Flush the frontier before reporting back.

    Stats.DistinctStates = Seen.size();
    Stats.DistinctTerminalStates = Terminal.size();
    Stats.Completed = !Stopped && !LimitHit && WorkQueue.empty() &&
                      (Opts.Lease != LeaseMode::Off || NextQueue.empty());
    if (Opts.Lease == LeaseMode::Off)
      Sampler.finish(Stats.Coverage);
    else
      captureLease(Result);
    Result.Stats = std::move(Stats);
    Result.Bugs = Opts.CanonicalBugs ? takeCanonicalBugs(std::move(Canonical))
                                     : Bugs.take();
    Result.Interrupted = Stopped;
    if (!Stopped && Opts.Observer && Opts.Lease == LeaseMode::Off)
      emitFinal(Result);
    return Result;
  }

  // --- Executor context hooks ------------------------------------------
  bool claimItem(uint64_t Digest) {
    obs::ScopedPhase Timer(MShard, obs::Phase::CacheProbe);
    bool Claimed = ItemCache.insert(Digest);
    obs::count(MShard,
               Claimed ? obs::Counter::ItemMiss : obs::Counter::ItemHit);
    return Claimed;
  }
  void noteState(uint64_t Digest) {
    obs::ScopedPhase Timer(MShard, obs::Phase::CacheProbe);
    bool New = Seen.insert(Digest);
    obs::count(MShard, New ? obs::Counter::SeenMiss : obs::Counter::SeenHit);
#ifndef ICB_NO_METRICS
    // Attribute first-seen states to the chain's seeding preemption site.
    if (New && MShard && !ChainSite.empty())
      MShard->Sites[ChainSite].NewStates.increment(CurrBound);
#endif
  }
  void noteTerminal(uint64_t Digest) {
    obs::ScopedPhase Timer(MShard, obs::Phase::CacheProbe);
    bool New = Terminal.insert(Digest);
    obs::count(MShard,
               New ? obs::Counter::TerminalMiss : obs::Counter::TerminalHit);
  }
  void countSteps(uint64_t N) { Stats.TotalSteps += N; }
  void defer(WorkItem &&Item) {
    obs::count(MShard, obs::Counter::DeferredItems);
#ifndef ICB_NO_METRICS
    // A deferred item is a preemption taken at its site, executed (if
    // ever) at the next bound — that bound indexes the Taken histogram.
    if (MShard && !Item.Site.empty())
      MShard->Sites[Item.Site].Taken.increment(CurrBound + 1);
    if (tracing(MShard)) {
      Item.Flow = ++FlowSeq;
      traceEvent(MShard, obs::TraceEventKind::Defer, Item.Flow, 0,
                 Item.Site, CurrBound + 1);
    }
#endif
    NextQueue.push_back(std::move(Item));
  }
  void branch(WorkItem &&Item) {
    obs::count(MShard, obs::Counter::BranchedItems);
#ifndef ICB_NO_METRICS
    if (tracing(MShard)) {
      Item.Flow = ++FlowSeq;
      traceEvent(MShard, obs::TraceEventKind::Branch, Item.Flow, 0,
                 Item.Site, CurrBound);
    }
#endif
    Local.push_back(std::move(Item));
  }
  unsigned bound() const { return CurrBound; }
  const BoundPolicy &policy() const { return BP; }
  obs::MetricShard *metrics() { return MShard; }

  void recordBug(Bug NewBug) {
    // Under preemption bounding the bound index *is* the preemption count
    // (the paper's minimality guarantee); other policies keep the true
    // count the executor measured.
    if (BP.kind() == BoundKind::Preemption)
      NewBug.Preemptions = CurrBound;
#ifndef ICB_NO_METRICS
    if (MShard && !ChainSite.empty())
      MShard->Sites[ChainSite].Bugs.increment(CurrBound);
    if (tracing(MShard))
      traceEvent(MShard, obs::TraceEventKind::Bug, 0, 0, NewBug.Message,
                 CurrBound);
#endif
    if (Opts.CanonicalBugs)
      canonicalMergeBug(Canonical, std::move(NewBug));
    else
      Bugs.add(std::move(NewBug));
    if (Opts.Limits.StopAtFirstBug)
      LimitHit = true;
  }

  void endExecution(const ExecutionFacts &F) {
    ++Stats.Executions;
    Stats.StepsPerExecution.observe(F.Steps);
    Stats.PreemptionsPerExecution.observe(CurrBound);
    Stats.PreemptionHistogram.increment(CurrBound);
    Stats.BlockingPerExecution.observe(F.Blocking);
    if (F.ThreadsUsed)
      Stats.ThreadsPerExecution.observe(F.ThreadsUsed);
    if (Opts.Lease == LeaseMode::Off)
      Sampler.observe(Stats.Coverage, Stats.Executions, Seen.size());
    ICB_OBS(MShard, MShard->ExecutionsPerBound.increment(CurrBound));
#ifndef ICB_NO_METRICS
    EstCredited += F.EstMass;
    if (MShard) {
      MShard->EstMassPerBound.increment(CurrBound, F.EstMass);
      if (!ChainSite.empty())
        MShard->Sites[ChainSite].Execs.increment(CurrBound);
    }
    if (tracing(MShard))
      traceEvent(MShard, obs::TraceEventKind::ExecEnd, F.Steps, 0,
                 ChainSite, CurrBound);
#endif
    if (Stats.Executions >= Opts.Limits.MaxExecutions ||
        Stats.TotalSteps >= Opts.Limits.MaxSteps ||
        Seen.size() >= Opts.Limits.MaxStates)
      LimitHit = true;
    if (Opts.Observer && Opts.Observer->progressDue())
      Opts.Observer->onProgress(progressSample());
  }
  // ---------------------------------------------------------------------

private:
  /// Coarse frontier sample for the progress ticker. Local holds the
  /// in-flight chain's nonpreempting branches, so it counts as frontier.
  obs::ProgressSample progressSample() const {
    obs::ProgressSample S;
    S.Bound = CurrBound;
    S.MaxBound = BP.frontierBound();
    S.Executions = Stats.Executions;
    S.TotalSteps = Stats.TotalSteps;
    S.States = Seen.size();
    S.FrontierRemaining = WorkQueue.size() + Local.size();
    S.DeferredNext = NextQueue.size();
    S.Bugs = Opts.CanonicalBugs ? Canonical.size() : Bugs.bugs().size();
    S.EstMass = EstCredited;
    return S;
  }

  /// Seeds the bound-0 frontier from the executor's root items. The first
  /// root is the default schedule; the policy charges every other root as
  /// a free-switch deviation from it (the delay policy defers them to
  /// bound 1; preemption and thread keep them all free — byte-identical
  /// to the pre-seam seeding). The surviving roots split the whole
  /// schedule-space mass between them (the estimator's invariant base).
  void seedRoots(std::vector<WorkItem> Roots) {
    std::vector<WorkItem> Current, Deferred;
    for (size_t I = 0; I != Roots.size(); ++I) {
      if (I == 0) {
        Current.push_back(std::move(Roots[I]));
        continue;
      }
      Decision D; // FreeSwitch.
      BoundState Charged;
      ChargeOutcome O = BP.chargeFor(D, Roots[I].BState, Charged);
      if (O == ChargeOutcome::Prune)
        continue;
      Roots[I].BState = std::move(Charged);
      if (O == ChargeOutcome::NextBound)
        Deferred.push_back(std::move(Roots[I]));
      else
        Current.push_back(std::move(Roots[I]));
    }
#ifndef ICB_NO_METRICS
    splitRootMass(Current, Deferred);
#endif
    for (WorkItem &W : Current)
      WorkQueue.push_back(std::move(W));
    for (WorkItem &W : Deferred)
      NextQueue.push_back(std::move(W));
  }

  /// Rebuilds the driver from a resumable snapshot: frontier queues in
  /// their original FIFO order, digest sets, statistics, the sampler
  /// cursor, and the bug state (re-added in recorded order, so the
  /// non-canonical collector's discovery order survives the round trip).
  /// Item reconstruction (the model-VM executor replays each prefix
  /// through the interpreter) is timed as the replay phase but touches no
  /// counters — the counters must match an uninterrupted run's.
  void restore(const EngineSnapshot &Snap) {
    ICB_ASSERT(!Snap.Final, "resuming a finished run through the engine");
    if (Opts.Metrics)
      Opts.Metrics->restore(Snap.Metrics);
    obs::ScopedPhase Timer(MShard, obs::Phase::Replay);
    CurrBound = Snap.Bound;
    for (const SavedWorkItem &S : Snap.CurrentQueue)
      WorkQueue.push_back(E.loadItem(S));
    for (const SavedWorkItem &S : Snap.NextQueue)
      NextQueue.push_back(E.loadItem(S));
    for (uint64_t Digest : Snap.SeenDigests)
      Seen.insert(Digest);
    for (uint64_t Digest : Snap.TerminalDigests)
      Terminal.insert(Digest);
    for (uint64_t Digest : Snap.ItemDigests)
      ItemCache.insert(Digest);
    Stats = Snap.Stats;
    Stats.Completed = false;
#ifndef ICB_NO_METRICS
    // Progress-display seed only; the authoritative mass is the restored
    // registry base plus whatever this segment credits.
    EstCredited = Snap.Metrics.estMassTotal();
#endif
    Sampler.restoreState(Snap.Sampler);
    for (const Bug &B : Snap.Bugs) {
      if (Opts.CanonicalBugs)
        canonicalMergeBug(Canonical, B);
      else
        Bugs.add(B);
    }
  }

  /// Captures the lease output: whatever is left of the two queues plus
  /// the lease-local digest sets (fresh caches in lease mode, so these are
  /// exactly this lease's distinct probes).
  void captureLease(SearchResult &Result) {
    Result.LeaseCurrent.reserve(WorkQueue.size());
    for (const WorkItem &W : WorkQueue)
      Result.LeaseCurrent.push_back(E.saveItem(W));
    Result.LeaseDeferred.reserve(NextQueue.size());
    for (const WorkItem &W : NextQueue)
      Result.LeaseDeferred.push_back(E.saveItem(W));
    Result.LeaseSeen = Seen.digests();
    Result.LeaseTerminal = Terminal.digests();
    Result.LeaseItems = ItemCache.digests();
  }

  /// Emits a resumable safe-point snapshot (Local is empty here).
  void emitResumable() {
    obs::ScopedPhase Timer(MShard, obs::Phase::Snapshot);
    obs::count(MShard, obs::Counter::Snapshots);
    EngineSnapshot Snap;
    Snap.Bound = CurrBound;
    Snap.CurrentQueue.reserve(WorkQueue.size());
    for (const WorkItem &W : WorkQueue)
      Snap.CurrentQueue.push_back(E.saveItem(W));
    for (const WorkItem &W : NextQueue)
      Snap.NextQueue.push_back(E.saveItem(W));
    Snap.Stats = Stats;
    Snap.Stats.DistinctStates = Seen.size();
    Snap.Stats.DistinctTerminalStates = Terminal.size();
    Snap.Sampler = Sampler.saveState();
    Snap.SeenDigests = Seen.digests();
    Snap.TerminalDigests = Terminal.digests();
    Snap.ItemDigests = ItemCache.digests();
    if (Opts.CanonicalBugs)
      for (const auto &Entry : Canonical)
        Snap.Bugs.push_back(Entry.second);
    else
      Snap.Bugs = Bugs.bugs();
    if (Opts.Metrics)
      Snap.Metrics = Opts.Metrics->snapshot();
    Opts.Observer->onCheckpoint(Snap);
  }

  /// Emits the Final snapshot of a run that ended on its own.
  void emitFinal(const SearchResult &Result) {
    obs::count(MShard, obs::Counter::Snapshots);
    EngineSnapshot Snap;
    Snap.Bound = CurrBound;
    Snap.Final = true;
    Snap.Stats = Result.Stats;
    Snap.Bugs = Result.Bugs;
    if (Opts.Metrics)
      Snap.Metrics = Opts.Metrics->snapshot();
    Opts.Observer->onCheckpoint(Snap);
  }

  /// Explores everything reachable from \p Item without further
  /// preemptions; preemptive continuations go to NextQueue. The local
  /// stack holds the nonpreempting branches (Algorithm 1 lines 33-37).
  void processItem(WorkItem Item) {
    Local.push_back(std::move(Item));
    while (!Local.empty() && !LimitHit) {
      WorkItem W = std::move(Local.back());
      Local.pop_back();
      obs::count(MShard, obs::Counter::Chains);
#ifndef ICB_NO_METRICS
      ChainSite = W.Site;
      if (tracing(MShard))
        traceEvent(MShard, obs::TraceEventKind::ExecBegin, W.Flow, 0,
                   W.Site, CurrBound);
#endif
      obs::ScopedPhase Timer(MShard, obs::Phase::Execute);
      E.runChain(std::move(W), *this);
    }
  }

  Executor &E;
  IcbEngineOptions Opts;
  /// The preemption fallback when Opts.Policy is null (historical runs).
  PreemptionBoundPolicy DefaultPolicy;
  const BoundPolicy &BP;
  std::deque<WorkItem> WorkQueue;
  std::deque<WorkItem> NextQueue;
  std::vector<WorkItem> Local;
  StateCache Seen;      ///< Distinct visited states (coverage metric).
  StateCache Terminal;  ///< Distinct terminal fingerprints (rt executor).
  StateCache ItemCache; ///< (state, thread) pruning when caching is on.
  unsigned CurrBound = 0;
  bool LimitHit = false;
  SearchStats Stats;
  CoverageSampler<CoveragePoint> Sampler;
  BugCollector Bugs;
  CanonicalBugMap Canonical;
  obs::MetricShard *MShard = nullptr; ///< Registry shard 0 (or null).
  /// Seeding preemption site of the chain in flight — the attribution key
  /// for states, executions, and bugs found downstream of it.
  std::string ChainSite;
  /// Trace flow ids handed to published items (0 = untraced).
  uint64_t FlowSeq = 0;
  /// Running total of credited schedule-space mass, for the progress
  /// ticker only (the registry's merged histogram is authoritative).
  uint64_t EstCredited = 0;
};

/// Work-stealing parallel driver; one executor per worker.
template <typename Executor> class ParallelEngineDriver {
public:
  using WorkItem = typename Executor::WorkItem;

  ParallelEngineDriver(std::vector<std::unique_ptr<Executor>> &Executors,
                       const IcbEngineOptions &O)
      : Executors(Executors), Opts(O),
        DefaultPolicy(O.Limits.MaxPreemptionBound),
        BP(O.Policy ? *O.Policy : DefaultPolicy),
        Jobs(static_cast<unsigned>(Executors.size())),
        Seen(shardCountFor(O.Shards, Jobs)),
        Terminal(shardCountFor(O.Shards, Jobs)),
        ItemCache(shardCountFor(O.Shards, Jobs)), NextQueue(Jobs),
        Workers(Jobs) {
    if (Opts.Metrics)
      Opts.Metrics->ensureShards(Jobs);
  }

  SearchResult run() {
    SearchResult Result;
    // Roots leases never execute anything, so the coordinator always runs
    // them through the sequential driver.
    ICB_ASSERT(Opts.Lease != LeaseMode::Roots,
               "roots leases use the sequential driver");

    std::vector<WorkItem> Items;
    if (Opts.Resume) {
      restore(*Opts.Resume, Items);
    } else {
      WorkerCtx Ctx0{*this, 0};
      Items = seedRoots(Executors[0]->rootItems(Ctx0));
      if (Items.empty()) {
        // Degenerate single-execution program (already accounted by
        // rootItems); mirror the sequential driver's snapshots.
        finalize(Result, !Stop.load());
        Result.Stats.PerBound.push_back(
            {0, Seen.size(), Result.Stats.Executions});
        Result.Stats.Coverage.push_back(
            {Result.Stats.Executions, Seen.size()});
        if (Opts.Observer)
          emitFinal(Result);
        return Result;
      }
    }

    WorkerPool Pool(Jobs);
    bool MoreBounds = false;
    while (true) {
      // Deal this bound's roots round-robin across the worker deques.
      Pending.store(Items.size(), std::memory_order_relaxed);
      for (size_t I = 0; I != Items.size(); ++I)
        Workers[I % Jobs].Deque.pushBottom(std::move(Items[I]));
      Items.clear();

      // One fork/join round drains the bound; the join is the barrier
      // that guarantees bound c is exhausted before bound c + 1 begins.
      Pool.run([this](unsigned Index) { workerMain(Index); });

      if (Opts.Lease != LeaseMode::Off) {
        // One lease round: capture the remaining frontier (unexecuted
        // items only when a limit or stop cut the round short) instead of
        // advancing the bound — the coordinator owns the barrier.
        for (WorkerState &W : Workers) {
          WorkItem Item;
          while (W.Deque.tryPopBottom(Item))
            Result.LeaseCurrent.push_back(Executors[0]->saveItem(Item));
        }
        for (WorkItem &Item : NextQueue.drain())
          Result.LeaseDeferred.push_back(Executors[0]->saveItem(Item));
        Result.LeaseSeen = Seen.digests();
        Result.LeaseTerminal = Terminal.digests();
        Result.LeaseItems = ItemCache.digests();
        Result.Interrupted = ExternalStop.load();
        finalize(Result, !Stop.load() && Result.LeaseCurrent.empty());
        return Result;
      }

      if (ExternalStop.load()) {
        // Cooperative stop: every in-flight chain finished before its
        // worker exited, so the remaining frontier sits wholly in the
        // deques and the striped next queue — drain it into one
        // resumable snapshot. (Item order is attribution-dependent, but
        // the parallel driver's results are order-independent anyway.)
        emitStopSnapshot();
        Result.Interrupted = true;
        finalize(Result, false);
        return Result;
      }

      // Quiescent: every count below is exact and schedule-independent.
      Base.PerBound.push_back({CurrBound, Seen.size(), Executions.load()});
      Base.Coverage.push_back({Executions.load(), Seen.size()});
      if (Opts.Observer)
        Opts.Observer->onBoundComplete(Base.PerBound.back());

      Items = NextQueue.drain();
      DeferredCount.store(0, std::memory_order_relaxed);
      if (Stop.load() || Items.empty() || CurrBound >= BP.frontierBound()) {
        MoreBounds = !Items.empty();
        break;
      }
      ++CurrBound;

      // Periodic checkpoints land on bound barriers, normalized so the
      // drained deferred items are the (new) current bound's roots.
      if (Opts.Observer && Opts.Observer->checkpointDue(Executions.load()))
        emitBarrierSnapshot(Items);
    }

    finalize(Result, !Stop.load() && !MoreBounds);
    if (Opts.Observer)
      emitFinal(Result);
    return Result;
  }

private:
  /// Worker-local accumulation; folded into the global result at bound
  /// barriers / at the end. Padded to a cache line so neighbouring
  /// workers' hot counters do not false-share.
  struct alignas(64) WorkerState {
    WorkStealingDeque<WorkItem> Deque;

    // Worker-local slices of SearchStats (all merged with commutative
    // folds, so the merged totals are schedule-independent).
    MinMax StepsPerExecution;
    MinMax BlockingPerExecution;
    MinMax PreemptionsPerExecution;
    MinMax ThreadsPerExecution;
    Histogram PreemptionHistogram;

    /// Worker-local distinct bugs: (kind, message) -> canonical minimal
    /// exposure (see canonicalMergeBug).
    CanonicalBugMap Bugs;
  };

  /// The per-worker Ctx the executor drives. Thin: routes the hooks to
  /// the driver with the worker index attached, plus the worker's private
  /// metric shard (null when the run has no registry).
  struct WorkerCtx {
    ParallelEngineDriver &D;
    unsigned Index;
    obs::MetricShard *MS;
    /// Seeding preemption site of this worker's chain in flight (set by
    /// workerMain before runChain) — the attribution key for states,
    /// executions, and bugs discovered downstream.
    std::string ChainSite;
    /// Worker-local trace flow sequence; flow ids are namespaced by
    /// worker index so publications never collide across workers.
    uint64_t FlowSeq = 0;

    WorkerCtx(ParallelEngineDriver &D, unsigned Index)
        : D(D), Index(Index),
          MS(D.Opts.Metrics ? &D.Opts.Metrics->shard(Index) : nullptr) {}

    bool claimItem(uint64_t Digest) {
      obs::ScopedPhase Timer(MS, obs::Phase::CacheProbe);
      bool Claimed = D.ItemCache.insert(Digest);
      obs::count(MS,
                 Claimed ? obs::Counter::ItemMiss : obs::Counter::ItemHit);
      return Claimed;
    }
    void noteState(uint64_t Digest) {
      obs::ScopedPhase Timer(MS, obs::Phase::CacheProbe);
      bool New = D.Seen.insert(Digest);
      obs::count(MS, New ? obs::Counter::SeenMiss : obs::Counter::SeenHit);
#ifndef ICB_NO_METRICS
      // Honest but timing-class: under --jobs N, which worker first
      // reaches a shared state is attribution-dependent, so per-site
      // NewStates serializes with the timing half.
      if (New && MS && !ChainSite.empty())
        MS->Sites[ChainSite].NewStates.increment(D.CurrBound);
#endif
    }
    void noteTerminal(uint64_t Digest) {
      obs::ScopedPhase Timer(MS, obs::Phase::CacheProbe);
      bool New = D.Terminal.insert(Digest);
      obs::count(MS,
                 New ? obs::Counter::TerminalMiss : obs::Counter::TerminalHit);
    }
    void countSteps(uint64_t N) {
      D.TotalSteps.fetch_add(N, std::memory_order_relaxed);
    }
    void defer(WorkItem &&Item) {
      obs::count(MS, obs::Counter::DeferredItems);
#ifndef ICB_NO_METRICS
      if (MS && !Item.Site.empty())
        MS->Sites[Item.Site].Taken.increment(D.CurrBound + 1);
      if (tracing(MS)) {
        Item.Flow = nextFlow();
        traceEvent(MS, obs::TraceEventKind::Defer, Item.Flow, 0, Item.Site,
                   D.CurrBound + 1);
      }
#endif
      D.DeferredCount.fetch_add(1, std::memory_order_relaxed);
      D.NextQueue.push(Index, std::move(Item));
    }
    void branch(WorkItem &&Item) {
      // Onto the owner's bottom: popped LIFO by the owner (depth-first,
      // keeps memory bounded), stolen FIFO from the top by idle workers.
      obs::count(MS, obs::Counter::BranchedItems);
#ifndef ICB_NO_METRICS
      if (tracing(MS)) {
        Item.Flow = nextFlow();
        traceEvent(MS, obs::TraceEventKind::Branch, Item.Flow, 0, Item.Site,
                   D.CurrBound);
      }
#endif
      D.Pending.fetch_add(1, std::memory_order_relaxed);
      D.Workers[Index].Deque.pushBottom(std::move(Item));
    }
    unsigned bound() const { return D.CurrBound; }
    const BoundPolicy &policy() const { return D.BP; }
    obs::MetricShard *metrics() { return MS; }
    void recordBug(Bug NewBug) {
#ifndef ICB_NO_METRICS
      if (MS && !ChainSite.empty())
        MS->Sites[ChainSite].Bugs.increment(D.CurrBound);
      if (tracing(MS))
        traceEvent(MS, obs::TraceEventKind::Bug, 0, 0, NewBug.Message,
                   D.CurrBound);
#endif
      D.recordBug(Index, std::move(NewBug));
    }
    void endExecution(const ExecutionFacts &F) {
#ifndef ICB_NO_METRICS
      if (MS) {
        MS->EstMassPerBound.increment(D.CurrBound, F.EstMass);
        if (!ChainSite.empty())
          MS->Sites[ChainSite].Execs.increment(D.CurrBound);
      }
      if (tracing(MS))
        traceEvent(MS, obs::TraceEventKind::ExecEnd, F.Steps, 0, ChainSite,
                   D.CurrBound);
#endif
      D.endExecution(Index, MS, F);
    }

  private:
    /// Worker-namespaced flow id: the worker index in the high bits keeps
    /// ids unique without cross-worker coordination; sequence numbers stay
    /// far below 2^40 in any plausible run.
    uint64_t nextFlow() {
      return (static_cast<uint64_t>(Index + 1) << 40) | ++FlowSeq;
    }
  };

  /// Seeds the bound-0 frontier from the executor's root items, mirroring
  /// the sequential driver: the first root is the default schedule and the
  /// policy charges every other root as a free-switch deviation. Returns
  /// the current bound's roots; NextBound-charged roots go to the striped
  /// next queue.
  std::vector<WorkItem> seedRoots(std::vector<WorkItem> Roots) {
    std::vector<WorkItem> Kept, Deferred;
    Kept.reserve(Roots.size());
    for (size_t I = 0; I != Roots.size(); ++I) {
      if (I == 0) {
        Kept.push_back(std::move(Roots[I]));
        continue;
      }
      Decision D; // FreeSwitch.
      BoundState Charged;
      ChargeOutcome O = BP.chargeFor(D, Roots[I].BState, Charged);
      if (O == ChargeOutcome::Prune)
        continue;
      Roots[I].BState = std::move(Charged);
      if (O == ChargeOutcome::NextBound)
        Deferred.push_back(std::move(Roots[I]));
      else
        Kept.push_back(std::move(Roots[I]));
    }
#ifndef ICB_NO_METRICS
    // Same split order as the sequential driver (kept roots first, root 0
    // absorbing the remainder), so the credited masses are byte-identical.
    splitRootMass(Kept, Deferred);
#endif
    for (WorkItem &W : Deferred) {
      DeferredCount.fetch_add(1, std::memory_order_relaxed);
      NextQueue.push(0, std::move(W));
    }
    return Kept;
  }

  bool takeItem(unsigned Index, obs::MetricShard *MS, WorkItem &Out) {
    if (Workers[Index].Deque.tryPopBottom(Out))
      return true;
    for (unsigned Hop = 1; Hop < Jobs; ++Hop) {
      obs::count(MS, obs::Counter::StealAttempts);
      if (Workers[(Index + Hop) % Jobs].Deque.trySteal(Out)) {
        obs::count(MS, obs::Counter::StealHits);
        return true;
      }
    }
    return false;
  }

  void workerMain(unsigned Index) {
    WorkerCtx Ctx{*this, Index};
    obs::MetricShard *MS = Ctx.MS;
    uint64_t *Busy = MS ? &MS->Worker.BusyNanos : nullptr;
    uint64_t *Idle = MS ? &MS->Worker.IdleNanos : nullptr;
    Executor &E = *Executors[Index];
    WorkItem Item;
    while (!Stop.load(std::memory_order_relaxed)) {
      if (Opts.Observer && Opts.Observer->stopRequested()) {
        ExternalStop.store(true, std::memory_order_relaxed);
        Stop.store(true, std::memory_order_relaxed);
        return;
      }
      if (takeItem(Index, MS, Item)) {
        {
          obs::count(MS, obs::Counter::Chains);
#ifndef ICB_NO_METRICS
          Ctx.ChainSite = Item.Site;
          if (tracing(MS))
            traceEvent(MS, obs::TraceEventKind::ExecBegin, Item.Flow, 0,
                       Item.Site, CurrBound);
#endif
          obs::ScopedPhase Timer(MS, obs::Phase::Execute, Busy);
          E.runChain(std::move(Item), Ctx);
        }
        // The chain (and everything it pushed) is accounted; releasing
        // our claim last means Pending only hits zero once no work
        // remains.
        Pending.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (Pending.load(std::memory_order_acquire) == 0)
        return; // Bound drained: no queued items, no running executions.
      obs::ScopedPhase Wait(nullptr, obs::Phase::Execute, Idle);
      std::this_thread::yield(); // Someone is still producing; retry.
    }
  }

  void recordBug(unsigned Index, Bug NewBug) {
    // Bound index == preemption count only under the preemption policy;
    // other policies keep the executor's measured count.
    if (BP.kind() == BoundKind::Preemption)
      NewBug.Preemptions = CurrBound;
    canonicalMergeBug(Workers[Index].Bugs, std::move(NewBug));
    BugCount.fetch_add(1, std::memory_order_relaxed);
    if (Opts.Limits.StopAtFirstBug)
      Stop.store(true, std::memory_order_relaxed);
  }

  void endExecution(unsigned Index, obs::MetricShard *MS,
                    const ExecutionFacts &F) {
    WorkerState &W = Workers[Index];
    uint64_t Execs = Executions.fetch_add(1, std::memory_order_relaxed) + 1;
    W.StepsPerExecution.observe(F.Steps);
    W.PreemptionsPerExecution.observe(CurrBound);
    W.PreemptionHistogram.increment(CurrBound);
    W.BlockingPerExecution.observe(F.Blocking);
    if (F.ThreadsUsed)
      W.ThreadsPerExecution.observe(F.ThreadsUsed);
    ICB_OBS(MS, MS->ExecutionsPerBound.increment(CurrBound));
#ifndef ICB_NO_METRICS
    EstCredited.fetch_add(F.EstMass, std::memory_order_relaxed);
#endif
    if (Execs >= Opts.Limits.MaxExecutions ||
        TotalSteps.load(std::memory_order_relaxed) >= Opts.Limits.MaxSteps ||
        Seen.size() >= Opts.Limits.MaxStates)
      Stop.store(true, std::memory_order_relaxed);
    if (Opts.Observer && Opts.Observer->progressDue())
      Opts.Observer->onProgress(progressSample(Execs));
  }

  /// Coarse frontier sample assembled from the shared atomics; any worker
  /// may call this after claiming a progress tick.
  obs::ProgressSample progressSample(uint64_t Execs) const {
    obs::ProgressSample S;
    S.Bound = CurrBound;
    S.MaxBound = BP.frontierBound();
    S.Executions = Execs;
    S.TotalSteps = TotalSteps.load(std::memory_order_relaxed);
    S.States = Seen.size();
    S.FrontierRemaining = Pending.load(std::memory_order_relaxed);
    S.DeferredNext = DeferredCount.load(std::memory_order_relaxed);
    S.Bugs = BugCount.load(std::memory_order_relaxed);
    S.EstMass = EstCredited.load(std::memory_order_relaxed);
    return S;
  }

  /// Folds (and resets) every worker's local slices into the Base
  /// accumulators. Commutative merges: callable at any quiescent point
  /// (barrier, post-join stop, end) without double counting.
  void mergeWorkersIntoBase() {
    for (WorkerState &W : Workers) {
      Base.StepsPerExecution.merge(W.StepsPerExecution);
      Base.BlockingPerExecution.merge(W.BlockingPerExecution);
      Base.PreemptionsPerExecution.merge(W.PreemptionsPerExecution);
      Base.ThreadsPerExecution.merge(W.ThreadsPerExecution);
      Base.PreemptionHistogram.merge(W.PreemptionHistogram);
      W.StepsPerExecution = MinMax();
      W.BlockingPerExecution = MinMax();
      W.PreemptionsPerExecution = MinMax();
      W.ThreadsPerExecution = MinMax();
      W.PreemptionHistogram = Histogram();
      for (auto &Entry : W.Bugs)
        canonicalMergeBug(BaseBugs, std::move(Entry.second));
      W.Bugs.clear();
    }
  }

  void finalize(SearchResult &Result, bool Complete) {
    mergeWorkersIntoBase();
    Base.Executions = Executions.load();
    Base.TotalSteps = TotalSteps.load();
    Base.DistinctStates = Seen.size();
    Base.DistinctTerminalStates = Terminal.size();
    Base.Completed = Complete;
    Result.Stats = std::move(Base);
    Result.Bugs = takeCanonicalBugs(std::move(BaseBugs));
  }

  /// Seeds the driver from a resumable snapshot; \p Items receives the
  /// current bound's roots. Reconstruction is timed as the replay phase
  /// but touches no counters (they must match an uninterrupted run's).
  void restore(const EngineSnapshot &Snap, std::vector<WorkItem> &Items) {
    ICB_ASSERT(!Snap.Final, "resuming a finished run through the engine");
    if (Opts.Metrics)
      Opts.Metrics->restore(Snap.Metrics);
    obs::MetricShard *MS = Opts.Metrics ? &Opts.Metrics->shard(0) : nullptr;
    obs::ScopedPhase Timer(MS, obs::Phase::Replay);
    CurrBound = Snap.Bound;
    Items.reserve(Snap.CurrentQueue.size());
    for (const SavedWorkItem &S : Snap.CurrentQueue)
      Items.push_back(Executors[0]->loadItem(S));
    for (const SavedWorkItem &S : Snap.NextQueue) {
      DeferredCount.fetch_add(1, std::memory_order_relaxed);
      NextQueue.push(0, Executors[0]->loadItem(S));
    }
    for (uint64_t Digest : Snap.SeenDigests)
      Seen.insert(Digest);
    for (uint64_t Digest : Snap.TerminalDigests)
      Terminal.insert(Digest);
    for (uint64_t Digest : Snap.ItemDigests)
      ItemCache.insert(Digest);
    Base = Snap.Stats;
    Base.Completed = false;
#ifndef ICB_NO_METRICS
    // Progress-display seed only; the authoritative mass is the restored
    // registry base plus whatever this segment credits.
    EstCredited.store(Snap.Metrics.estMassTotal(),
                      std::memory_order_relaxed);
#endif
    Executions.store(Snap.Stats.Executions);
    TotalSteps.store(Snap.Stats.TotalSteps);
    for (const Bug &B : Snap.Bugs)
      canonicalMergeBug(BaseBugs, B);
    BugCount.store(Snap.Bugs.size(), std::memory_order_relaxed);
  }

  /// Shared tail of both resumable snapshot forms: statistics, digest
  /// sets, and the canonical bug map so far.
  void fillCommonSnapshot(EngineSnapshot &Snap) {
    Snap.Stats = Base;
    Snap.Stats.Executions = Executions.load();
    Snap.Stats.TotalSteps = TotalSteps.load();
    Snap.Stats.DistinctStates = Seen.size();
    Snap.Stats.DistinctTerminalStates = Terminal.size();
    Snap.SeenDigests = Seen.digests();
    Snap.TerminalDigests = Terminal.digests();
    Snap.ItemDigests = ItemCache.digests();
    for (const auto &Entry : BaseBugs)
      Snap.Bugs.push_back(Entry.second);
    if (Opts.Metrics)
      Snap.Metrics = Opts.Metrics->snapshot();
  }

  /// Bound-barrier checkpoint: \p Items are the (already advanced)
  /// current bound's roots; the striped queue is empty here.
  void emitBarrierSnapshot(const std::vector<WorkItem> &Items) {
    obs::MetricShard *MS = Opts.Metrics ? &Opts.Metrics->shard(0) : nullptr;
    obs::ScopedPhase Timer(MS, obs::Phase::Snapshot);
    obs::count(MS, obs::Counter::Snapshots);
    mergeWorkersIntoBase();
    EngineSnapshot Snap;
    Snap.Bound = CurrBound;
    Snap.CurrentQueue.reserve(Items.size());
    for (const WorkItem &W : Items)
      Snap.CurrentQueue.push_back(Executors[0]->saveItem(W));
    fillCommonSnapshot(Snap);
    Opts.Observer->onCheckpoint(Snap);
  }

  /// Mid-bound cooperative-stop checkpoint: drains the worker deques and
  /// the striped next queue (the pool has joined; nothing is in flight).
  void emitStopSnapshot() {
    obs::MetricShard *MS = Opts.Metrics ? &Opts.Metrics->shard(0) : nullptr;
    obs::ScopedPhase Timer(MS, obs::Phase::Snapshot);
    obs::count(MS, obs::Counter::Snapshots);
    mergeWorkersIntoBase();
    EngineSnapshot Snap;
    Snap.Bound = CurrBound;
    for (WorkerState &W : Workers) {
      WorkItem Item;
      while (W.Deque.tryPopBottom(Item))
        Snap.CurrentQueue.push_back(Executors[0]->saveItem(Item));
    }
    for (WorkItem &Item : NextQueue.drain())
      Snap.NextQueue.push_back(Executors[0]->saveItem(Item));
    fillCommonSnapshot(Snap);
    Opts.Observer->onCheckpoint(Snap);
  }

  /// Final snapshot of a run that ended on its own.
  void emitFinal(const SearchResult &Result) {
    obs::MetricShard *MS = Opts.Metrics ? &Opts.Metrics->shard(0) : nullptr;
    obs::count(MS, obs::Counter::Snapshots);
    EngineSnapshot Snap;
    Snap.Bound = CurrBound;
    Snap.Final = true;
    Snap.Stats = Result.Stats;
    Snap.Bugs = Result.Bugs;
    if (Opts.Metrics)
      Snap.Metrics = Opts.Metrics->snapshot();
    Opts.Observer->onCheckpoint(Snap);
  }

  static unsigned shardCountFor(unsigned Requested, unsigned Jobs) {
    if (Requested)
      return Requested; // Cache rounds up to a power of two itself.
    unsigned Want = Jobs * 8;
    return Want < 64 ? 64 : Want;
  }

  std::vector<std::unique_ptr<Executor>> &Executors;
  IcbEngineOptions Opts;
  /// The preemption fallback when Opts.Policy is null (historical runs).
  PreemptionBoundPolicy DefaultPolicy;
  const BoundPolicy &BP;
  unsigned Jobs;

  ShardedStateCache Seen;      ///< Distinct visited states.
  ShardedStateCache Terminal;  ///< Distinct terminal fingerprints (rt).
  ShardedStateCache ItemCache; ///< (state, thread) pruning when caching on.
  StripedQueue<WorkItem> NextQueue; ///< Deferred items for bound c + 1.
  std::vector<WorkerState> Workers;

  std::atomic<uint64_t> Executions{0};
  std::atomic<uint64_t> TotalSteps{0};
  /// Items in deques plus executions in flight this round; the round is
  /// over when it reaches zero (nothing queued, nobody producing).
  std::atomic<uint64_t> Pending{0};
  std::atomic<bool> Stop{false};
  /// Stop was externally requested (observer), not a resource limit —
  /// the frontier is snapshotted for resume instead of discarded.
  std::atomic<bool> ExternalStop{false};
  /// Progress-ticker feeds only (reset at barriers / seeded on resume);
  /// the authoritative counts live in the worker shards and bug maps.
  std::atomic<uint64_t> DeferredCount{0};
  std::atomic<uint64_t> BugCount{0};
  /// Credited schedule-space mass so far; progress-ticker feed only (the
  /// registry's merged EstMassPerBound is authoritative).
  std::atomic<uint64_t> EstCredited{0};

  /// Cross-round accumulated statistics and bugs: seeded by restore(),
  /// grown by mergeWorkersIntoBase() at quiescent points.
  SearchStats Base;
  CanonicalBugMap BaseBugs;

  unsigned CurrBound = 0; ///< Written between rounds only.
};

} // namespace detail

/// Runs Algorithm 1 sequentially with \p E executing the work items.
template <typename Executor>
SearchResult runSequentialIcbEngine(Executor &E,
                                    const IcbEngineOptions &Opts) {
  detail::SequentialEngineDriver<Executor> Driver(E, Opts);
  return Driver.run();
}

/// Runs Algorithm 1 with one worker (and one executor) per entry of
/// \p Executors; the executor at index i runs on worker thread i only.
template <typename Executor>
SearchResult
runParallelIcbEngine(std::vector<std::unique_ptr<Executor>> &Executors,
                     const IcbEngineOptions &Opts) {
  detail::ParallelEngineDriver<Executor> Driver(Executors, Opts);
  return Driver.run();
}

} // namespace icb::search

#endif // ICB_SEARCH_ICBENGINE_H
