//===- search/IcbCore.h - Shared work-item walk of Algorithm 1 --*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The body of Algorithm 1's Search procedure over the model VM — the
/// guts of VmExecutor::runChain. A work item is explored to every
/// execution reachable *without further preemptions*; preemptive
/// continuations are published through the engine context (Executor.h
/// documents the hook vocabulary), which decides where they queue (a
/// plain deque or the lock-striped next queue) and how statistics,
/// caches, and bugs are accumulated (directly or worker-locally).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_ICBCORE_H
#define ICB_SEARCH_ICBCORE_H

#include "obs/PhaseTimer.h"
#include "search/BoundPolicy.h"
#include "search/Executor.h"
#include "search/SearchTypes.h"
#include "support/Hashing.h"
#include "vm/Interp.h"
#include <algorithm>
#include <string>
#include <vector>

namespace icb::search::detail {

// Defined in Dfs.cpp; shared deadlock pretty-printer.
std::string describeDeadlock(const vm::Interp &Interp, const vm::State &S);

/// Algorithm 1's WorkItem, extended with the bookkeeping the experiments
/// need: the schedule prefix (for replayable bug reports) and the number of
/// blocking operations executed so far (Table 1's B column). Under the
/// preemption policy the bound index is implicit: every item queued for
/// bound c has exactly c preemptions in its prefix.
struct IcbWorkItem {
  vm::State S;
  vm::ThreadId Tid = vm::InvalidThread;
  std::vector<vm::ThreadId> Sched;
  uint64_t Blocking = 0;
  /// Preemptions in the prefix. Redundant with the bound index under the
  /// preemption policy; the true count for bug reports under the others.
  unsigned Preempts = 0;
  /// The budget the active BoundPolicy carries on this item; empty for
  /// stateless policies (preemption, delay).
  BoundState BState;
  /// Steps executed before this item's schedule vector starts. Nonzero only
  /// when RecordSchedules is off (the prefix is dropped to save memory but
  /// its length still feeds the K statistic).
  uint64_t PrefixSteps = 0;
  /// Bounded-POR sleep set: threads whose continuations from this item's
  /// state are covered elsewhere at no extra preemption cost (sorted
  /// ascending; empty when sleep sets are off). Same-bound siblings
  /// thread the set through ascending creation order, sleeping each
  /// earlier sibling whose step disables it. A *deferred* (next-bound)
  /// item carries the continuation thread it preempted plus any entries
  /// still asleep at the defer point; every other inherited entry is
  /// woken (dropped) there — the Coons-style budget correction, since the
  /// deferred budget differs from the entry's install-time budget.
  std::vector<vm::ThreadId> Sleep;
  /// Schedule-space mass of this item's subtree, in obs::EstimateOne
  /// units. Roots split EstimateOne; every decision point splits a
  /// chain's remainder evenly between published children and its own
  /// continuation. Always 0 under ICB_NO_METRICS.
  uint64_t Est = 0;
  /// Display name of the preemption site that seeded this subtree (the
  /// preempted thread's pending shared object). Free-switch branches
  /// inherit the chain's site — a free switch is not a preemption point.
  /// "root" for the per-thread roots.
  std::string Site;
  /// Trace flow id linking the branch/defer event that published this
  /// item to the ExecBegin of the chain that runs it. In-memory only —
  /// never serialized (a resume starts new flows by design); 0 = no flow.
  uint64_t Flow = 0;
};

/// Order-insensitive-enough mix of a sorted sleep set into a work-item
/// digest: with sleep sets on, (state, thread) alone no longer determines
/// the explored subtree, so the visited-item semantics must key on the
/// sleep set too.
inline uint64_t sleepSetHash(const std::vector<vm::ThreadId> &Sleep) {
  uint64_t H = 0x9e3779b97f4a7c15ull;
  for (vm::ThreadId U : Sleep)
    H = hashCombine(H, U);
  return H;
}

/// True when executing \p U's pending step from \p S leaves \p U
/// blocked or finished. Sibling sleeps are budget-neutral exactly in
/// this case: hoisting the sleeper's step to the front of the covering
/// trace then costs a *free* switch back, so the covered execution
/// lives at the same preemption bound as the pruned one. (A sleeper
/// that stays enabled would force a preemption in the covering trace —
/// pruning on it could push a bug one bound later, breaking ICB's
/// minimal-exposure guarantee.) Probes a scratch copy of the state;
/// nothing from the probe is recorded.
inline bool stepDisables(const vm::Interp &VM, const vm::State &S,
                         vm::ThreadId U) {
  vm::State Probe = S;
  vm::StepResult R = VM.step(Probe, U);
  // A failing step must never be slept: the pruned trace would be the bug
  // report. (The probe state is also unusable then — a failed assert
  // leaves the thread parked mid-local-suffix.) Independent interleaved
  // steps cannot change the step's outcome — it reads only its own shared
  // object and thread-local registers — so probing here is conclusive.
  if (R.Status == vm::StepStatus::AssertFailed ||
      R.Status == vm::StepStatus::ModelError)
    return false;
  return !VM.isEnabled(Probe, U);
}

/// Sorted-insert helper for the small sleep vectors.
inline void sleepInsert(std::vector<vm::ThreadId> &Sleep, vm::ThreadId U) {
  auto It = std::lower_bound(Sleep.begin(), Sleep.end(), U);
  if (It == Sleep.end() || *It != U)
    Sleep.insert(It, U);
}

/// Display name of a model-VM preemption site: the shared object the
/// preempted thread was about to touch. The rt executor's analogue is the
/// parked PendingOp's detail string; both feed the same per-site profile.
inline std::string varRefSiteName(vm::VarRef V) {
  const char *Kind = "var";
  switch (V.Kind) {
  case vm::VarKind::None:
    return "none";
  case vm::VarKind::Global:
    Kind = "global";
    break;
  case vm::VarKind::Lock:
    Kind = "lock";
    break;
  case vm::VarKind::Event:
    Kind = "event";
    break;
  case vm::VarKind::Semaphore:
    Kind = "sem";
    break;
  case vm::VarKind::ThreadEnd:
    Kind = "join";
    break;
  }
  return std::string(Kind) + "[" + std::to_string(V.Index) + "]";
}

/// Runs one execution: follows \p W.Tid for as long as it stays enabled
/// (Algorithm 1 lines 25-28), deferring every preemptive alternative via
/// Ctx::defer (lines 29-32) and every nonpreempting alternative via
/// Ctx::branch (lines 33-37), until the execution ends (pruned by the work
/// item cache or a sleep set, bug found, or all threads done/blocked).
///
/// With \p UseSleepSets on, the item's sleep set is maintained along the
/// chain (a sleeper wakes when a step touches its pending shared object),
/// sleeping threads are skipped at free-switch points (their subtrees are
/// covered by the sibling that put them to sleep), and every preemptive
/// continuation is published with the inherited set dropped — within a
/// chain the preemption budget never changes, so this defer-time wake is
/// exactly where Coons-style budget-sensitive wakeups are needed.
template <typename Ctx>
void runIcbExecution(const vm::Interp &VM, IcbWorkItem W, bool UseStateCache,
                     bool RecordSchedules, bool UseSleepSets, Ctx &C) {
  std::vector<vm::VarRef> SleeperVars;
  // Remaining schedule-space mass of this chain; every published child
  // takes an even share, every exit path credits the residue.
  uint64_t Mass = W.Est;
  while (true) {
    if (UseStateCache) {
      // Deliberately not phase-timed: hashing the small VM state costs
      // tens of nanoseconds, less than the clock reads that would time
      // it. The Hash phase belongs to the rt executor's fingerprint
      // maintenance; the cache probes themselves are timed by the
      // engine's claimItem/noteState hooks.
      uint64_t Digest = hashCombine(W.S.hash(), W.Tid);
      if (UseSleepSets)
        Digest = hashCombine(Digest, sleepSetHash(W.Sleep));
      // Policies that carry budget state key the visited-item semantics on
      // it; the empty state hashes to 0, keeping stateless policies
      // byte-identical to the pre-seam digests.
      if (uint64_t BH = W.BState.hash())
        Digest = hashCombine(Digest, BH);
      if (!C.claimItem(Digest)) {
        // Revisited work item: everything beyond it was already explored
        // (possibly at a lower bound). Counts as one pruned execution.
        C.endExecution({W.PrefixSteps + W.Sched.size(), W.Blocking, 0, Mass});
        return;
      }
    }

    // A sleeper's pending access must be read before the step mutates the
    // state; its parked instruction cannot change while it is not run.
    if (UseSleepSets && !W.Sleep.empty()) {
      obs::ScopedPhase Timer(C.metrics(), obs::Phase::Por);
      SleeperVars.clear();
      for (vm::ThreadId U : W.Sleep)
        SleeperVars.push_back(VM.nextVar(W.S, U));
    }

    vm::StepResult R = VM.step(W.S, W.Tid);
    C.countSteps(1);
    W.Blocking += R.WasBlockingOp ? 1 : 0;
    W.Sched.push_back(W.Tid);
    C.noteState(W.S.hash());

    if (UseSleepSets && !W.Sleep.empty()) {
      // Wake every sleeper whose pending access is dependent with the
      // step just executed; commuting the two would change the result.
      obs::ScopedPhase Timer(C.metrics(), obs::Phase::Por);
      size_t Kept = 0;
      for (size_t I = 0; I != W.Sleep.size(); ++I)
        if (!(SleeperVars[I] == R.Var))
          W.Sleep[Kept++] = W.Sleep[I];
      W.Sleep.resize(Kept);
    }

    if (R.Status == vm::StepStatus::AssertFailed ||
        R.Status == vm::StepStatus::ModelError) {
      Bug NewBug;
      NewBug.Kind = R.Status == vm::StepStatus::AssertFailed
                        ? BugKind::AssertFailure
                        : BugKind::ModelError;
      NewBug.Message = R.Status == vm::StepStatus::AssertFailed
                           ? VM.program().Messages[R.MsgId]
                           : R.ModelErrorText;
      NewBug.Steps = W.Sched.size();
      NewBug.Schedule = W.Sched;
      NewBug.Preemptions = W.Preempts;
      C.recordBug(std::move(NewBug));
      C.endExecution({W.PrefixSteps + W.Sched.size(), W.Blocking, 0, Mass});
      return;
    }

    std::vector<vm::ThreadId> Enabled = VM.enabledThreads(W.S);
    bool SelfEnabled =
        std::find(Enabled.begin(), Enabled.end(), W.Tid) != Enabled.end();

    if (SelfEnabled) {
      // Scheduling any other enabled thread here preempts W.Tid; the
      // active policy charges the preemption once for the whole point
      // (the charge depends on the preempted thread and its pending
      // variable, not on which alternative is scheduled). NextBound
      // alternatives defer (lines 29-32); a policy may also rule the
      // preemption free (SameBound: a thread-policy preemption of an
      // already-budgeted thread branches at this bound) or prune it
      // outright (the variable cap).
      //
      // Published items run under a different budget than the budget the
      // inherited sleepers were put to sleep under, so the inherited set
      // is conservatively woken (dropped) — pruning on it could hide a
      // bug that needs the budget the sleeping sibling no longer has
      // (conservativeWake: any preemption breaks the install-time
      // assumptions).
      //
      // Each published item sleeps the *continuation thread* W.Tid: a
      // pruned trace that takes W.Tid's (still independent) step later is
      // covered by the continuation chain itself, which re-publishes the
      // same preemptor one step further on — at exactly the published
      // item's own bound. A still-asleep enabled thread is not published
      // at all (its preemptive continuation commutes back to its install
      // site at strictly lower cost) but stays asleep for the later
      // siblings. An awake earlier sibling is slept only when its step
      // disables it (stepDisables keeps the covering trace free of an
      // extra preemption; the siblings all share one budget).
      const BoundPolicy &BP = C.policy();
      Decision D;
      D.Kind = DecisionKind::Preemption;
      D.Preempted = W.Tid;
      if (BP.kind() == BoundKind::ThreadVariable)
        D.Var = VM.nextVar(W.S, W.Tid).encode();
      BoundState ChildState;
      ChargeOutcome O = BP.chargeFor(D, W.BState, ChildState);
#ifndef ICB_NO_METRICS
      // Count the children the loop below will publish before it runs
      // (it only mutates DeferredSleep, never W.Sleep, so the slept test
      // is stable) — each gets an even share of the chain's remaining
      // mass, the continuation keeps the rest including the remainder.
      unsigned NPub = 0;
      if (O != ChargeOutcome::Prune)
        for (vm::ThreadId Other : Enabled)
          if (Other != W.Tid &&
              !(UseSleepSets &&
                std::binary_search(W.Sleep.begin(), W.Sleep.end(), Other)))
            ++NPub;
      uint64_t Share = Mass / (NPub + 1);
      std::string PointSite;
      if (NPub != 0) {
        PointSite = varRefSiteName(VM.nextVar(W.S, W.Tid));
        Mass -= Share * NPub;
      }
#endif
      std::vector<vm::ThreadId> DeferredSleep;
      bool PublishedDefer = false;
      uint64_t DeferSlept = 0;
      if (UseSleepSets)
        DeferredSleep.push_back(W.Tid);
      for (vm::ThreadId Other : Enabled) {
        if (Other == W.Tid)
          continue;
        if (UseSleepSets &&
            std::binary_search(W.Sleep.begin(), W.Sleep.end(), Other)) {
          ++DeferSlept;
          sleepInsert(DeferredSleep, Other);
          continue;
        }
        if (O == ChargeOutcome::Prune)
          continue;
        IcbWorkItem Deferred;
        Deferred.S = W.S;
        Deferred.Tid = Other;
        if (RecordSchedules)
          Deferred.Sched = W.Sched;
        else
          Deferred.PrefixSteps = W.PrefixSteps + W.Sched.size();
        Deferred.Blocking = W.Blocking;
        Deferred.Preempts = W.Preempts + 1;
        Deferred.BState = ChildState;
#ifndef ICB_NO_METRICS
        Deferred.Est = Share;
        Deferred.Site = PointSite;
#endif
        if (UseSleepSets) {
          Deferred.Sleep = DeferredSleep;
          if (stepDisables(VM, W.S, Other))
            sleepInsert(DeferredSleep, Other);
        }
        PublishedDefer = true;
        if (O == ChargeOutcome::NextBound)
          C.defer(std::move(Deferred));
        else
          C.branch(std::move(Deferred));
      }
      if (UseSleepSets) {
        if (DeferSlept) {
          obs::count(C.metrics(), obs::Counter::TransitionsSlept, DeferSlept);
          ICB_OBS(C.metrics(),
                  C.metrics()->SleepSavedPerBound.increment(
                      C.bound() + (O == ChargeOutcome::NextBound ? 1 : 0),
                      DeferSlept));
        }
        // Inherited sleepers not re-justified above are conservatively
        // woken for the published siblings — their budget differs from the
        // install-time budget (the Coons-style correction).
        uint64_t Dropped = W.Sleep.size() - DeferSlept;
        if (PublishedDefer && Dropped)
          obs::count(C.metrics(), obs::Counter::WokenByBudget, Dropped);
      }
      continue; // Keep running W.Tid at this bound (line 28).
    }

    if (Enabled.empty()) {
      if (!W.S.allDone()) {
        Bug NewBug;
        NewBug.Kind = BugKind::Deadlock;
        NewBug.Message = describeDeadlock(VM, W.S);
        NewBug.Steps = W.Sched.size();
        NewBug.Schedule = W.Sched;
        NewBug.Preemptions = W.Preempts;
        C.recordBug(std::move(NewBug));
      }
      C.endExecution({W.PrefixSteps + W.Sched.size(), W.Blocking, 0, Mass});
      return;
    }

    // W.Tid blocked or terminated: switching is free (nonpreempting).
    // Continue with the first awake enabled thread; publish the rest for
    // exploration at this same bound (lines 33-37). Sleeping threads are
    // skipped outright: every trace taking one of them first is a
    // commutation of a trace in the sibling subtree that put it to sleep,
    // at the same preemption cost (all siblings here share one budget).
    if (UseSleepSets && !W.Sleep.empty()) {
      obs::ScopedPhase Timer(C.metrics(), obs::Phase::Por);
      std::vector<vm::ThreadId> Awake;
      Awake.reserve(Enabled.size());
      uint64_t Slept = 0;
      for (vm::ThreadId T : Enabled) {
        if (std::binary_search(W.Sleep.begin(), W.Sleep.end(), T))
          ++Slept;
        else
          Awake.push_back(T);
      }
      if (Slept != 0) {
        obs::count(C.metrics(), obs::Counter::TransitionsSlept, Slept);
        ICB_OBS(C.metrics(),
                C.metrics()->SleepSavedPerBound.increment(C.bound(), Slept));
      }
      if (Awake.empty()) {
        // Every enabled continuation is covered elsewhere: the chain ends
        // here as a pruned execution.
        obs::count(C.metrics(), obs::Counter::SleptExecutions);
        C.endExecution({W.PrefixSteps + W.Sched.size(), W.Blocking, 0, Mass});
        return;
      }
      Enabled = std::move(Awake);
    }
    // The policy charges the free alternatives once for the whole point:
    // SameBound (preemption/thread policies) keeps today's same-bound
    // sibling walk; NextBound (the delay policy: every deviation from the
    // default continuation costs a delay) defers each alternative with
    // the conservative sleep set {default continuation} — the chain
    // re-defers the same alternative one step later at the same bound.
    //
    // In the SameBound walk, later siblings sleep each earlier one whose
    // step disables it: the commuted covering trace (sleeper's step
    // hoisted to this state) then switches back for free, staying at this
    // same bound. A sleeper that would stay enabled is left awake —
    // covering it costs a preemption. The accumulated set is threaded
    // through ascending creation order; each sibling also inherits the
    // chain's own sleepers.
    Decision FreeD;
    FreeD.Kind = DecisionKind::FreeSwitch;
    BoundState FreeState;
    ChargeOutcome FreeO = C.policy().chargeFor(FreeD, W.BState, FreeState);
#ifndef ICB_NO_METRICS
    unsigned NFree = FreeO == ChargeOutcome::Prune
                         ? 0
                         : static_cast<unsigned>(Enabled.size() - 1);
    uint64_t FreeShare = Mass / (NFree + 1);
    Mass -= FreeShare * NFree;
#endif
    std::vector<vm::ThreadId> SiblingSleep;
    if (UseSleepSets && FreeO == ChargeOutcome::SameBound)
      SiblingSleep = W.Sleep;
    for (size_t I = 1; I < Enabled.size(); ++I) {
      if (FreeO == ChargeOutcome::Prune)
        break;
      IcbWorkItem Branch;
      Branch.S = W.S;
      Branch.Tid = Enabled[I];
      if (RecordSchedules)
        Branch.Sched = W.Sched;
      else
        Branch.PrefixSteps = W.PrefixSteps + W.Sched.size();
      Branch.Blocking = W.Blocking;
      Branch.Preempts = W.Preempts;
      Branch.BState = FreeState;
#ifndef ICB_NO_METRICS
      // A free switch is not a preemption point: siblings stay in the
      // chain's own site attribution.
      Branch.Est = FreeShare;
      Branch.Site = W.Site;
#endif
      if (FreeO == ChargeOutcome::SameBound) {
        if (UseSleepSets) {
          if (stepDisables(VM, W.S, Enabled[I - 1]))
            sleepInsert(SiblingSleep, Enabled[I - 1]);
          Branch.Sleep = SiblingSleep;
        }
        C.branch(std::move(Branch));
      } else {
        if (UseSleepSets)
          Branch.Sleep = {Enabled[0]};
        C.defer(std::move(Branch));
      }
    }
    W.Tid = Enabled[0];
  }
}

} // namespace icb::search::detail

#endif // ICB_SEARCH_ICBCORE_H
