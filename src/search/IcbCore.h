//===- search/IcbCore.h - Shared work-item walk of Algorithm 1 --*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The body of Algorithm 1's Search procedure over the model VM — the
/// guts of VmExecutor::runChain. A work item is explored to every
/// execution reachable *without further preemptions*; preemptive
/// continuations are published through the engine context (Executor.h
/// documents the hook vocabulary), which decides where they queue (a
/// plain deque or the lock-striped next queue) and how statistics,
/// caches, and bugs are accumulated (directly or worker-locally).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_ICBCORE_H
#define ICB_SEARCH_ICBCORE_H

#include "search/Executor.h"
#include "search/SearchTypes.h"
#include "support/Hashing.h"
#include "vm/Interp.h"
#include <algorithm>
#include <string>
#include <vector>

namespace icb::search::detail {

// Defined in Dfs.cpp; shared deadlock pretty-printer.
std::string describeDeadlock(const vm::Interp &Interp, const vm::State &S);

/// Algorithm 1's WorkItem, extended with the bookkeeping the experiments
/// need: the schedule prefix (for replayable bug reports) and the number of
/// blocking operations executed so far (Table 1's B column). The preemption
/// count is implicit: every item queued for bound c has exactly c
/// preemptions in its prefix.
struct IcbWorkItem {
  vm::State S;
  vm::ThreadId Tid = vm::InvalidThread;
  std::vector<vm::ThreadId> Sched;
  uint64_t Blocking = 0;
  /// Steps executed before this item's schedule vector starts. Nonzero only
  /// when RecordSchedules is off (the prefix is dropped to save memory but
  /// its length still feeds the K statistic).
  uint64_t PrefixSteps = 0;
};

/// Runs one execution: follows \p W.Tid for as long as it stays enabled
/// (Algorithm 1 lines 25-28), deferring every preemptive alternative via
/// Ctx::defer (lines 29-32) and every nonpreempting alternative via
/// Ctx::branch (lines 33-37), until the execution ends (pruned by the work
/// item cache, bug found, or all threads done/blocked).
template <typename Ctx>
void runIcbExecution(const vm::Interp &VM, IcbWorkItem W, bool UseStateCache,
                     bool RecordSchedules, Ctx &C) {
  while (true) {
    if (UseStateCache) {
      // Deliberately not phase-timed: hashing the small VM state costs
      // tens of nanoseconds, less than the clock reads that would time
      // it. The Hash phase belongs to the rt executor's fingerprint
      // maintenance; the cache probes themselves are timed by the
      // engine's claimItem/noteState hooks.
      if (!C.claimItem(hashCombine(W.S.hash(), W.Tid))) {
        // Revisited work item: everything beyond it was already explored
        // (possibly at a lower bound). Counts as one pruned execution.
        C.endExecution({W.PrefixSteps + W.Sched.size(), W.Blocking, 0});
        return;
      }
    }

    vm::StepResult R = VM.step(W.S, W.Tid);
    C.countSteps(1);
    W.Blocking += R.WasBlockingOp ? 1 : 0;
    W.Sched.push_back(W.Tid);
    C.noteState(W.S.hash());

    if (R.Status == vm::StepStatus::AssertFailed ||
        R.Status == vm::StepStatus::ModelError) {
      Bug NewBug;
      NewBug.Kind = R.Status == vm::StepStatus::AssertFailed
                        ? BugKind::AssertFailure
                        : BugKind::ModelError;
      NewBug.Message = R.Status == vm::StepStatus::AssertFailed
                           ? VM.program().Messages[R.MsgId]
                           : R.ModelErrorText;
      NewBug.Steps = W.Sched.size();
      NewBug.Schedule = W.Sched;
      C.recordBug(std::move(NewBug));
      C.endExecution({W.PrefixSteps + W.Sched.size(), W.Blocking, 0});
      return;
    }

    std::vector<vm::ThreadId> Enabled = VM.enabledThreads(W.S);
    bool SelfEnabled =
        std::find(Enabled.begin(), Enabled.end(), W.Tid) != Enabled.end();

    if (SelfEnabled) {
      // Scheduling any other enabled thread here preempts W.Tid: defer
      // those continuations to the next bound (lines 29-32).
      for (vm::ThreadId Other : Enabled) {
        if (Other == W.Tid)
          continue;
        IcbWorkItem Deferred;
        Deferred.S = W.S;
        Deferred.Tid = Other;
        if (RecordSchedules)
          Deferred.Sched = W.Sched;
        else
          Deferred.PrefixSteps = W.PrefixSteps + W.Sched.size();
        Deferred.Blocking = W.Blocking;
        C.defer(std::move(Deferred));
      }
      continue; // Keep running W.Tid at this bound (line 28).
    }

    if (Enabled.empty()) {
      if (!W.S.allDone()) {
        Bug NewBug;
        NewBug.Kind = BugKind::Deadlock;
        NewBug.Message = describeDeadlock(VM, W.S);
        NewBug.Steps = W.Sched.size();
        NewBug.Schedule = W.Sched;
        C.recordBug(std::move(NewBug));
      }
      C.endExecution({W.PrefixSteps + W.Sched.size(), W.Blocking, 0});
      return;
    }

    // W.Tid blocked or terminated: switching is free (nonpreempting).
    // Continue with the first enabled thread; publish the rest for
    // exploration at this same bound (lines 33-37).
    for (size_t I = 1; I < Enabled.size(); ++I) {
      IcbWorkItem Branch;
      Branch.S = W.S;
      Branch.Tid = Enabled[I];
      if (RecordSchedules)
        Branch.Sched = W.Sched;
      else
        Branch.PrefixSteps = W.PrefixSteps + W.Sched.size();
      Branch.Blocking = W.Blocking;
      C.branch(std::move(Branch));
    }
    W.Tid = Enabled[0];
  }
}

} // namespace icb::search::detail

#endif // ICB_SEARCH_ICBCORE_H
