//===- search/ShardedStateCache.cpp - Concurrent visited-state set --------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/ShardedStateCache.h"
#include "support/Debug.h"

using namespace icb;
using namespace icb::search;

namespace {

unsigned roundUpPow2(unsigned X) {
  unsigned P = 1;
  while (P < X)
    P <<= 1;
  return P;
}

unsigned log2Pow2(unsigned P) {
  unsigned Bits = 0;
  while ((1u << Bits) < P)
    ++Bits;
  return Bits;
}

} // namespace

/// One lock-striped open-addressing table. Slots hold raw digests with 0 as
/// the empty sentinel; the (rare) digest value 0 itself is tracked by a
/// side flag. Count mirrors the stored total atomically so size() needs no
/// locks.
struct ShardedStateCache::Shard {
  static constexpr size_t InitialCapacity = 64;

  mutable std::mutex Mu;
  std::vector<uint64_t> Slots; ///< Power-of-two capacity; 0 = empty.
  uint64_t Used = 0;           ///< Nonzero digests stored.
  bool HasZero = false;
  std::atomic<uint64_t> Count{0};

  bool insertLocked(uint64_t Digest) {
    if (Digest == 0) {
      if (HasZero)
        return false;
      HasZero = true;
      Count.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (Slots.empty())
      Slots.assign(InitialCapacity, 0);
    // Grow at ~70% load, before probing, so probes always terminate.
    if ((Used + 1) * 10 >= Slots.size() * 7)
      grow();
    size_t Mask = Slots.size() - 1;
    size_t Idx = static_cast<size_t>(Digest) & Mask;
    while (Slots[Idx] != 0) {
      if (Slots[Idx] == Digest)
        return false;
      Idx = (Idx + 1) & Mask;
    }
    Slots[Idx] = Digest;
    ++Used;
    Count.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool containsLocked(uint64_t Digest) const {
    if (Digest == 0)
      return HasZero;
    if (Slots.empty())
      return false;
    size_t Mask = Slots.size() - 1;
    size_t Idx = static_cast<size_t>(Digest) & Mask;
    while (Slots[Idx] != 0) {
      if (Slots[Idx] == Digest)
        return true;
      Idx = (Idx + 1) & Mask;
    }
    return false;
  }

  void grow() {
    std::vector<uint64_t> Old = std::move(Slots);
    Slots.assign(Old.size() * 2, 0);
    size_t Mask = Slots.size() - 1;
    for (uint64_t Digest : Old) {
      if (Digest == 0)
        continue;
      size_t Idx = static_cast<size_t>(Digest) & Mask;
      while (Slots[Idx] != 0)
        Idx = (Idx + 1) & Mask;
      Slots[Idx] = Digest;
    }
  }
};

ShardedStateCache::ShardedStateCache(unsigned RequestedShards) {
  ShardCount = roundUpPow2(RequestedShards ? RequestedShards : 64);
  ShardBits = log2Pow2(ShardCount);
  ICB_ASSERT(ShardBits < 64, "absurd shard count");
  ShardArr.reset(new Shard[ShardCount]);
}

ShardedStateCache::~ShardedStateCache() = default;

ShardedStateCache::Shard &ShardedStateCache::shardFor(uint64_t Digest) const {
  // High bits pick the shard; insertLocked uses low bits for the slot, so
  // the two indices are independent for well-mixed digests.
  return ShardArr[ShardBits ? (Digest >> (64 - ShardBits)) : 0];
}

bool ShardedStateCache::insert(uint64_t Digest) {
  Shard &S = shardFor(Digest);
  std::lock_guard<std::mutex> Guard(S.Mu);
  return S.insertLocked(Digest);
}

bool ShardedStateCache::contains(uint64_t Digest) const {
  Shard &S = shardFor(Digest);
  std::lock_guard<std::mutex> Guard(S.Mu);
  return S.containsLocked(Digest);
}

uint64_t ShardedStateCache::size() const {
  uint64_t Total = 0;
  for (unsigned I = 0; I != ShardCount; ++I)
    Total += ShardArr[I].Count.load(std::memory_order_relaxed);
  return Total;
}

std::vector<uint64_t> ShardedStateCache::digests() const {
  std::vector<uint64_t> Out;
  Out.reserve(size());
  for (unsigned I = 0; I != ShardCount; ++I) {
    const Shard &S = ShardArr[I];
    std::lock_guard<std::mutex> Guard(S.Mu);
    if (S.HasZero)
      Out.push_back(0);
    for (uint64_t Digest : S.Slots)
      if (Digest != 0)
        Out.push_back(Digest);
  }
  return Out;
}

void ShardedStateCache::clear() {
  for (unsigned I = 0; I != ShardCount; ++I) {
    Shard &S = ShardArr[I];
    std::lock_guard<std::mutex> Guard(S.Mu);
    S.Slots.clear();
    S.Used = 0;
    S.HasZero = false;
    S.Count.store(0, std::memory_order_relaxed);
  }
}
