//===- search/Dfs.h - Depth-first search strategies -------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline strategies the paper compares ICB against:
///
///   * `DfsSearch` — depth-first search, optionally state-caching (ZING's
///     native mode) and optionally depth-bounded ("db:N" in Figure 2).
///   * `IterativeDeepeningSearch` — iterative depth-bounding ("idfs-N"):
///     repeated depth-bounded DFS with the bound raised by N each round,
///     the traditional answer to state explosion the paper argues against
///     for multithreaded programs.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_DFS_H
#define ICB_SEARCH_DFS_H

#include "obs/Metrics.h"
#include "search/Strategy.h"

namespace icb::search {

/// Depth-first search over the model's transition system.
class DfsSearch final : public Strategy {
public:
  struct Options {
    /// Prune states already visited (explicit-state / ZING mode). Off, the
    /// search enumerates executions statelessly (CHESS mode).
    bool UseStateCache = false;
    /// Sleep-set partial-order reduction [Godefroid 1996]: after the
    /// subtree for thread t is explored at a node, siblings whose next
    /// steps are independent of every explored choice are skipped. Sound
    /// for assertion failures and deadlocks (every Mazurkiewicz trace
    /// keeps a representative). The paper lists POR as complementary
    /// future work; combining it with ICB's *bound guarantee* needs the
    /// bounded-POR machinery of later work, so it is exposed here on the
    /// unbounded strategies only.
    bool UseSleepSets = false;
    /// Truncate executions at this many steps; 0 means unbounded.
    unsigned DepthBound = 0;
    SearchLimits Limits;
    /// Optional observability registry (single shard: the search is
    /// sequential). Records state-cache probes, chains, per-bound
    /// executions and the Execute/CacheProbe phase timers.
    obs::MetricsRegistry *Metrics = nullptr;
  };

  explicit DfsSearch(Options Opts) : Opts(Opts) {}

  SearchResult run(const vm::Interp &Interp) override;
  std::string name() const override;

private:
  Options Opts;
};

/// Iterative depth-bounding: depth-bounded DFS with the bound raised by a
/// fixed increment until the space is exhausted or limits hit. Statistics
/// (distinct states, executions, coverage curve) accumulate across rounds,
/// which is how Figures 5 and 6 plot "idfs-N".
class IterativeDeepeningSearch final : public Strategy {
public:
  struct Options {
    unsigned InitialBound = 20;
    unsigned Increment = 20;
    SearchLimits Limits;
    /// Optional observability registry (see DfsSearch::Options::Metrics).
    obs::MetricsRegistry *Metrics = nullptr;
  };

  explicit IterativeDeepeningSearch(Options Opts) : Opts(Opts) {}

  SearchResult run(const vm::Interp &Interp) override;
  std::string name() const override;

private:
  Options Opts;
};

} // namespace icb::search

#endif // ICB_SEARCH_DFS_H
