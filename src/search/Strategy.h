//===- search/Strategy.h - Search strategy interface ------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface of the ZING-side search strategies. The evaluation
/// compares: iterative context bounding (icb), unbounded depth-first search
/// (dfs), depth-bounded DFS (db:N), iterative depth-bounding (idfs), and
/// uniform random walk (random).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_STRATEGY_H
#define ICB_SEARCH_STRATEGY_H

#include "search/SearchTypes.h"
#include "vm/Interp.h"

namespace icb::search {

/// A systematic (or randomized) explorer of a model's state space.
class Strategy {
public:
  virtual ~Strategy();

  /// Explores \p Interp's transition system within the configured limits.
  virtual SearchResult run(const vm::Interp &Interp) = 0;

  /// Short name for tables ("icb", "dfs", "db:20", ...).
  virtual std::string name() const = 0;
};

} // namespace icb::search

#endif // ICB_SEARCH_STRATEGY_H
