//===- search/ParallelIcb.cpp - Multithreaded ICB search ------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/ParallelIcb.h"
#include "search/IcbEngine.h"
#include "search/VmExecutor.h"
#include "support/WorkerPool.h"
#include <memory>
#include <vector>

using namespace icb;
using namespace icb::search;

SearchResult ParallelIcbSearch::run(const vm::Interp &Interp) {
  unsigned Jobs = Opts.Jobs ? Opts.Jobs : WorkerPool::defaultWorkers();
  // The interpreter is stateless w.r.t. the search, so the executors can
  // all share it; one instance per worker keeps the engine's "executor i
  // runs on worker i" contract uniform with the runtime executor, which
  // does carry per-thread state.
  std::vector<std::unique_ptr<VmExecutor>> Executors;
  Executors.reserve(Jobs);
  for (unsigned I = 0; I != Jobs; ++I)
    Executors.push_back(std::make_unique<VmExecutor>(
        Interp, VmExecutor::Options{Opts.UseStateCache, Opts.RecordSchedules,
                                    Opts.UseSleepSets}));

  IcbEngineOptions EngineOpts;
  EngineOpts.Limits = Opts.Limits;
  EngineOpts.Policy = Opts.Policy;
  EngineOpts.Shards = Opts.Shards;
  EngineOpts.CanonicalBugs = true; // What the parallel merge always does.
  EngineOpts.Observer = Opts.Observer;
  EngineOpts.Resume = Opts.Resume;
  EngineOpts.Metrics = Opts.Metrics;
  EngineOpts.Lease = Opts.Lease;
  return runParallelIcbEngine(Executors, EngineOpts);
}
