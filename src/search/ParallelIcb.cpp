//===- search/ParallelIcb.cpp - Multithreaded ICB search ------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/ParallelIcb.h"
#include "search/IcbCore.h"
#include "search/ShardedStateCache.h"
#include "support/StripedQueue.h"
#include "support/WorkStealingDeque.h"
#include "support/WorkerPool.h"
#include <atomic>
#include <map>
#include <thread>
#include <tuple>

using namespace icb;
using namespace icb::search;
using namespace icb::search::detail;
using namespace icb::vm;

namespace {

/// Worker-local accumulation; folded into the global result at bound
/// barriers / at the end. Padded to a cache line so neighbouring workers'
/// hot counters do not false-share.
struct alignas(64) WorkerState {
  WorkStealingDeque<IcbWorkItem> Deque;

  // Worker-local slices of SearchStats (all merged with commutative
  // folds, so the merged totals are schedule-independent).
  MinMax StepsPerExecution;
  MinMax BlockingPerExecution;
  MinMax PreemptionsPerExecution;
  Histogram PreemptionHistogram;

  /// Worker-local distinct bugs: (kind, message) -> canonical minimal
  /// exposure. See mergeBug for the ordering.
  std::map<std::pair<BugKind, std::string>, Bug> Bugs;
};

/// Keeps the lexicographically smallest (Preemptions, Steps, Schedule)
/// exposure per distinct (kind, message) bug. Taking a minimum is
/// associative and commutative, so merging worker maps in any order — and
/// accumulating exposures within a worker in any order — yields the same
/// final map. That is what makes bug reports reproducible across worker
/// counts (sequential ICB gets the same canonical exposure for free: it
/// visits bounds in order and we tie-break on Steps then Schedule).
void mergeBug(std::map<std::pair<BugKind, std::string>, Bug> &Into,
              Bug NewBug) {
  auto Key = std::make_pair(NewBug.Kind, NewBug.Message);
  auto It = Into.find(Key);
  if (It == Into.end()) {
    Into.emplace(std::move(Key), std::move(NewBug));
    return;
  }
  Bug &Existing = It->second;
  if (std::tie(NewBug.Preemptions, NewBug.Steps, NewBug.Schedule) <
      std::tie(Existing.Preemptions, Existing.Steps, Existing.Schedule))
    Existing = std::move(NewBug);
}

class ParallelIcbDriver {
public:
  ParallelIcbDriver(const vm::Interp &VM, const ParallelIcbSearch::Options &O)
      : VM(VM), Opts(O),
        Jobs(O.Jobs ? O.Jobs : WorkerPool::defaultWorkers()),
        Seen(shardCountFor(O.Shards, Jobs)),
        ItemCache(shardCountFor(O.Shards, Jobs)), NextQueue(Jobs),
        Workers(Jobs) {}

  SearchResult run();

private:
  /// The per-worker Ctx runIcbExecution drives. Thin: routes the hooks to
  /// the driver with the worker index attached.
  struct WorkerCtx {
    ParallelIcbDriver &D;
    unsigned Index;

    bool insertItem(uint64_t Digest) { return D.ItemCache.insert(Digest); }
    void insertSeen(uint64_t Digest) { D.Seen.insert(Digest); }
    void countStep() {
      D.TotalSteps.fetch_add(1, std::memory_order_relaxed);
    }
    void defer(IcbWorkItem &&Item) {
      D.NextQueue.push(Index, std::move(Item));
    }
    void branch(IcbWorkItem &&Item) {
      // Onto the owner's bottom: popped LIFO by the owner (depth-first,
      // keeps memory bounded), stolen FIFO from the top by idle workers.
      D.Pending.fetch_add(1, std::memory_order_relaxed);
      D.Workers[Index].Deque.pushBottom(std::move(Item));
    }
    void recordBug(BugKind Kind, std::string Message,
                   const std::vector<ThreadId> &Sched) {
      D.recordBug(Index, Kind, std::move(Message), Sched);
    }
    void endExecution(uint64_t Steps, uint64_t Blocking) {
      D.endExecution(Index, Steps, Blocking);
    }
  };

  void workerMain(unsigned Index);
  bool takeItem(unsigned Index, IcbWorkItem &Out);
  void recordBug(unsigned Index, BugKind Kind, std::string Message,
                 const std::vector<ThreadId> &Sched);
  void endExecution(unsigned Index, uint64_t Steps, uint64_t Blocking);
  void finalize(SearchResult &Result, bool Complete);

  static unsigned shardCountFor(unsigned Requested, unsigned Jobs) {
    if (Requested)
      return Requested; // Cache rounds up to a power of two itself.
    unsigned Want = Jobs * 8;
    return Want < 64 ? 64 : Want;
  }

  const vm::Interp &VM;
  ParallelIcbSearch::Options Opts;
  unsigned Jobs;

  ShardedStateCache Seen;      ///< Distinct visited states.
  ShardedStateCache ItemCache; ///< (state, thread) pruning when caching on.
  StripedQueue<IcbWorkItem> NextQueue; ///< Deferred items for bound c + 1.
  std::vector<WorkerState> Workers;

  std::atomic<uint64_t> Executions{0};
  std::atomic<uint64_t> TotalSteps{0};
  /// Items in deques plus executions in flight this round; the round is
  /// over when it reaches zero (nothing queued, nobody producing).
  std::atomic<uint64_t> Pending{0};
  std::atomic<bool> Stop{false};

  unsigned CurrBound = 0; ///< Written between rounds only.
};

bool ParallelIcbDriver::takeItem(unsigned Index, IcbWorkItem &Out) {
  if (Workers[Index].Deque.tryPopBottom(Out))
    return true;
  for (unsigned Hop = 1; Hop < Jobs; ++Hop)
    if (Workers[(Index + Hop) % Jobs].Deque.trySteal(Out))
      return true;
  return false;
}

void ParallelIcbDriver::workerMain(unsigned Index) {
  WorkerCtx Ctx{*this, Index};
  IcbWorkItem Item;
  while (!Stop.load(std::memory_order_relaxed)) {
    if (takeItem(Index, Item)) {
      runIcbExecution(VM, std::move(Item), Opts.UseStateCache,
                      Opts.RecordSchedules, Ctx);
      // The chain (and everything it pushed) is accounted; releasing our
      // claim last means Pending only hits zero once no work remains.
      Pending.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (Pending.load(std::memory_order_acquire) == 0)
      return; // Bound drained: no queued items, no running executions.
    std::this_thread::yield(); // Someone is still producing; retry.
  }
}

void ParallelIcbDriver::recordBug(unsigned Index, BugKind Kind,
                                  std::string Message,
                                  const std::vector<ThreadId> &Sched) {
  Bug NewBug;
  NewBug.Kind = Kind;
  NewBug.Message = std::move(Message);
  NewBug.Preemptions = CurrBound;
  NewBug.Steps = Sched.size();
  NewBug.Schedule = Sched;
  mergeBug(Workers[Index].Bugs, std::move(NewBug));
  if (Opts.Limits.StopAtFirstBug)
    Stop.store(true, std::memory_order_relaxed);
}

void ParallelIcbDriver::endExecution(unsigned Index, uint64_t Steps,
                                     uint64_t Blocking) {
  WorkerState &W = Workers[Index];
  uint64_t Execs = Executions.fetch_add(1, std::memory_order_relaxed) + 1;
  W.StepsPerExecution.observe(Steps);
  W.PreemptionsPerExecution.observe(CurrBound);
  W.PreemptionHistogram.increment(CurrBound);
  W.BlockingPerExecution.observe(Blocking);
  if (Execs >= Opts.Limits.MaxExecutions ||
      TotalSteps.load(std::memory_order_relaxed) >= Opts.Limits.MaxSteps ||
      Seen.size() >= Opts.Limits.MaxStates)
    Stop.store(true, std::memory_order_relaxed);
}

void ParallelIcbDriver::finalize(SearchResult &Result, bool Complete) {
  SearchStats &Stats = Result.Stats;
  Stats.Executions = Executions.load();
  Stats.TotalSteps = TotalSteps.load();
  Stats.DistinctStates = Seen.size();
  Stats.Completed = Complete;

  std::map<std::pair<BugKind, std::string>, Bug> Merged;
  for (WorkerState &W : Workers) {
    Stats.StepsPerExecution.merge(W.StepsPerExecution);
    Stats.BlockingPerExecution.merge(W.BlockingPerExecution);
    Stats.PreemptionsPerExecution.merge(W.PreemptionsPerExecution);
    Stats.PreemptionHistogram.merge(W.PreemptionHistogram);
    for (auto &Entry : W.Bugs)
      mergeBug(Merged, std::move(Entry.second));
    W.Bugs.clear();
  }
  // std::map iteration order makes the report order deterministic too.
  Result.Bugs.reserve(Merged.size());
  for (auto &Entry : Merged)
    Result.Bugs.push_back(std::move(Entry.second));
}

SearchResult ParallelIcbDriver::run() {
  SearchResult Result;

  State S0 = VM.initialState();
  Seen.insert(S0.hash());
  std::vector<ThreadId> Enabled0 = VM.enabledThreads(S0);
  if (Enabled0.empty()) {
    // Degenerate single-execution program; mirror the sequential driver.
    if (!S0.allDone())
      recordBug(0, BugKind::Deadlock, describeDeadlock(VM, S0), {});
    endExecution(0, 0, 0);
    finalize(Result, !Stop.load());
    Result.Stats.PerBound.push_back({0, Seen.size(), Result.Stats.Executions});
    Result.Stats.Coverage.push_back({Result.Stats.Executions, Seen.size()});
    return Result;
  }

  // Lines 6-8: one work item per initially enabled thread.
  std::vector<IcbWorkItem> Items;
  for (ThreadId Tid : Enabled0) {
    IcbWorkItem Item;
    Item.S = S0;
    Item.Tid = Tid;
    Items.push_back(std::move(Item));
  }

  WorkerPool Pool(Jobs);
  bool MoreBounds = false;
  while (true) {
    // Deal this bound's roots round-robin across the worker deques.
    Pending.store(Items.size(), std::memory_order_relaxed);
    for (size_t I = 0; I != Items.size(); ++I)
      Workers[I % Jobs].Deque.pushBottom(std::move(Items[I]));
    Items.clear();

    // One fork/join round drains the bound; the join is the barrier that
    // guarantees bound c is exhausted before bound c + 1 begins.
    Pool.run([this](unsigned Index) { workerMain(Index); });

    // Quiescent: every count below is exact and schedule-independent.
    Result.Stats.PerBound.push_back(
        {CurrBound, Seen.size(), Executions.load()});
    Result.Stats.Coverage.push_back({Executions.load(), Seen.size()});

    Items = NextQueue.drain();
    if (Stop.load() || Items.empty() ||
        CurrBound >= Opts.Limits.MaxPreemptionBound) {
      MoreBounds = !Items.empty();
      break;
    }
    ++CurrBound;
  }

  finalize(Result, !Stop.load() && !MoreBounds);
  return Result;
}

} // namespace

SearchResult ParallelIcbSearch::run(const Interp &Interp) {
  ParallelIcbDriver Driver(Interp, Opts);
  return Driver.run();
}
