//===- search/SearchTypes.cpp - Bugs, limits, statistics ------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/SearchTypes.h"
#include "support/Debug.h"
#include "support/Format.h"

using namespace icb;
using namespace icb::search;

const char *icb::search::bugKindName(BugKind Kind) {
  switch (Kind) {
  case BugKind::AssertFailure:
    return "assertion failure";
  case BugKind::Deadlock:
    return "deadlock";
  case BugKind::ModelError:
    return "model error";
  }
  ICB_UNREACHABLE("unknown bug kind");
}

std::string Bug::str() const {
  return strFormat("%s: %s (exposed with %u preemptions in %llu steps)",
                   bugKindName(Kind), Message.c_str(), Preemptions,
                   static_cast<unsigned long long>(Steps));
}

const Bug *SearchResult::simplestBug() const {
  const Bug *Best = nullptr;
  for (const Bug &B : Bugs)
    if (!Best || B.Preemptions < Best->Preemptions)
      Best = &B;
  return Best;
}

bool BugCollector::add(Bug NewBug) {
  auto Key = std::make_pair(NewBug.Kind, NewBug.Message);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    Index.emplace(std::move(Key), Bugs.size());
    Bugs.push_back(std::move(NewBug));
    return true;
  }
  Bug &Existing = Bugs[It->second];
  if (NewBug.Preemptions < Existing.Preemptions)
    Existing = std::move(NewBug);
  return false;
}
