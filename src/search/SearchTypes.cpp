//===- search/SearchTypes.cpp - Bugs, limits, statistics ------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/SearchTypes.h"
#include "support/Debug.h"
#include "support/Format.h"
#include <tuple>

using namespace icb;
using namespace icb::search;

const char *icb::search::bugKindName(BugKind Kind) {
  switch (Kind) {
  case BugKind::AssertFailure:
    return "assertion failure";
  case BugKind::Deadlock:
    return "deadlock";
  case BugKind::ModelError:
    return "model error";
  case BugKind::DataRace:
    return "data race";
  case BugKind::UseAfterFree:
    return "use-after-free";
  case BugKind::Diverged:
    return "replay divergence";
  }
  ICB_UNREACHABLE("unknown bug kind");
}

bool icb::search::bugKindFromName(const std::string &Name, BugKind &Out) {
  for (BugKind Kind :
       {BugKind::AssertFailure, BugKind::Deadlock, BugKind::ModelError,
        BugKind::DataRace, BugKind::UseAfterFree, BugKind::Diverged}) {
    if (Name == bugKindName(Kind)) {
      Out = Kind;
      return true;
    }
  }
  return false;
}

std::string Bug::str() const {
  // Bugs from the runtime executor carry an annotated schedule and report
  // their context-switch count; model-VM bugs keep the historical format.
  if (Sched.length() != 0)
    return strFormat(
        "%s: %s (exposed with %u preemptions, %u context switches, %llu "
        "steps)",
        bugKindName(Kind), Message.c_str(), Preemptions, ContextSwitches,
        static_cast<unsigned long long>(Steps));
  return strFormat("%s: %s (exposed with %u preemptions in %llu steps)",
                   bugKindName(Kind), Message.c_str(), Preemptions,
                   static_cast<unsigned long long>(Steps));
}

const Bug *SearchResult::simplestBug() const {
  const Bug *Best = nullptr;
  for (const Bug &B : Bugs)
    if (!Best || B.Preemptions < Best->Preemptions)
      Best = &B;
  return Best;
}

bool BugCollector::add(Bug NewBug) {
  auto Key = std::make_pair(NewBug.Kind, NewBug.Message);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    Index.emplace(std::move(Key), Bugs.size());
    Bugs.push_back(std::move(NewBug));
    return true;
  }
  Bug &Existing = Bugs[It->second];
  if (NewBug.Preemptions < Existing.Preemptions)
    Existing = std::move(NewBug);
  return false;
}

void icb::search::canonicalMergeBug(CanonicalBugMap &Into, Bug NewBug) {
  auto Key = std::make_pair(NewBug.Kind, NewBug.Message);
  auto It = Into.find(Key);
  if (It == Into.end()) {
    Into.emplace(std::move(Key), std::move(NewBug));
    return;
  }
  Bug &Existing = It->second;
  if (std::tie(NewBug.Preemptions, NewBug.Steps, NewBug.Schedule) <
      std::tie(Existing.Preemptions, Existing.Steps, Existing.Schedule))
    Existing = std::move(NewBug);
}

std::vector<Bug> icb::search::takeCanonicalBugs(CanonicalBugMap &&Map) {
  std::vector<Bug> Out;
  Out.reserve(Map.size());
  for (auto &Entry : Map)
    Out.push_back(std::move(Entry.second));
  Map.clear();
  return Out;
}
