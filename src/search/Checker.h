//===- search/Checker.h - One-call model checking facade --------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry point used by examples, tests and benches: pick a
/// strategy by name/kind, run it over a model program, get bugs and stats.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_CHECKER_H
#define ICB_SEARCH_CHECKER_H

#include "search/BoundPolicy.h"
#include "search/EngineObserver.h"
#include "search/SearchTypes.h"
#include "search/Strategy.h"
#include "vm/Program.h"
#include <memory>

namespace icb::search {

/// Which algorithm explores the state space.
enum class StrategyKind : uint8_t {
  Icb,              ///< Iterative context bounding (Algorithm 1).
  Dfs,              ///< Depth-first search.
  DepthBoundedDfs,  ///< DFS truncated at a fixed depth ("db:N").
  IterativeDfs,     ///< Iterative depth-bounding ("idfs-N").
  Random,           ///< Uniform random walk.
};

/// All strategy knobs in one bag; each strategy reads the fields relevant
/// to it (documented per field).
struct SearchOptions {
  StrategyKind Kind = StrategyKind::Icb;
  SearchLimits Limits;
  /// Icb: the bound policy (see BoundPolicy.h). Null = preemption
  /// bounding at Limits.MaxPreemptionBound. Must outlive the run; other
  /// strategies ignore it.
  const BoundPolicy *Policy = nullptr;
  /// Icb, Dfs: prune revisited states / work items.
  bool UseStateCache = false;
  /// Icb: carry schedules in work items (replayable bug reports).
  bool RecordSchedules = true;
  /// Icb: bounded POR — sleep sets composed with the preemption bound.
  /// Prunes same-bound siblings covered by independence without changing
  /// which bugs exist at which minimal bounds. Other strategies ignore it.
  bool UseSleepSets = false;
  /// Icb: worker threads. 1 runs the sequential reference engine; >1 (or
  /// 0 = hardware concurrency) runs the work-stealing parallel engine.
  unsigned Jobs = 1;
  /// Icb with Jobs != 1: shards in the concurrent caches (0 = auto).
  unsigned Shards = 0;
  /// DepthBoundedDfs: the bound. IterativeDfs: initial bound and increment.
  unsigned DepthBound = 20;
  /// Random: PRNG seed and number of executions.
  uint64_t Seed = 1;
  uint64_t RandomExecutions = 1000;
  /// Icb: session hooks and resume snapshot (see EngineObserver.h); other
  /// strategies ignore them.
  EngineObserver *Observer = nullptr;
  const EngineSnapshot *Resume = nullptr;
  /// Observability registry (see obs/Metrics.h), honoured by every
  /// strategy. Icb shards it per worker; the sequential strategies
  /// record into a single shard.
  obs::MetricsRegistry *Metrics = nullptr;
  /// Icb: distributed lease participation (see search::LeaseMode); other
  /// strategies ignore it.
  LeaseMode Lease = LeaseMode::Off;
};

/// Instantiates the strategy described by \p Opts.
std::unique_ptr<Strategy> makeStrategy(const SearchOptions &Opts);

/// Builds an interpreter for \p Prog and runs the requested strategy.
SearchResult checkProgram(const vm::Program &Prog, const SearchOptions &Opts);

} // namespace icb::search

#endif // ICB_SEARCH_CHECKER_H
