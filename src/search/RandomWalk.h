//===- search/RandomWalk.h - Uniform random-walk baseline -------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "random" baseline of Figure 2: repeated executions from the initial
/// state, choosing uniformly among enabled threads at every scheduling
/// point (Sivaraj & Gopalakrishnan's random-walk heuristic). Stress
/// testing's idealized cousin — unlike real stress testing it at least
/// samples schedules uniformly, yet ICB still dominates it.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_RANDOMWALK_H
#define ICB_SEARCH_RANDOMWALK_H

#include "obs/Metrics.h"
#include "search/Strategy.h"

namespace icb::search {

/// Repeated uniformly-random executions.
class RandomWalk final : public Strategy {
public:
  struct Options {
    uint64_t Seed = 1;
    /// Number of executions to run (also capped by Limits.MaxExecutions).
    uint64_t Executions = 1000;
    SearchLimits Limits;
    /// Optional observability registry (single shard: the walk is
    /// sequential). Records state-cache probes, chains, per-bound
    /// executions and the Execute phase timer.
    obs::MetricsRegistry *Metrics = nullptr;
  };

  explicit RandomWalk(Options Opts) : Opts(Opts) {}

  SearchResult run(const vm::Interp &Interp) override;
  std::string name() const override { return "random"; }

private:
  Options Opts;
};

} // namespace icb::search

#endif // ICB_SEARCH_RANDOMWALK_H
