//===- search/SearchTypes.h - Bugs, limits, statistics ----------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared vocabulary of both search engines — the ZING-style model-VM
/// strategies and the CHESS-style stateless explorers: bug reports with
/// their preemption counts (ICB's headline guarantee is that the first
/// exposure of a bug carries the *minimum* number of preemptions), resource
/// limits, and the statistics the experiment harnesses consume (Table 1's
/// K/B/c maxima, coverage curves for Figures 1-6).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_SEARCHTYPES_H
#define ICB_SEARCH_SEARCHTYPES_H

#include "support/Stats.h"
#include "trace/Schedule.h"
#include "vm/Ids.h"
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace icb::search {

/// The classes of errors a search can uncover. The first three come from
/// the model VM; the runtime (fiber) executor adds the dynamic detectors.
enum class BugKind : uint8_t {
  AssertFailure, ///< A model Assert / rt::testAssert evaluated false.
  Deadlock,      ///< Some thread is not Done, yet no thread is enabled.
  ModelError,    ///< The model itself misbehaved (bad unlock, runaway loop).
  DataRace,      ///< The per-execution race detector fired (runtime only).
  UseAfterFree,  ///< A managed object was touched after destruction.
  Diverged,      ///< Replay mismatch: the test is nondeterministic.
};

const char *bugKindName(BugKind Kind);

/// Inverse of bugKindName (repro/checkpoint loading); returns false on an
/// unrecognized name.
bool bugKindFromName(const std::string &Name, BugKind &Out);

/// One discovered bug, with the evidence needed to replay and rank it.
struct Bug {
  BugKind Kind = BugKind::AssertFailure;
  std::string Message;
  /// Preempting context switches in the exposing execution. Under ICB this
  /// is minimal over all executions exposing the same bug.
  unsigned Preemptions = 0;
  /// Context switches of either kind (runtime executor only; 0 for VM).
  unsigned ContextSwitches = 0;
  /// Length (steps) of the exposing execution.
  uint64_t Steps = 0;
  /// The exposing schedule: thread chosen at each scheduling point.
  std::vector<vm::ThreadId> Schedule;
  /// Runtime executor only: the annotated replayable schedule (preempting
  /// vs nonpreempting switches). Empty for model-VM bugs.
  trace::Schedule Sched;

  std::string str() const;
};

/// Resource limits for a search. Defaults are "unlimited".
struct SearchLimits {
  uint64_t MaxExecutions = std::numeric_limits<uint64_t>::max();
  uint64_t MaxSteps = std::numeric_limits<uint64_t>::max();
  uint64_t MaxStates = std::numeric_limits<uint64_t>::max();
  /// ICB only: stop after completely exploring this preemption bound.
  unsigned MaxPreemptionBound = std::numeric_limits<unsigned>::max();
  bool StopAtFirstBug = false;
};

/// One frontier work item in executor-neutral form: replay \p Prefix from
/// the initial state, then schedule \p Next (NoNext for the root item's
/// free first choice). This is both the checkpoint form (EngineObserver.h)
/// and the wire form leased between distributed checking processes
/// (dist/).
struct SavedWorkItem {
  static constexpr uint32_t NoNext = ~0u;

  std::vector<uint32_t> Prefix;
  uint32_t Next = NoNext;
  /// Threads asleep at the item's start state (bounded POR); empty when
  /// POR is off. Serialized only when non-empty (checkpoint format v3).
  std::vector<uint32_t> Sleep;
  /// BoundPolicy budget state (checkpoint format v4): the thread and
  /// variable sets a stateful policy carries. Empty for the preemption
  /// and delay policies; serialized only when non-empty.
  std::vector<uint32_t> BoundThreads;
  std::vector<uint64_t> BoundVars;
  /// Schedule-space mass assigned to the item's subtree (checkpoint
  /// format v5, see obs::EstimateOne); serialized only when nonzero so
  /// old checkpoints load with the estimator simply uncredited.
  uint64_t EstMass = 0;
  /// Display name of the preemption site that seeded this subtree
  /// (checkpoint format v5); empty for roots/free branches of untraced
  /// provenance and serialized only when non-empty.
  std::string Site;
};

/// How the ICB drivers participate in a distributed run (dist/). A lease
/// is one batch of a single bound's work items executed in isolation by a
/// worker process with fresh caches; the coordinator owns the global
/// frontier and merges the per-lease deltas commutatively.
enum class LeaseMode : uint8_t {
  Off,   ///< Run Algorithm 1 in full (the default).
  Roots, ///< Seed the bound-0 frontier (executor root items charged and
         ///< mass-split exactly as a local run would) and return both
         ///< queues *unexecuted*; the degenerate no-schedulable-thread
         ///< program still accounts its single execution. Sequential
         ///< driver only.
  Drain, ///< Resume from a synthetic snapshot carrying one bound's leased
         ///< items, drain exactly that bound, and return the deferred
         ///< continuations instead of advancing. Per-bound/coverage rows
         ///< are suppressed — the coordinator owns the bound barrier.
};

/// One sample of the states-vs-executions coverage curve (Figures 2/5/6).
struct CoveragePoint {
  uint64_t Executions = 0;
  uint64_t States = 0;
};

/// Distinct states discovered by the time a preemption bound was fully
/// explored (Figures 1/4).
struct BoundCoverage {
  unsigned Bound = 0;
  uint64_t States = 0;
  uint64_t Executions = 0;
};

/// Aggregate statistics of one search run.
struct SearchStats {
  uint64_t Executions = 0;
  uint64_t TotalSteps = 0;
  /// Distinct visited states. The model VM counts exact state hashes; the
  /// stateless runtime counts distinct happens-before fingerprints over
  /// every execution prefix (Section 4.3's coverage metric).
  uint64_t DistinctStates = 0;
  /// Distinct fingerprints of complete executions (runtime executor only;
  /// 0 for the model VM, which has exact terminal states instead).
  uint64_t DistinctTerminalStates = 0;
  /// Per-execution distributions; maxima feed Table 1.
  MinMax StepsPerExecution;   ///< K.
  MinMax BlockingPerExecution; ///< B.
  MinMax PreemptionsPerExecution; ///< c.
  /// Threads used per execution (runtime executor only; empty for VM).
  MinMax ThreadsPerExecution;
  /// Executions per preemption count. Since ICB and (uncached) DFS both
  /// enumerate every execution exactly once, their histograms must be
  /// equal — the test suite cross-validates the two engines this way.
  Histogram PreemptionHistogram;
  /// Sampled once per completed execution.
  std::vector<CoveragePoint> Coverage;
  /// ICB only: snapshot after each bound is exhausted.
  std::vector<BoundCoverage> PerBound;
  /// True if the strategy exhausted the state space within the limits.
  bool Completed = false;
};

/// Everything a strategy returns.
struct SearchResult {
  SearchStats Stats;
  std::vector<Bug> Bugs;
  /// True if an external stop (SIGINT/SIGTERM via the engine observer) cut
  /// the run short; a resumable checkpoint was emitted in that case.
  bool Interrupted = false;
  /// Lease-mode output (LeaseMode != Off; empty otherwise). Roots mode:
  /// LeaseCurrent/LeaseDeferred are the two seeded queues. Drain mode:
  /// LeaseCurrent holds whatever was left unexecuted when a limit or stop
  /// cut the lease short (normally empty), LeaseDeferred the continuations
  /// published for bound c + 1. The digest vectors are the lease-local
  /// distinct visited/terminal/work-item digests — the coordinator folds
  /// them into its authoritative sets to reconstruct the global hit/miss
  /// counter split.
  std::vector<SavedWorkItem> LeaseCurrent;
  std::vector<SavedWorkItem> LeaseDeferred;
  std::vector<uint64_t> LeaseSeen;
  std::vector<uint64_t> LeaseTerminal;
  std::vector<uint64_t> LeaseItems;

  bool foundBug() const { return !Bugs.empty(); }
  /// The bug with the fewest preemptions (the "simplest explanation").
  const Bug *simplestBug() const;
};

/// Deduplicates bugs by (kind, message), keeping the exposure with the
/// fewest preemptions. Strategies report every exposure; Table 2 wants one
/// row per distinct bug at its minimal bound.
class BugCollector {
public:
  /// Records an exposure; returns true if this is a new distinct bug.
  bool add(Bug NewBug);

  const std::vector<Bug> &bugs() const { return Bugs; }
  bool empty() const { return Bugs.empty(); }
  std::vector<Bug> take() { return std::move(Bugs); }

private:
  std::vector<Bug> Bugs;
  std::map<std::pair<BugKind, std::string>, size_t> Index;
};

/// Distinct bugs keyed by (kind, message), each holding its canonical
/// minimal exposure.
using CanonicalBugMap = std::map<std::pair<BugKind, std::string>, Bug>;

/// Keeps the lexicographically smallest (Preemptions, Steps, Schedule)
/// exposure per distinct (kind, message) bug. Taking a minimum is
/// associative and commutative, so merging maps in any order — and
/// accumulating exposures within a worker in any order — yields the same
/// final map. That is what makes bug reports reproducible across worker
/// counts.
void canonicalMergeBug(CanonicalBugMap &Into, Bug NewBug);

/// Flattens a canonical map into report order (sorted by kind, message —
/// std::map iteration order, hence deterministic).
std::vector<Bug> takeCanonicalBugs(CanonicalBugMap &&Map);

} // namespace icb::search

#endif // ICB_SEARCH_SEARCHTYPES_H
