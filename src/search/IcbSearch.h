//===- search/IcbSearch.h - Iterative context bounding (Alg. 1) -*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Algorithm 1: iterative context bounding over the model VM.
///
/// Two FIFO queues of work items (state, thread) are maintained. Items in
/// `workQueue` are explorable within the current preemption bound; whenever
/// the running thread remains enabled after a step, scheduling any *other*
/// enabled thread would preempt it, so those work items are deferred into
/// `nextWorkQueue` and processed only after everything at the current bound
/// is exhausted. Nonpreempting switches (the running thread blocked or
/// terminated) are explored immediately and exhaustively at the same bound.
///
/// Consequences implemented and tested here:
///   * executions are enumerated in nondecreasing preemption order, so the
///     first exposure of any bug uses the minimum number of preemptions;
///   * when bound c completes without an error, the program provably has no
///     error reachable with <= c preemptions (the coverage guarantee);
///   * execution depth is never bounded — with bound 0 the search already
///     drives every thread to completion.
///
/// State caching (the ZING configuration) is optional, exactly as the
/// paper describes: "State caching is orthogonal to the idea of
/// context-bounding; our algorithm may be used with or without it."
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_ICBSEARCH_H
#define ICB_SEARCH_ICBSEARCH_H

#include "search/BoundPolicy.h"
#include "search/EngineObserver.h"
#include "search/Strategy.h"

namespace icb::search {

/// Iterative context-bounding search (Algorithm 1).
class IcbSearch final : public Strategy {
public:
  struct Options {
    /// Prune (state, thread) work items already explored (ZING mode).
    bool UseStateCache = false;
    /// Carry full schedules in work items so bug reports are replayable.
    /// Disable for exhaustive coverage runs to save queue memory.
    bool RecordSchedules = true;
    /// Bounded POR: sleep sets composed with the preemption bound
    /// (VmExecutor::Options::UseSleepSets).
    bool UseSleepSets = false;
    SearchLimits Limits;
    /// Bound policy (see BoundPolicy.h). Null = preemption bounding at
    /// Limits.MaxPreemptionBound. Must outlive the run.
    const BoundPolicy *Policy = nullptr;
    /// Session hooks and resume snapshot (see EngineObserver.h).
    EngineObserver *Observer = nullptr;
    const EngineSnapshot *Resume = nullptr;
    /// Observability registry (see obs/Metrics.h).
    obs::MetricsRegistry *Metrics = nullptr;
    /// Distributed lease participation (see search::LeaseMode). Any lease
    /// mode forces canonical bug reports — the coordinator's merge is
    /// canonical by construction.
    LeaseMode Lease = LeaseMode::Off;
  };

  explicit IcbSearch(Options Opts) : Opts(Opts) {}

  SearchResult run(const vm::Interp &Interp) override;
  std::string name() const override { return "icb"; }

private:
  Options Opts;
};

} // namespace icb::search

#endif // ICB_SEARCH_ICBSEARCH_H
