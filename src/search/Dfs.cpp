//===- search/Dfs.cpp - Depth-first search strategies ---------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/Dfs.h"
#include "obs/PhaseTimer.h"
#include "search/StateCache.h"
#include "support/Debug.h"
#include "support/Format.h"
#include <algorithm>

using namespace icb;
using namespace icb::search;
using namespace icb::vm;

Strategy::~Strategy() = default;

namespace icb::search::detail {

std::string describeDeadlock(const Interp &Interp, const State &S) {
  std::string Text = "deadlock:";
  const Program &Prog = Interp.program();
  for (ThreadId Tid = 0; Tid != S.Threads.size(); ++Tid) {
    if (S.Threads[Tid].Status != ThreadStatus::Runnable)
      continue;
    VarRef Var = Interp.nextVar(S, Tid);
    const char *What = "";
    std::string Name;
    switch (Var.Kind) {
    case VarKind::Lock:
      What = "lock";
      Name = Prog.Locks[Var.Index];
      break;
    case VarKind::Event:
      What = "event";
      Name = Prog.Events[Var.Index].Name;
      break;
    case VarKind::Semaphore:
      What = "semaphore";
      Name = Prog.Semaphores[Var.Index].Name;
      break;
    case VarKind::ThreadEnd:
      What = "join of";
      Name = Prog.Threads[Var.Index].Name;
      break;
    default:
      What = "variable";
      Name = "?";
      break;
    }
    Text += strFormat(" [%s blocked on %s '%s']",
                      Prog.Threads[Tid].Name.c_str(), What, Name.c_str());
  }
  return Text;
}

} // namespace icb::search::detail

namespace {

/// The single metric shard of a sequential strategy, or null when no
/// registry was supplied.
obs::MetricShard *singleShard(obs::MetricsRegistry *Metrics) {
  if (!Metrics)
    return nullptr;
  Metrics->ensureShards(1);
  return &Metrics->shard(0);
}

/// Shared DFS engine: one object accumulates statistics, distinct states,
/// and bugs across one or more rounds (IterativeDeepeningSearch runs many
/// rounds with rising depth bounds against the same driver).
class DfsDriver {
public:
  DfsDriver(const vm::Interp &VM, const SearchLimits &Limits,
            obs::MetricShard *Shard)
      : VM(VM), Limits(Limits), Shard(Shard) {}

  struct RoundOutcome {
    bool LimitHit = false;
    bool Truncated = false; ///< Some execution hit the depth bound.
  };

  /// Runs one complete DFS from the initial state.
  RoundOutcome runRound(unsigned DepthBound, bool UseStateCache,
                        bool UseSleepSets = false);

  SearchResult takeResult(bool Completed) {
    SearchResult Result;
    Stats.DistinctStates = Seen.size();
    Stats.Completed = Completed;
    Sampler.finish(Stats.Coverage);
    Result.Stats = std::move(Stats);
    Result.Bugs = Bugs.take();
    return Result;
  }

private:
  struct Frame {
    State S;
    std::vector<ThreadId> Enabled;
    size_t NextChoice = 0;
    ThreadId ProducedBy = InvalidThread;
    bool ProducerEnabled = false;
    unsigned Np = 0;
    uint64_t Blocking = 0;
    bool OwnsScheduleEntry = false;
    /// Sleep set: threads whose next steps were already covered by an
    /// explored sibling subtree (grows as siblings are exhausted).
    std::vector<ThreadId> Sleep;
  };

  /// Records the end of one maximal explored execution.
  bool endExecution(uint64_t Steps, unsigned Np, uint64_t Blocking) {
    ++Stats.Executions;
    Stats.StepsPerExecution.observe(Steps);
    Stats.PreemptionsPerExecution.observe(Np);
    Stats.PreemptionHistogram.increment(Np);
    Stats.BlockingPerExecution.observe(Blocking);
    obs::count(Shard, obs::Counter::Chains);
    ICB_OBS(Shard, Shard->ExecutionsPerBound.increment(Np));
    Sampler.observe(Stats.Coverage, Stats.Executions, Seen.size());
    return Stats.Executions >= Limits.MaxExecutions ||
           Stats.TotalSteps >= Limits.MaxSteps ||
           Seen.size() >= Limits.MaxStates;
  }

  /// State-cache probe with hit/miss accounting.
  bool probeSeen(uint64_t Hash) {
    obs::ScopedPhase Timer(Shard, obs::Phase::CacheProbe);
    bool New = Seen.insert(Hash);
    obs::count(Shard, New ? obs::Counter::SeenMiss : obs::Counter::SeenHit);
    return New;
  }

  void recordBug(BugKind Kind, std::string Message, unsigned Np,
                 const std::vector<ThreadId> &Sched) {
    Bug NewBug;
    NewBug.Kind = Kind;
    NewBug.Message = std::move(Message);
    NewBug.Preemptions = Np;
    NewBug.Steps = Sched.size();
    NewBug.Schedule = Sched;
    Bugs.add(std::move(NewBug));
    FoundBug = true;
  }

  const vm::Interp &VM;
  SearchLimits Limits;
  obs::MetricShard *Shard;
  StateCache Seen;
  SearchStats Stats;
  CoverageSampler<CoveragePoint> Sampler;
  BugCollector Bugs;
  bool FoundBug = false;
};

DfsDriver::RoundOutcome DfsDriver::runRound(unsigned DepthBound,
                                            bool UseStateCache,
                                            bool UseSleepSets) {
  RoundOutcome Outcome;
  // One Execute scope per round: the stateless vm DFS has no per-chain
  // replay boundary to time individually.
  obs::ScopedPhase ExecTimer(Shard, obs::Phase::Execute);
  std::vector<Frame> Stack;
  std::vector<ThreadId> PathSched;

  State S0 = VM.initialState();
  probeSeen(S0.hash());
  std::vector<ThreadId> Enabled0 = VM.enabledThreads(S0);
  if (Enabled0.empty()) {
    if (!S0.allDone())
      recordBug(BugKind::Deadlock, detail::describeDeadlock(VM, S0), 0,
                PathSched);
    endExecution(0, 0, 0);
    return Outcome;
  }
  Stack.push_back({std::move(S0), std::move(Enabled0), 0, InvalidThread,
                   false, 0, 0, false, {}});

  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (F.NextChoice == F.Enabled.size()) {
      if (F.OwnsScheduleEntry)
        PathSched.pop_back();
      Stack.pop_back();
      continue;
    }
    ThreadId T = F.Enabled[F.NextChoice++];
    if (UseSleepSets &&
        std::find(F.Sleep.begin(), F.Sleep.end(), T) != F.Sleep.end())
      continue; // An explored sibling already covers this trace.
    // The next steps of the threads sleeping at F, evaluated before the
    // step mutates the state (the child keeps only those independent of
    // the executed step).
    std::vector<std::pair<ThreadId, VarRef>> SleepVars;
    if (UseSleepSets)
      for (ThreadId U : F.Sleep)
        SleepVars.push_back({U, VM.nextVar(F.S, U)});
    bool Switch = F.ProducedBy != InvalidThread && T != F.ProducedBy;
    bool Preempt = Switch && F.ProducerEnabled;
    unsigned ChildNp = F.Np + (Preempt ? 1 : 0);
    uint64_t ChildBlocking = F.Blocking;

    State Child = F.S;
    StepResult R = VM.step(Child, T);
    ++Stats.TotalSteps;
    ChildBlocking += R.WasBlockingOp ? 1 : 0;
    PathSched.push_back(T);
    uint64_t Depth = PathSched.size();
    bool NewState = probeSeen(Child.hash());

    bool Leaf = false;
    if (R.Status == StepStatus::AssertFailed) {
      recordBug(BugKind::AssertFailure,
                VM.program().Messages[R.MsgId], ChildNp, PathSched);
      Leaf = true;
    } else if (R.Status == StepStatus::ModelError) {
      recordBug(BugKind::ModelError, R.ModelErrorText, ChildNp, PathSched);
      Leaf = true;
    }

    std::vector<ThreadId> ChildEnabled;
    if (!Leaf) {
      ChildEnabled = VM.enabledThreads(Child);
      if (ChildEnabled.empty()) {
        if (!Child.allDone())
          recordBug(BugKind::Deadlock,
                    detail::describeDeadlock(VM, Child), ChildNp,
                    PathSched);
        Leaf = true;
      } else if (DepthBound != 0 && Depth >= DepthBound) {
        Leaf = true;
        Outcome.Truncated = true;
      } else if (UseStateCache && !NewState) {
        Leaf = true; // Revisited state: prune (explicit-state mode).
      }
    }

    if (Leaf) {
      bool Hit = endExecution(Depth, ChildNp, ChildBlocking);
      PathSched.pop_back();
      if (Hit || (Limits.StopAtFirstBug && FoundBug)) {
        Outcome.LimitHit = true;
        return Outcome;
      }
      if (UseSleepSets)
        F.Sleep.push_back(T);
      continue;
    }

    bool ProducerStillEnabled =
        std::find(ChildEnabled.begin(), ChildEnabled.end(), T) !=
        ChildEnabled.end();
    Frame ChildFrame{std::move(Child),  std::move(ChildEnabled), 0, T,
                     ProducerStillEnabled, ChildNp, ChildBlocking, true,
                     {}};
    if (UseSleepSets) {
      // A sleeping thread stays asleep in the child iff its next step is
      // independent of the executed one (different thread and different
      // shared variable); dependence wakes it up.
      for (const auto &[U, Var] : SleepVars)
        if (!(Var == R.Var))
          ChildFrame.Sleep.push_back(U);
      // For the remaining siblings, the executed thread sleeps: its
      // subtree is fully covered.
      Stack.back().Sleep.push_back(T);
    }
    Stack.push_back(std::move(ChildFrame));
  }
  return Outcome;
}

} // namespace

SearchResult DfsSearch::run(const Interp &Interp) {
  // Sleep sets with state caching would need sleep sets stored alongside
  // cached states to stay sound (Godefroid 1996, ch. 5); keep them apart.
  ICB_ASSERT(!(Opts.UseStateCache && Opts.UseSleepSets),
             "sleep sets cannot be combined with the state cache");
  DfsDriver Driver(Interp, Opts.Limits, singleShard(Opts.Metrics));
  DfsDriver::RoundOutcome Outcome = Driver.runRound(
      Opts.DepthBound, Opts.UseStateCache, Opts.UseSleepSets);
  // A depth-bounded round that truncated executions did not exhaust the
  // space; neither did a round stopped by limits.
  bool Completed = !Outcome.LimitHit && !Outcome.Truncated;
  return Driver.takeResult(Completed);
}

std::string DfsSearch::name() const {
  if (Opts.DepthBound != 0)
    return strFormat("db:%u", Opts.DepthBound);
  return "dfs";
}

SearchResult IterativeDeepeningSearch::run(const Interp &Interp) {
  DfsDriver Driver(Interp, Opts.Limits, singleShard(Opts.Metrics));
  unsigned Bound = Opts.InitialBound;
  bool Completed = false;
  while (true) {
    DfsDriver::RoundOutcome Outcome =
        Driver.runRound(Bound, /*UseStateCache=*/false);
    if (Outcome.LimitHit)
      break;
    if (!Outcome.Truncated) {
      // Nothing was cut off: the whole (finite) space fit within the
      // bound, so deeper rounds would repeat this one exactly.
      Completed = true;
      break;
    }
    ICB_ASSERT(Opts.Increment > 0, "idfs increment must be positive");
    Bound += Opts.Increment;
  }
  return Driver.takeResult(Completed);
}

std::string IterativeDeepeningSearch::name() const {
  return strFormat("idfs-%u", Opts.InitialBound);
}
