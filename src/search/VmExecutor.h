//===- search/VmExecutor.h - Model-VM executor ------------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit-state (ZING-style) executor: a work item is a (state,
/// thread) pair carrying its schedule prefix, and running a chain means
/// stepping `vm::State` copies through the interpreter (IcbCore.h). The
/// interpreter is stateless w.r.t. the search — all mutable state lives
/// in the work items — so any number of VmExecutor instances can share
/// one `vm::Interp` from different worker threads.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_VMEXECUTOR_H
#define ICB_SEARCH_VMEXECUTOR_H

#include "search/EngineObserver.h"
#include "search/Executor.h"
#include "search/IcbCore.h"
#include "support/Debug.h"
#include <vector>

namespace icb::search {

/// Executor advancing the search by stepping model-VM states.
class VmExecutor {
public:
  using WorkItem = detail::IcbWorkItem;

  struct Options {
    /// Prune (state, thread) work items already explored (ZING mode).
    bool UseStateCache = false;
    /// Carry full schedules in work items so bug reports are replayable.
    bool RecordSchedules = true;
    /// Bounded POR: maintain sleep sets along chains and across same-bound
    /// siblings, waking on dependence and on preemption-budget changes
    /// (IcbCore.h). Per-bound completeness is preserved.
    bool UseSleepSets = false;
  };

  VmExecutor(const vm::Interp &VM, const Options &Opts)
      : VM(VM), Opts(Opts) {}

  template <typename Ctx> std::vector<WorkItem> rootItems(Ctx &C) {
    vm::State S0 = VM.initialState();
    C.noteState(S0.hash());
    std::vector<vm::ThreadId> Enabled0 = VM.enabledThreads(S0);
    if (Enabled0.empty()) {
      // Degenerate program: nothing is schedulable at the initial state.
      // Account the single (empty) execution directly.
      if (!S0.allDone()) {
        Bug NewBug;
        NewBug.Kind = BugKind::Deadlock;
        NewBug.Message = detail::describeDeadlock(VM, S0);
        C.recordBug(std::move(NewBug));
      }
      ExecutionFacts Facts;
#ifndef ICB_NO_METRICS
      // The whole schedule space is this one execution.
      Facts.EstMass = obs::EstimateOne;
#endif
      C.endExecution(Facts);
      return {};
    }

    // Algorithm 1 lines 6-8: one work item per initially enabled thread.
    // With sleep sets on, each root sleeps those earlier roots whose step
    // disables them: the roots all share the zero-preemption budget, and
    // the disable check keeps the sibling covering trace free of extra
    // preemptions (see IcbCore.h).
    std::vector<WorkItem> Items;
    Items.reserve(Enabled0.size());
    std::vector<vm::ThreadId> RootSleep;
    for (size_t I = 0; I != Enabled0.size(); ++I) {
      WorkItem Item;
      Item.S = S0;
      Item.Tid = Enabled0[I];
      Item.Site = "root";
      if (Opts.UseSleepSets) {
        if (I != 0 && detail::stepDisables(VM, S0, Enabled0[I - 1]))
          detail::sleepInsert(RootSleep, Enabled0[I - 1]);
        Item.Sleep = RootSleep;
      }
      Items.push_back(std::move(Item));
    }
    return Items;
  }

  template <typename Ctx> void runChain(WorkItem Item, Ctx &C) {
    detail::runIcbExecution(VM, std::move(Item), Opts.UseStateCache,
                            Opts.RecordSchedules, Opts.UseSleepSets, C);
  }

  /// Checkpoint form of a work item: its schedule prefix plus the chosen
  /// thread. Requires recorded schedules (the default) — without them the
  /// state cannot be rebuilt.
  SavedWorkItem saveItem(const WorkItem &W) const {
    ICB_ASSERT(Opts.RecordSchedules,
               "checkpointing requires recorded schedules");
    SavedWorkItem S;
    S.Prefix = W.Sched;
    S.Next = W.Tid;
    S.Sleep = W.Sleep;
    S.BoundThreads = W.BState.Threads;
    S.BoundVars = W.BState.Vars;
    S.EstMass = W.Est;
    S.Site = W.Site;
    return S;
  }

  /// Rebuilds a (state, thread) item by replaying the prefix through the
  /// interpreter from the initial state. Replay steps are reconstruction,
  /// not exploration — they touch no statistics. The prefix preemption
  /// count is recomputed along the way (a switch away from a still-enabled
  /// thread), so resumed bug reports stay exact under every policy.
  WorkItem loadItem(const SavedWorkItem &S) const {
    WorkItem W;
    W.S = VM.initialState();
    W.Sched.reserve(S.Prefix.size());
    vm::ThreadId Last = vm::InvalidThread;
    for (vm::ThreadId Tid : S.Prefix) {
      if (Last != vm::InvalidThread && Tid != Last &&
          VM.isEnabled(W.S, Last))
        ++W.Preempts;
      vm::StepResult R = VM.step(W.S, Tid);
      W.Blocking += R.WasBlockingOp ? 1 : 0;
      W.Sched.push_back(Tid);
      Last = Tid;
    }
    if (S.Next != Last && Last != vm::InvalidThread &&
        VM.isEnabled(W.S, Last))
      ++W.Preempts;
    W.Tid = S.Next;
    W.Sleep = S.Sleep;
    W.BState.Threads = S.BoundThreads;
    W.BState.Vars = S.BoundVars;
    W.Est = S.EstMass;
    W.Site = S.Site;
    return W;
  }

private:
  const vm::Interp &VM;
  Options Opts;
};

} // namespace icb::search

#endif // ICB_SEARCH_VMEXECUTOR_H
