//===- search/IcbSearch.cpp - Iterative context bounding (Alg. 1) ---------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/IcbSearch.h"
#include "search/IcbCore.h"
#include "search/StateCache.h"
#include <deque>

using namespace icb;
using namespace icb::search;
using namespace icb::search::detail;
using namespace icb::vm;

namespace {

/// Sequential reference driver: drains each bound's queue on the calling
/// thread. The exploration body lives in IcbCore.h (shared with the
/// parallel engine); this class is the Ctx it drives.
class IcbDriver {
public:
  IcbDriver(const vm::Interp &VM, const IcbSearch::Options &Opts)
      : VM(VM), Opts(Opts) {}

  SearchResult run();

  // --- IcbCore context hooks -------------------------------------------
  bool insertItem(uint64_t Digest) { return ItemCache.insert(Digest); }
  void insertSeen(uint64_t Digest) { Seen.insert(Digest); }
  void countStep() { ++Stats.TotalSteps; }
  void defer(IcbWorkItem &&Item) { NextQueue.push_back(std::move(Item)); }
  void branch(IcbWorkItem &&Item) { Local.push_back(std::move(Item)); }

  void recordBug(BugKind Kind, std::string Message,
                 const std::vector<ThreadId> &Sched) {
    Bug NewBug;
    NewBug.Kind = Kind;
    NewBug.Message = std::move(Message);
    NewBug.Preemptions = CurrBound;
    NewBug.Steps = Sched.size();
    NewBug.Schedule = Sched;
    Bugs.add(std::move(NewBug));
    if (Opts.Limits.StopAtFirstBug)
      LimitHit = true;
  }

  void endExecution(uint64_t Steps, uint64_t Blocking) {
    ++Stats.Executions;
    Stats.StepsPerExecution.observe(Steps);
    Stats.PreemptionsPerExecution.observe(CurrBound);
    Stats.PreemptionHistogram.increment(CurrBound);
    Stats.BlockingPerExecution.observe(Blocking);
    Sampler.observe(Stats.Coverage, Stats.Executions, Seen.size());
    if (Stats.Executions >= Opts.Limits.MaxExecutions ||
        Stats.TotalSteps >= Opts.Limits.MaxSteps ||
        Seen.size() >= Opts.Limits.MaxStates)
      LimitHit = true;
  }
  // ---------------------------------------------------------------------

private:
  /// Explores everything reachable from \p Item without further
  /// preemptions; preemptive continuations go to NextQueue. The local
  /// stack holds the nonpreempting branches (Algorithm 1 lines 33-37).
  void processItem(IcbWorkItem Item) {
    Local.push_back(std::move(Item));
    while (!Local.empty() && !LimitHit) {
      IcbWorkItem W = std::move(Local.back());
      Local.pop_back();
      runIcbExecution(VM, std::move(W), Opts.UseStateCache,
                      Opts.RecordSchedules, *this);
    }
  }

  const vm::Interp &VM;
  IcbSearch::Options Opts;
  std::deque<IcbWorkItem> WorkQueue;
  std::deque<IcbWorkItem> NextQueue;
  std::vector<IcbWorkItem> Local;
  StateCache Seen;      ///< Distinct visited states (coverage metric).
  StateCache ItemCache; ///< (state, thread) pruning when caching is on.
  unsigned CurrBound = 0;
  bool LimitHit = false;
  SearchStats Stats;
  CoverageSampler<CoveragePoint> Sampler;
  BugCollector Bugs;
};

SearchResult IcbDriver::run() {
  SearchResult Result;

  State S0 = VM.initialState();
  Seen.insert(S0.hash());
  std::vector<ThreadId> Enabled0 = VM.enabledThreads(S0);
  if (Enabled0.empty()) {
    if (!S0.allDone())
      recordBug(BugKind::Deadlock, describeDeadlock(VM, S0), {});
    endExecution(0, 0);
    Stats.DistinctStates = Seen.size();
    Stats.PerBound.push_back({0, Seen.size(), Stats.Executions});
    Stats.Completed = !LimitHit;
    Sampler.finish(Stats.Coverage);
    Result.Stats = std::move(Stats);
    Result.Bugs = Bugs.take();
    return Result;
  }

  // Lines 6-8: one work item per initially enabled thread.
  for (ThreadId Tid : Enabled0) {
    IcbWorkItem Item;
    Item.S = S0;
    Item.Tid = Tid;
    Item.Blocking = 0;
    WorkQueue.push_back(std::move(Item));
  }

  // Lines 9-21: drain the current bound, snapshot coverage, move on.
  while (true) {
    while (!WorkQueue.empty() && !LimitHit) {
      IcbWorkItem Item = std::move(WorkQueue.front());
      WorkQueue.pop_front();
      processItem(std::move(Item));
    }
    Stats.PerBound.push_back({CurrBound, Seen.size(), Stats.Executions});
    if (LimitHit || NextQueue.empty() ||
        CurrBound >= Opts.Limits.MaxPreemptionBound)
      break;
    ++CurrBound;
    std::swap(WorkQueue, NextQueue);
    NextQueue.clear();
  }

  Stats.DistinctStates = Seen.size();
  Stats.Completed = !LimitHit && WorkQueue.empty() && NextQueue.empty();
  Sampler.finish(Stats.Coverage);
  Result.Stats = std::move(Stats);
  Result.Bugs = Bugs.take();
  return Result;
}

} // namespace

SearchResult IcbSearch::run(const Interp &Interp) {
  IcbDriver Driver(Interp, Opts);
  return Driver.run();
}
