//===- search/IcbSearch.cpp - Iterative context bounding (Alg. 1) ---------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/IcbSearch.h"
#include "search/IcbEngine.h"
#include "search/VmExecutor.h"

using namespace icb;
using namespace icb::search;

SearchResult IcbSearch::run(const vm::Interp &Interp) {
  VmExecutor Executor(
      Interp, {Opts.UseStateCache, Opts.RecordSchedules, Opts.UseSleepSets});
  IcbEngineOptions EngineOpts;
  EngineOpts.Limits = Opts.Limits;
  EngineOpts.Policy = Opts.Policy;
  // Historical model-VM bug policy: first exposure wins at equal
  // preemption counts, reported in discovery order. Lease executions are
  // merged by a coordinator whose folds are canonical, so they report
  // canonically like the parallel driver.
  EngineOpts.CanonicalBugs = Opts.Lease != LeaseMode::Off;
  EngineOpts.Observer = Opts.Observer;
  EngineOpts.Resume = Opts.Resume;
  EngineOpts.Metrics = Opts.Metrics;
  EngineOpts.Lease = Opts.Lease;
  return runSequentialIcbEngine(Executor, EngineOpts);
}
