//===- search/IcbSearch.cpp - Iterative context bounding (Alg. 1) ---------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/IcbSearch.h"
#include "search/StateCache.h"
#include <algorithm>
#include <deque>

using namespace icb;
using namespace icb::search;
using namespace icb::vm;

namespace icb::search::detail {
// Defined in Dfs.cpp; shared deadlock pretty-printer.
std::string describeDeadlock(const Interp &Interp, const State &S);
} // namespace icb::search::detail

namespace {

/// Algorithm 1's WorkItem, extended with the bookkeeping the experiments
/// need: the schedule prefix (for replayable bug reports) and the number of
/// blocking operations executed so far (Table 1's B column). The preemption
/// count is implicit: every item in the queue for bound c has exactly c
/// preemptions in its prefix.
struct WorkItem {
  State S;
  ThreadId Tid = InvalidThread;
  std::vector<ThreadId> Sched;
  uint64_t Blocking = 0;
  /// Steps executed before this item's schedule vector starts. Nonzero only
  /// when RecordSchedules is off (the prefix is dropped to save memory but
  /// its length still feeds the K statistic).
  uint64_t PrefixSteps = 0;
};

class IcbDriver {
public:
  IcbDriver(const vm::Interp &VM, const IcbSearch::Options &Opts)
      : VM(VM), Opts(Opts) {}

  SearchResult run();

private:
  /// Explores everything reachable from \p Item without further
  /// preemptions; preemptive continuations go to NextQueue.
  void processItem(WorkItem Item);

  bool endExecution(uint64_t Steps, uint64_t Blocking) {
    SearchStats &Stats = Result.Stats;
    ++Stats.Executions;
    Stats.StepsPerExecution.observe(Steps);
    Stats.PreemptionsPerExecution.observe(CurrBound);
    Stats.PreemptionHistogram.increment(CurrBound);
    Stats.BlockingPerExecution.observe(Blocking);
    Stats.Coverage.push_back({Stats.Executions, Seen.size()});
    if (Stats.Executions >= Opts.Limits.MaxExecutions ||
        Stats.TotalSteps >= Opts.Limits.MaxSteps ||
        Seen.size() >= Opts.Limits.MaxStates)
      LimitHit = true;
    return LimitHit;
  }

  void recordBug(BugKind Kind, std::string Message,
                 const std::vector<ThreadId> &Sched) {
    Bug NewBug;
    NewBug.Kind = Kind;
    NewBug.Message = std::move(Message);
    NewBug.Preemptions = CurrBound;
    NewBug.Steps = Sched.size();
    NewBug.Schedule = Sched;
    Bugs.add(std::move(NewBug));
    if (Opts.Limits.StopAtFirstBug)
      LimitHit = true;
  }

  const vm::Interp &VM;
  IcbSearch::Options Opts;
  std::deque<WorkItem> WorkQueue;
  std::deque<WorkItem> NextQueue;
  StateCache Seen;       ///< Distinct visited states (coverage metric).
  StateCache ItemCache;  ///< (state, thread) pruning when caching is on.
  unsigned CurrBound = 0;
  bool LimitHit = false;
  SearchResult Result;
  BugCollector Bugs;
};

void IcbDriver::processItem(WorkItem Item) {
  // The stack holds deferred nonpreempting branches (Algorithm 1 lines
  // 33-37 explore every enabled thread when the running thread yielded).
  std::vector<WorkItem> Local;
  Local.push_back(std::move(Item));

  while (!Local.empty() && !LimitHit) {
    WorkItem W = std::move(Local.back());
    Local.pop_back();

    // Follow W.Tid for as long as it stays enabled (lines 25-28); every
    // alternative at those points costs a preemption and is deferred.
    while (true) {
      if (Opts.UseStateCache &&
          !ItemCache.insertWorkItem(W.S.hash(), W.Tid)) {
        // Revisited work item: everything beyond it was already explored
        // (possibly at a lower bound). Counts as one pruned execution.
        endExecution(W.PrefixSteps + W.Sched.size(), W.Blocking);
        break;
      }

      StepResult R = VM.step(W.S, W.Tid);
      ++Result.Stats.TotalSteps;
      W.Blocking += R.WasBlockingOp ? 1 : 0;
      W.Sched.push_back(W.Tid);
      Seen.insert(W.S.hash());

      if (R.Status == StepStatus::AssertFailed ||
          R.Status == StepStatus::ModelError) {
        recordBug(R.Status == StepStatus::AssertFailed
                      ? BugKind::AssertFailure
                      : BugKind::ModelError,
                  R.Status == StepStatus::AssertFailed
                      ? VM.program().Messages[R.MsgId]
                      : R.ModelErrorText,
                  W.Sched);
        endExecution(W.PrefixSteps + W.Sched.size(), W.Blocking);
        break;
      }

      std::vector<ThreadId> Enabled = VM.enabledThreads(W.S);
      bool SelfEnabled =
          std::find(Enabled.begin(), Enabled.end(), W.Tid) != Enabled.end();

      if (SelfEnabled) {
        // Scheduling any other enabled thread here preempts W.Tid: defer
        // those continuations to the next bound (lines 29-32).
        for (ThreadId Other : Enabled) {
          if (Other == W.Tid)
            continue;
          WorkItem Deferred;
          Deferred.S = W.S;
          Deferred.Tid = Other;
          if (Opts.RecordSchedules)
            Deferred.Sched = W.Sched;
          else
            Deferred.PrefixSteps = W.PrefixSteps + W.Sched.size();
          Deferred.Blocking = W.Blocking;
          NextQueue.push_back(std::move(Deferred));
        }
        continue; // Keep running W.Tid at this bound (line 28).
      }

      if (Enabled.empty()) {
        if (!W.S.allDone())
          recordBug(BugKind::Deadlock,
                    detail::describeDeadlock(VM, W.S), W.Sched);
        endExecution(W.PrefixSteps + W.Sched.size(), W.Blocking);
        break;
      }

      // W.Tid blocked or terminated: switching is free (nonpreempting).
      // Continue with the first enabled thread; queue the rest locally
      // (lines 33-37).
      for (size_t I = 1; I < Enabled.size(); ++I) {
        WorkItem Branch;
        Branch.S = W.S;
        Branch.Tid = Enabled[I];
        if (Opts.RecordSchedules)
          Branch.Sched = W.Sched;
        else
          Branch.PrefixSteps = W.PrefixSteps + W.Sched.size();
        Branch.Blocking = W.Blocking;
        Local.push_back(std::move(Branch));
      }
      W.Tid = Enabled[0];
    }
  }
}

SearchResult IcbDriver::run() {
  State S0 = VM.initialState();
  Seen.insert(S0.hash());
  std::vector<ThreadId> Enabled0 = VM.enabledThreads(S0);
  if (Enabled0.empty()) {
    if (!S0.allDone())
      recordBug(BugKind::Deadlock, detail::describeDeadlock(VM, S0), {});
    endExecution(0, 0);
    Result.Stats.DistinctStates = Seen.size();
    Result.Stats.PerBound.push_back({0, Seen.size(), Result.Stats.Executions});
    Result.Stats.Completed = !LimitHit;
    Result.Bugs = Bugs.take();
    return std::move(Result);
  }

  // Lines 6-8: one work item per initially enabled thread.
  for (ThreadId Tid : Enabled0) {
    WorkItem Item;
    Item.S = S0;
    Item.Tid = Tid;
    Item.Blocking = 0;
    WorkQueue.push_back(std::move(Item));
  }

  // Lines 9-21: drain the current bound, snapshot coverage, move on.
  while (true) {
    while (!WorkQueue.empty() && !LimitHit) {
      WorkItem Item = std::move(WorkQueue.front());
      WorkQueue.pop_front();
      processItem(std::move(Item));
    }
    Result.Stats.PerBound.push_back(
        {CurrBound, Seen.size(), Result.Stats.Executions});
    if (LimitHit || NextQueue.empty() ||
        CurrBound >= Opts.Limits.MaxPreemptionBound)
      break;
    ++CurrBound;
    std::swap(WorkQueue, NextQueue);
    NextQueue.clear();
  }

  Result.Stats.DistinctStates = Seen.size();
  Result.Stats.Completed = !LimitHit && WorkQueue.empty() &&
                           NextQueue.empty();
  Result.Bugs = Bugs.take();
  return std::move(Result);
}

} // namespace

SearchResult IcbSearch::run(const Interp &Interp) {
  IcbDriver Driver(Interp, Opts);
  return Driver.run();
}
