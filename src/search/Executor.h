//===- search/Executor.h - The engine/executor seam -------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper implements Algorithm 1 twice — inside the explicit-state ZING
/// checker and inside the stateless CHESS runtime. This repo implements it
/// once: the drivers in IcbEngine.h walk the bounded tree and an
/// *executor* advances the search from one work item, publishing
/// continuations and accounting through the driver's context hooks.
///
/// An Executor provides:
///
///   using WorkItem = ...;     // movable; carries everything needed to
///                             // resume the search at one tree node
///
///   template <typename Ctx>
///   std::vector<WorkItem> rootItems(Ctx &C);
///       // Bound-0 roots. May record a degenerate execution (a program
///       // with no enabled thread at the initial state) directly on C and
///       // return an empty vector.
///
///   template <typename Ctx>
///   void runChain(WorkItem Item, Ctx &C);
///       // Runs one execution from Item: follow the item's thread while
///       // it stays enabled (Algorithm 1 lines 25-28), C.defer() every
///       // preemptive alternative (lines 29-32), C.branch() every free
///       // alternative at blocked/finished/yield points (lines 33-37),
///       // and account the finished execution on C.
///
/// Two executors exist:
///   * VmExecutor (VmExecutor.h) steps `vm::State`s of a model program —
///     a work item is a (state, thread) pair;
///   * rt::ReplayExecutor (rt/ReplayExecutor.h) deterministically replays
///     a schedule prefix on the fiber runtime — a work item is the prefix
///     plus the forced next thread, and each executor instance owns its
///     own Scheduler so prefixes replay concurrently on worker threads.
///
/// The Ctx hooks an executor drives (provided by the engine drivers):
///
///   bool claimItem(uint64_t digest);  // (state, thread) work-item cache;
///                                     // true if new (ZING pruning mode)
///   void noteState(uint64_t digest);  // visited-state / fingerprint set
///   void noteTerminal(uint64_t digest); // terminal fingerprint (rt only)
///   void countSteps(uint64_t n);      // n more scheduler/VM steps ran
///   void branch(WorkItem &&item);     // nonpreempting: same bound
///   void defer(WorkItem &&item);      // preempting: bound c + 1
///   void recordBug(Bug bug);          // Preemptions overwritten with the
///                                     // current bound by the driver
///   void endExecution(const ExecutionFacts &facts);
///   unsigned bound();                 // current preemption bound
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_EXECUTOR_H
#define ICB_SEARCH_EXECUTOR_H

#include <cstdint>

namespace icb::search {

/// What an executor reports when one execution finishes.
struct ExecutionFacts {
  uint64_t Steps = 0;    ///< Length of the execution (K).
  uint64_t Blocking = 0; ///< Blocking operations executed (B).
  /// Threads used; 0 means "not tracked" (the model VM does not report
  /// it) and is excluded from the ThreadsPerExecution distribution.
  unsigned ThreadsUsed = 0;
  /// Residual schedule-space mass of the finished chain (the work item's
  /// mass minus everything split off to published children along the
  /// way), credited by the driver to EstMassPerBound — see
  /// obs::EstimateOne. Zero when the estimator is dark (ICB_NO_METRICS)
  /// or for facts built by paths that predate it (defaulted).
  uint64_t EstMass = 0;
};

} // namespace icb::search

#endif // ICB_SEARCH_EXECUTOR_H
