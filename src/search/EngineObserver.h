//===- search/EngineObserver.h - Engine progress/checkpoint seam *- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seam between the ICB drivers and the session subsystem: an untyped
/// snapshot of the engine's frontier plus an observer interface the
/// drivers poll. The drivers stay ignorant of files, JSON, and signals —
/// session::CheckpointSink implements the observer and owns persistence.
///
/// A work item is saved uniformly as (schedule prefix, next thread),
/// whichever executor produced it: the stateless executor's PrefixItem is
/// exactly that pair, and the model-VM executor rebuilds its (state,
/// thread) item by replaying the prefix through the interpreter from the
/// initial state. That keeps checkpoints executor-portable in format even
/// though a checkpoint only ever resumes onto the executor that wrote it.
///
/// Snapshots are taken at *safe points* only, where the snapshot plus the
/// already-accumulated statistics describe the run exactly:
///   * sequential driver: between work-item chains (the local
///     nonpreempting stack is empty, so the frontier is just the two FIFO
///     queues) — periodic checkpoints are cheap and frequent;
///   * parallel driver: at bound barriers (periodic), and mid-bound on a
///     cooperative stop after the pool joins and the deques/stripes are
///     drained into one consistent frontier.
/// Re-running the work left of a safe point reproduces an uninterrupted
/// run's results exactly: sequentially because queue order is preserved,
/// in parallel because the drivers' merges are commutative and bug
/// reports canonical (see IcbEngine.h).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_ENGINEOBSERVER_H
#define ICB_SEARCH_ENGINEOBSERVER_H

#include "obs/Metrics.h"
#include "obs/Progress.h"
#include "search/SearchTypes.h"
#include "support/Stats.h"
#include <cstdint>
#include <string>
#include <vector>

namespace icb::search {

// SavedWorkItem — the executor-neutral checkpoint/wire form of one work
// item — lives in SearchTypes.h so results (SearchResult's lease output)
// and snapshots share one definition.

/// A consistent safe-point image of one ICB driver. `Final` snapshots
/// describe a run that ended on its own (exhausted, limit, first bug) and
/// carry only the finished stats and bugs; resumable snapshots add the
/// frontier queues, the visited-digest sets, and the coverage-sampler
/// cursor needed to continue to results identical to an uninterrupted
/// run's.
struct EngineSnapshot {
  unsigned Bound = 0;
  bool Final = false;
  std::vector<SavedWorkItem> CurrentQueue; ///< This bound's remaining items.
  std::vector<SavedWorkItem> NextQueue;    ///< Deferred to bound + 1.
  SearchStats Stats;
  CoverageSamplerState Sampler;
  std::vector<uint64_t> SeenDigests;
  std::vector<uint64_t> TerminalDigests;
  std::vector<uint64_t> ItemDigests;
  /// Sequential non-canonical mode: discovery order (restoring re-adds in
  /// order, reproducing the historical report exactly). Canonical modes:
  /// (kind, message) order.
  std::vector<Bug> Bugs;
  /// Observability totals so far (empty when the run has no registry).
  /// Restored on resume so a resumed run's work-derived counters match an
  /// uninterrupted run's.
  obs::MetricsSnapshot Metrics;
};

/// Driver-side hooks. All methods are called from the driving thread only
/// (the sequential loop, or the parallel driver between/after rounds),
/// except stopRequested()/checkpointDue() which workers may poll — session
/// implementations back them with atomics.
class EngineObserver {
public:
  virtual ~EngineObserver() = default;

  /// Polled at safe points with the running execution total; returning
  /// true requests a snapshot now. Implementations typically fire every N
  /// executions since the last snapshot.
  virtual bool checkpointDue(uint64_t /*Executions*/) { return false; }

  /// Cooperative external stop (SIGINT/SIGTERM). The driver finishes
  /// in-flight chains, emits one resumable snapshot, and returns with
  /// SearchResult::Interrupted set.
  virtual bool stopRequested() { return false; }

  /// A safe-point snapshot (periodic, stop-triggered, or final).
  virtual void onCheckpoint(const EngineSnapshot & /*Snap*/) {}

  /// A preemption bound was fully explored (manifest progress).
  virtual void onBoundComplete(const BoundCoverage & /*Snapshot*/) {}

  /// Polled after each execution, possibly by any worker — implementations
  /// must be lock-free (obs::ProgressMeter::due is the intended backing).
  /// Returning true claims a progress tick; the driver follows up with
  /// onProgress from the same thread.
  virtual bool progressDue() { return false; }

  /// A claimed progress tick with a fresh frontier sample. Coarse by
  /// design: counts are read without quiescing the workers, so a sample
  /// is approximate in ways the checkpoint/result paths never are.
  virtual void onProgress(const obs::ProgressSample & /*Sample*/) {}
};

} // namespace icb::search

#endif // ICB_SEARCH_ENGINEOBSERVER_H
