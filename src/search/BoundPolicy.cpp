//===- search/BoundPolicy.cpp - Pluggable scheduling-bound policies -------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "search/BoundPolicy.h"
#include "support/Format.h"
#include <cstdlib>

using namespace icb;
using namespace icb::search;

std::string PreemptionBoundPolicy::spec() const {
  return strFormat("preemption:%u", MaxBound);
}

std::string DelayBoundPolicy::spec() const {
  return strFormat("delay:%u", MaxBound);
}

std::string ThreadVariableBoundPolicy::spec() const {
  if (VarBound)
    return strFormat("thread:%u,variable:%u", MaxThreads, VarBound);
  return strFormat("thread:%u", MaxThreads);
}

namespace {

/// Parses a decimal bound value; rejects empty, non-digit, and oversized
/// text so the CLI error table stays precise.
bool parseBoundValue(const std::string &Text, unsigned &Out,
                     std::string *Error) {
  if (Text.empty() ||
      Text.find_first_not_of("0123456789") != std::string::npos) {
    if (Error)
      *Error = strFormat("--bound: '%s' is not a bound value (expected a "
                         "non-negative integer)",
                         Text.c_str());
    return false;
  }
  unsigned long V = std::strtoul(Text.c_str(), nullptr, 10);
  if (V > 1u << 20) {
    if (Error)
      *Error = strFormat("--bound: %s is out of range (max %u)", Text.c_str(),
                         1u << 20);
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

} // namespace

bool icb::search::parseBoundSpec(const std::string &Text, BoundSpec &Out,
                                 std::string *Error) {
  Out = BoundSpec();
  std::string Head = Text;
  std::string Tail;
  size_t Comma = Text.find(',');
  if (Comma != std::string::npos) {
    Head = Text.substr(0, Comma);
    Tail = Text.substr(Comma + 1);
  }

  std::string Name = Head;
  std::string Value;
  size_t Colon = Head.find(':');
  bool HaveValue = Colon != std::string::npos;
  if (HaveValue) {
    Name = Head.substr(0, Colon);
    Value = Head.substr(Colon + 1);
  }

  if (Name != "preemption" && Name != "delay" && Name != "thread") {
    if (Error)
      *Error = strFormat("--bound: unknown policy '%s' (expected "
                         "preemption:K, delay:K, or thread:K[,variable:V])",
                         Name.c_str());
    return false;
  }
  Out.Name = Name;
  if (HaveValue && !parseBoundValue(Value, Out.Bound, Error))
    return false;

  if (Tail.empty())
    return true;
  if (Name != "thread") {
    if (Error)
      *Error = strFormat("--bound: ',%s' — only the thread policy takes a "
                         "variable:V component",
                         Tail.c_str());
    return false;
  }
  size_t TailColon = Tail.find(':');
  std::string TailName =
      TailColon == std::string::npos ? Tail : Tail.substr(0, TailColon);
  if (TailName != "variable" || TailColon == std::string::npos) {
    if (Error)
      *Error = strFormat("--bound: ',%s' — expected ',variable:V' after "
                         "thread:K",
                         Tail.c_str());
    return false;
  }
  if (!parseBoundValue(Tail.substr(TailColon + 1), Out.VarBound, Error))
    return false;
  if (Out.VarBound == 0) {
    if (Error)
      *Error = "--bound: variable:0 is meaningless (omit the component to "
               "disable the variable cap)";
    return false;
  }
  return true;
}

std::string icb::search::formatBoundSpec(const BoundSpec &Spec) {
  if (Spec.Name == "thread" && Spec.VarBound)
    return strFormat("thread:%u,variable:%u", Spec.Bound, Spec.VarBound);
  return strFormat("%s:%u", Spec.Name.c_str(), Spec.Bound);
}

std::unique_ptr<BoundPolicy>
icb::search::makeBoundPolicy(const BoundSpec &Spec) {
  if (Spec.Name == "delay")
    return std::make_unique<DelayBoundPolicy>(Spec.Bound);
  if (Spec.Name == "thread")
    return std::make_unique<ThreadVariableBoundPolicy>(Spec.Bound,
                                                       Spec.VarBound);
  return std::make_unique<PreemptionBoundPolicy>(Spec.Bound);
}
