//===- search/BoundPolicy.h - Pluggable scheduling-bound policies -*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bound as a strategy. The iterative engine explores a frontier of
/// work items bound-by-bound; *which* scheduling resource each bound
/// index budgets — preemptions (the paper), delays (Emmi et al.),
/// threads-and-variables (Bindal–Bansal–Lal, arXiv 1207.2544) — is a
/// `BoundPolicy`. A policy owns the budget state carried by each work
/// item (an opaque, digest-stable `BoundState`), charges each scheduling
/// decision (`chargeFor`), reports the frontier limit (`frontierBound`),
/// and names itself for manifests and reports.
///
/// Digest-stability contract: two work items that a policy would treat
/// identically must produce equal `BoundState::hash()` values, and the
/// empty state must hash to 0 so policies that carry no state (preemption,
/// delay) leave item digests byte-identical to the pre-seam engine.
///
/// Bounded-POR interaction: the sleep-set rules are sound only between
/// executions at the same budget; a deferred alternative crosses into the
/// next bound, so the engine must publish it with the conservative wake
/// set whenever `conservativeWake()` says the budget changed. Under the
/// preemption policy this reduces exactly to the "wake at preemption
/// points" rule of Coons/Musuvathi/McKinley.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_BOUNDPOLICY_H
#define ICB_SEARCH_BOUNDPOLICY_H

#include "support/Hashing.h"
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace icb::search {

/// The budget state a policy carries on each work item. Opaque to the
/// engine: only the owning policy reads or writes the sets. Both vectors
/// are kept sorted so equal sets hash equally regardless of the order
/// decisions were charged in.
struct BoundState {
  std::vector<uint32_t> Threads; ///< Thread budget (thread policy).
  std::vector<uint64_t> Vars;    ///< Variable budget (variable policy).

  bool empty() const { return Threads.empty() && Vars.empty(); }

  /// Digest contribution. The empty state hashes to 0 — engines mix the
  /// hash into item digests only when non-zero, keeping stateless
  /// policies (preemption, delay) byte-identical to the pre-seam digests.
  uint64_t hash() const {
    if (empty())
      return 0;
    uint64_t H = hashMix(0x9e3779b97f4a7c15ull);
    for (uint32_t T : Threads)
      H = hashCombine(H, T);
    H = hashCombine(H, 0xb0u); // Section separator.
    for (uint64_t V : Vars)
      H = hashCombine(H, V);
    return H;
  }

  bool operator==(const BoundState &O) const {
    return Threads == O.Threads && Vars == O.Vars;
  }
};

/// The resource families a policy can budget.
enum class BoundKind {
  Preemption,     ///< PLDI'07: non-yield context switches.
  Delay,          ///< Delay bounding: every deviation from the default.
  ThreadVariable, ///< Bindal–Bansal–Lal thread + variable composition.
};

/// How an alternative scheduling decision deviates from the default
/// continuation at one scheduling point.
enum class DecisionKind {
  FreeSwitch, ///< The running thread yielded/blocked; any pick is free.
  Preemption, ///< The running thread was still enabled and is descheduled.
};

/// One alternative the engine is about to publish. All alternatives at a
/// scheduling point share one Decision: the charge keys on what was
/// interrupted, not on which thread runs instead.
struct Decision {
  DecisionKind Kind = DecisionKind::FreeSwitch;
  /// The thread being descheduled (meaningful for Preemption decisions).
  uint32_t Preempted = 0;
  /// The variable the *preempted* thread was about to touch, encoded by
  /// the executor (vm::VarRef::encode() / rt pending-op code); 0 when
  /// unknown or when the policy does not budget variables.
  uint64_t Var = 0;
};

/// The verdict on charging one decision against a budget.
enum class ChargeOutcome {
  SameBound, ///< Free under this policy: stays in the current bound.
  NextBound, ///< Consumes one budget unit: defer to the next bound.
  Prune,     ///< Exceeds a hard cap: drop the alternative entirely.
};

/// The seam. One instance per engine run, shared read-only across
/// workers; all methods must be thread-safe (stateless or const).
class BoundPolicy {
public:
  virtual ~BoundPolicy() = default;

  virtual BoundKind kind() const = 0;

  /// Short family name for manifests/checkpoints: "preemption", "delay",
  /// "thread".
  virtual std::string name() const = 0;

  /// Full round-trippable spec, e.g. "preemption:2" or "thread:2,variable:3".
  virtual std::string spec() const = 0;

  /// The frontier limit: bound indices 0..frontierBound() inclusive are
  /// explored; items charged past it wait in vain (the engine stops).
  virtual unsigned frontierBound() const = 0;

  /// Charges one decision taken from the budget \p In. \p Out receives
  /// the successor budget (meaningful for SameBound/NextBound only).
  virtual ChargeOutcome chargeFor(const Decision &D, const BoundState &In,
                                  BoundState &Out) const = 0;

  /// The bounded-POR wake rule: true when publishing this alternative
  /// must use the conservative sleep set because the sleep-set machinery
  /// is unsound across it. A budget charge always crosses bounds; a
  /// preemption additionally breaks the dependence assumptions even when
  /// free under the policy, so both conditions wake.
  bool conservativeWake(const Decision &D, ChargeOutcome O) const {
    return O != ChargeOutcome::SameBound || D.Kind == DecisionKind::Preemption;
  }
};

/// PLDI'07 preemption bounding: free switches are free, each preemption
/// costs one, no carried state. Byte-identical to the pre-seam engine.
class PreemptionBoundPolicy final : public BoundPolicy {
public:
  explicit PreemptionBoundPolicy(unsigned MaxBound) : MaxBound(MaxBound) {}
  BoundKind kind() const override { return BoundKind::Preemption; }
  std::string name() const override { return "preemption"; }
  std::string spec() const override;
  unsigned frontierBound() const override { return MaxBound; }
  ChargeOutcome chargeFor(const Decision &D, const BoundState &In,
                          BoundState &Out) const override {
    Out = In;
    return D.Kind == DecisionKind::Preemption ? ChargeOutcome::NextBound
                                              : ChargeOutcome::SameBound;
  }

private:
  unsigned MaxBound;
};

/// Delay bounding: every deviation from the default continuation — free
/// or preemptive — costs one delay. The frontier at bound d holds every
/// schedule reachable with d deviations, a much cheaper frontier per
/// bound than preemption's on wide programs.
class DelayBoundPolicy final : public BoundPolicy {
public:
  explicit DelayBoundPolicy(unsigned MaxBound) : MaxBound(MaxBound) {}
  BoundKind kind() const override { return BoundKind::Delay; }
  std::string name() const override { return "delay"; }
  std::string spec() const override;
  unsigned frontierBound() const override { return MaxBound; }
  ChargeOutcome chargeFor(const Decision &, const BoundState &In,
                          BoundState &Out) const override {
    Out = In;
    return ChargeOutcome::NextBound;
  }

private:
  unsigned MaxBound;
};

/// Bindal–Bansal–Lal composition: the first preemption *of* each distinct
/// thread costs one (bound index = number of budgeted threads); every
/// preempted variable access is recorded and the item is pruned outright
/// once more than \p VarBound distinct variables have been involved.
/// VarBound == 0 disables the variable cap.
class ThreadVariableBoundPolicy final : public BoundPolicy {
public:
  ThreadVariableBoundPolicy(unsigned MaxThreads, unsigned VarBound)
      : MaxThreads(MaxThreads), VarBound(VarBound) {}
  BoundKind kind() const override { return BoundKind::ThreadVariable; }
  std::string name() const override { return "thread"; }
  std::string spec() const override;
  unsigned frontierBound() const override { return MaxThreads; }
  ChargeOutcome chargeFor(const Decision &D, const BoundState &In,
                          BoundState &Out) const override {
    Out = In;
    if (D.Kind != DecisionKind::Preemption)
      return ChargeOutcome::SameBound;
    if (VarBound && D.Var) {
      auto It = std::lower_bound(Out.Vars.begin(), Out.Vars.end(), D.Var);
      if (It == Out.Vars.end() || *It != D.Var) {
        Out.Vars.insert(It, D.Var);
        if (Out.Vars.size() > VarBound)
          return ChargeOutcome::Prune;
      }
    }
    uint32_t Tid = D.Preempted;
    auto It = std::lower_bound(Out.Threads.begin(), Out.Threads.end(), Tid);
    if (It != Out.Threads.end() && *It == Tid)
      return ChargeOutcome::SameBound;
    Out.Threads.insert(It, Tid);
    return ChargeOutcome::NextBound;
  }

private:
  unsigned MaxThreads;
  unsigned VarBound;
};

/// A parsed --bound specification.
struct BoundSpec {
  std::string Name = "preemption";
  unsigned Bound = 4;
  unsigned VarBound = 0;
};

/// Parses `preemption:K`, `delay:K`, or `thread:K[,variable:V]` (a bare
/// family name keeps the default K). On failure writes a usage message to
/// \p Error and returns false.
bool parseBoundSpec(const std::string &Text, BoundSpec &Out,
                    std::string *Error);

/// The canonical round-trip text of \p Spec, e.g. "thread:2,variable:3".
std::string formatBoundSpec(const BoundSpec &Spec);

/// Instantiates the policy \p Spec names. The spec must have parsed.
std::unique_ptr<BoundPolicy> makeBoundPolicy(const BoundSpec &Spec);

} // namespace icb::search

#endif // ICB_SEARCH_BOUNDPOLICY_H
