//===- search/StateCache.h - Hash-based visited-state table -----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ZING-side state cache. Algorithm 1's optional caching keys on whole
/// work items (state, thread); plain DFS caches states. Both use 64-bit
/// canonical hashes rather than full states — at our state counts the
/// collision probability is negligible (documented in DESIGN.md), and it
/// mirrors the hash-compaction ZING itself uses for large models.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SEARCH_STATECACHE_H
#define ICB_SEARCH_STATECACHE_H

#include "support/Hashing.h"
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace icb::search {

/// A set of visited state (or work-item) digests.
class StateCache {
public:
  /// Inserts a digest; returns true if it was new.
  bool insert(uint64_t Digest) { return Table.insert(Digest).second; }

  /// Inserts a (state, thread) work-item digest; returns true if new.
  bool insertWorkItem(uint64_t StateDigest, uint32_t Tid) {
    return insert(hashCombine(StateDigest, Tid));
  }

  bool contains(uint64_t Digest) const { return Table.count(Digest) != 0; }

  uint64_t size() const { return Table.size(); }
  void clear() { Table.clear(); }

  /// All stored digests in unspecified order (checkpoint serialization).
  std::vector<uint64_t> digests() const {
    return std::vector<uint64_t>(Table.begin(), Table.end());
  }

private:
  std::unordered_set<uint64_t> Table;
};

} // namespace icb::search

#endif // ICB_SEARCH_STATECACHE_H
