//===- trace/TraceWriter.cpp - Counterexample pretty-printing -------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceWriter.h"
#include "support/Format.h"

using namespace icb;
using namespace icb::trace;

std::string TraceWriter::render(const std::string &Title,
                                const std::vector<TraceStep> &Steps) {
  unsigned Preemptions = 0;
  unsigned Switches = 0;
  for (const TraceStep &Step : Steps) {
    Preemptions += Step.Preemption ? 1 : 0;
    Switches += Step.ContextSwitch ? 1 : 0;
  }
  std::string Text = strFormat(
      "%s\n  %zu steps, %u context switches (%u preempting, %u "
      "nonpreempting)\n",
      Title.c_str(), Steps.size(), Switches, Preemptions,
      Switches - Preemptions);
  for (size_t I = 0; I != Steps.size(); ++I) {
    const TraceStep &Step = Steps[I];
    const char *Marker = "   ";
    if (Step.Preemption)
      Marker = ">>>"; // Preempting context switch: the interesting ones.
    else if (Step.ContextSwitch)
      Marker = " ->"; // Nonpreempting switch (yield/block/termination).
    Text += strFormat("  %s [%4zu] %-12s %s%s\n", Marker, I,
                      Step.ThreadName.c_str(), Step.Description.c_str(),
                      Step.Blocking ? "  (blocking)" : "");
  }
  return Text;
}
