//===- trace/Fingerprint.h - Happens-before execution digests ---*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4.3: "we use the happens-before relation of an execution ... as
/// a representation for the state at the end of the execution." This module
/// computes a canonical 64-bit digest of an execution's happens-before
/// partial order. Two executions that merely reorder independent steps
/// (i.e. are equivalent in the sense of Section 3.1) receive the same
/// digest, so counting distinct digests counts distinct "states" for the
/// stateless checker's coverage experiments (Figures 5 and 6).
///
/// The digest is computed incrementally: each step is assigned the vector
/// clock of its happens-before predecessors, and the digest is an
/// order-insensitive combination of (thread, operation, variable, clock)
/// event hashes. Per the paper's definition, two steps are dependent iff
/// they are executed by the same thread or access the same synchronization
/// variable.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_TRACE_FINGERPRINT_H
#define ICB_TRACE_FINGERPRINT_H

#include "trace/VectorClock.h"
#include <cstdint>
#include <unordered_map>

namespace icb::trace {

/// Incrementally digests one execution's happens-before relation.
class FingerprintBuilder {
public:
  explicit FingerprintBuilder(unsigned NumThreads);

  /// Records the next step of the execution.
  ///
  /// \param Tid      executing thread.
  /// \param VarCode  stable identity of the accessed shared object.
  /// \param IsSync   true for synchronization variables: the step joins
  ///                 with and updates the variable's clock, creating
  ///                 cross-thread order. Data-variable steps order only
  ///                 within their thread.
  /// \param OpCode   small operation tag (read/write/acquire/...); part of
  ///                 the event identity.
  void addStep(unsigned Tid, uint64_t VarCode, bool IsSync, uint16_t OpCode);

  /// Digest of everything added so far.
  uint64_t digest() const { return Hasher.digest(); }

  /// The current clock of a thread (exposed for the race detector tests).
  const VectorClock &threadClock(unsigned Tid) const {
    ICB_ASSERT(Tid < ThreadClocks.size(), "thread id out of range");
    return ThreadClocks[Tid];
  }

private:
  std::vector<VectorClock> ThreadClocks;
  std::unordered_map<uint64_t, VectorClock> SyncVarClocks;
  icb::StableHasher Hasher;
};

} // namespace icb::trace

#endif // ICB_TRACE_FINGERPRINT_H
