//===- trace/Fingerprint.cpp - Happens-before execution digests -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/Fingerprint.h"

using namespace icb;
using namespace icb::trace;

FingerprintBuilder::FingerprintBuilder(unsigned NumThreads) {
  ThreadClocks.resize(NumThreads, VectorClock(NumThreads));
}

void FingerprintBuilder::addStep(unsigned Tid, uint64_t VarCode, bool IsSync,
                                 uint16_t OpCode) {
  ICB_ASSERT(Tid < ThreadClocks.size(), "thread id out of range");
  VectorClock &Mine = ThreadClocks[Tid];
  if (IsSync) {
    auto It = SyncVarClocks.find(VarCode);
    if (It != SyncVarClocks.end())
      Mine.join(It->second);
  }
  Mine.tick(Tid);
  if (IsSync)
    SyncVarClocks[VarCode] = Mine;

  // The event identity: who, what, where, and its causal past. Because the
  // clock of an event is determined by the partial order alone (not the
  // interleaving), the unordered combination is interleaving-invariant.
  StableHasher Event;
  Event.add(Tid);
  Event.add(VarCode);
  Event.add(OpCode);
  Event.add(IsSync ? 1 : 0);
  Event.add(Mine.hash());
  Hasher.addUnordered(Event.digest());
}
