//===- trace/Schedule.cpp - Recorded thread schedules ---------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/Schedule.h"
#include <sstream>

using namespace icb::trace;

unsigned Schedule::preemptions() const {
  unsigned Count = 0;
  for (const ScheduleEntry &E : Entries)
    Count += E.Preemption ? 1 : 0;
  return Count;
}

unsigned Schedule::contextSwitches() const {
  unsigned Count = 0;
  for (const ScheduleEntry &E : Entries)
    Count += E.ContextSwitch ? 1 : 0;
  return Count;
}

void Schedule::truncate(size_t Len) {
  if (Len < Entries.size())
    Entries.resize(Len);
}

std::string Schedule::str() const {
  std::string Text;
  for (size_t I = 0; I != Entries.size(); ++I) {
    if (I != 0)
      Text += ' ';
    Text += std::to_string(Entries[I].Tid);
    if (Entries[I].Preemption)
      Text += '*';
    else if (Entries[I].ContextSwitch)
      Text += '^';
  }
  return Text;
}

bool Schedule::parse(const std::string &Text, Schedule &Out) {
  // This now guards checkpoint and .icbrepro loading, so it must reject
  // corrupt tokens cleanly rather than truncating them: each token is
  // parsed digit-by-digit (no strtoul — that would accept "+1", " 1",
  // and silently wrap values past ULONG_MAX) and may carry at most one
  // trailing '*' or '^' marker.
  Out = Schedule();
  std::istringstream In(Text);
  std::string Token;
  while (In >> Token) {
    bool Preemption = false;
    bool Switch = false;
    if (Token.back() == '*') {
      Preemption = true;
      Switch = true;
      Token.pop_back();
    } else if (Token.back() == '^') {
      Switch = true;
      Token.pop_back();
    }
    if (Token.empty()) {
      Out = Schedule();
      return false;
    }
    uint64_t Tid = 0;
    for (char C : Token) {
      if (C < '0' || C > '9') {
        Out = Schedule();
        return false;
      }
      Tid = Tid * 10 + static_cast<uint64_t>(C - '0');
      if (Tid > UINT32_MAX) {
        Out = Schedule();
        return false;
      }
    }
    Out.append(static_cast<uint32_t>(Tid), Preemption, Switch);
  }
  return true;
}
