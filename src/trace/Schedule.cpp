//===- trace/Schedule.cpp - Recorded thread schedules ---------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/Schedule.h"
#include <cstdlib>
#include <sstream>

using namespace icb::trace;

unsigned Schedule::preemptions() const {
  unsigned Count = 0;
  for (const ScheduleEntry &E : Entries)
    Count += E.Preemption ? 1 : 0;
  return Count;
}

unsigned Schedule::contextSwitches() const {
  unsigned Count = 0;
  for (const ScheduleEntry &E : Entries)
    Count += E.ContextSwitch ? 1 : 0;
  return Count;
}

void Schedule::truncate(size_t Len) {
  if (Len < Entries.size())
    Entries.resize(Len);
}

std::string Schedule::str() const {
  std::string Text;
  for (size_t I = 0; I != Entries.size(); ++I) {
    if (I != 0)
      Text += ' ';
    Text += std::to_string(Entries[I].Tid);
    if (Entries[I].Preemption)
      Text += '*';
    else if (Entries[I].ContextSwitch)
      Text += '^';
  }
  return Text;
}

bool Schedule::parse(const std::string &Text, Schedule &Out) {
  Out = Schedule();
  std::istringstream In(Text);
  std::string Token;
  while (In >> Token) {
    bool Preemption = false;
    bool Switch = false;
    if (!Token.empty() && Token.back() == '*') {
      Preemption = true;
      Switch = true;
      Token.pop_back();
    } else if (!Token.empty() && Token.back() == '^') {
      Switch = true;
      Token.pop_back();
    }
    if (Token.empty())
      return false;
    char *End = nullptr;
    unsigned long Tid = std::strtoul(Token.c_str(), &End, 10);
    if (End == Token.c_str() || *End != '\0')
      return false;
    Out.append(static_cast<uint32_t>(Tid), Preemption, Switch);
  }
  return true;
}
