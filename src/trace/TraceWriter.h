//===- trace/TraceWriter.h - Counterexample pretty-printing -----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders bug traces the way the paper discusses them: each scheduling
/// decision on its own line, context switches called out, preemptions
/// highlighted (the Dryad discussion in Section 4.2 counts "1 preempting
/// and 6 nonpreempting context switches" — the output makes that count
/// visible at a glance).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_TRACE_TRACEWRITER_H
#define ICB_TRACE_TRACEWRITER_H

#include "trace/Schedule.h"
#include <string>
#include <vector>

namespace icb::trace {

/// One rendered step of a trace: the backend (VM or runtime) supplies the
/// description text, the writer supplies layout.
struct TraceStep {
  uint32_t Tid = 0;
  std::string ThreadName;
  std::string Description; ///< e.g. "lock queueLock" or "storeg pendingIo".
  bool Preemption = false;
  bool ContextSwitch = false;
  bool Blocking = false;
};

/// Formats a full counterexample trace.
class TraceWriter {
public:
  /// \param Title    headline ("assertion failed: ...").
  /// \param Steps    per-step records in execution order.
  static std::string render(const std::string &Title,
                            const std::vector<TraceStep> &Steps);
};

} // namespace icb::trace

#endif // ICB_TRACE_TRACEWRITER_H
