//===- trace/Schedule.h - Recorded thread schedules -------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `Schedule` records the scheduler's choices along one execution: the
/// thread picked at each scheduling point, annotated with whether the
/// switch was preempting (Appendix A's NP definition). Schedules are the
/// replay currency of the stateless checker — a work item of the stateless
/// ICB algorithm is a schedule prefix — and the payload of every bug
/// report.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_TRACE_SCHEDULE_H
#define ICB_TRACE_SCHEDULE_H

#include <cstdint>
#include <string>
#include <vector>

namespace icb::trace {

/// One scheduling decision.
struct ScheduleEntry {
  uint32_t Tid = 0;
  /// True if this choice preempted an enabled running thread.
  bool Preemption = false;
  /// True if this choice switched threads at all (context switch, whether
  /// preempting or nonpreempting).
  bool ContextSwitch = false;
};

/// A sequence of scheduling decisions from the initial state.
class Schedule {
public:
  Schedule() = default;

  void append(uint32_t Tid, bool Preemption, bool ContextSwitch) {
    Entries.push_back({Tid, Preemption, ContextSwitch});
  }

  size_t length() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }
  const ScheduleEntry &entry(size_t I) const { return Entries[I]; }
  const std::vector<ScheduleEntry> &entries() const { return Entries; }

  /// Number of preempting context switches (the paper's NP).
  unsigned preemptions() const;

  /// Number of context switches of either kind.
  unsigned contextSwitches() const;

  /// Truncates to the first \p Len entries.
  void truncate(size_t Len);

  /// Compact text form, e.g. "0 0 1* 1 0^ ..." where '*' marks a
  /// preemption and '^' a nonpreempting switch.
  std::string str() const;

  /// Parses the output of str(); returns false on malformed input.
  static bool parse(const std::string &Text, Schedule &Out);

  friend bool operator==(const Schedule &L, const Schedule &R) {
    return L.Entries.size() == R.Entries.size() &&
           [&] {
             for (size_t I = 0; I != L.Entries.size(); ++I) {
               const ScheduleEntry &A = L.Entries[I];
               const ScheduleEntry &B = R.Entries[I];
               if (A.Tid != B.Tid || A.Preemption != B.Preemption ||
                   A.ContextSwitch != B.ContextSwitch)
                 return false;
             }
             return true;
           }();
  }

private:
  std::vector<ScheduleEntry> Entries;
};

} // namespace icb::trace

#endif // ICB_TRACE_SCHEDULE_H
