//===- trace/VectorClock.h - Vector clocks for happens-before ---*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks over a fixed thread universe. Used by the race detectors
/// (Section 3.1 requires each explored execution be checked for data races)
/// and by the happens-before execution fingerprints that stand in for
/// states on the stateless CHESS side (Section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_TRACE_VECTORCLOCK_H
#define ICB_TRACE_VECTORCLOCK_H

#include "support/Debug.h"
#include "support/Hashing.h"
#include <cstdint>
#include <string>
#include <vector>

namespace icb::trace {

/// A classic vector clock: one logical-time component per thread.
class VectorClock {
public:
  VectorClock() = default;
  explicit VectorClock(unsigned NumThreads) : Clock(NumThreads, 0) {}

  unsigned size() const { return static_cast<unsigned>(Clock.size()); }

  uint32_t get(unsigned Tid) const {
    ICB_ASSERT(Tid < Clock.size(), "vector clock index out of range");
    return Clock[Tid];
  }

  void set(unsigned Tid, uint32_t Value) {
    ICB_ASSERT(Tid < Clock.size(), "vector clock index out of range");
    Clock[Tid] = Value;
  }

  void tick(unsigned Tid) {
    ICB_ASSERT(Tid < Clock.size(), "vector clock index out of range");
    ++Clock[Tid];
  }

  /// Pointwise maximum with \p Other (the classic join on acquire).
  void join(const VectorClock &Other) {
    ICB_ASSERT(Clock.size() == Other.Clock.size(),
               "joining clocks of different widths");
    for (size_t I = 0; I != Clock.size(); ++I)
      if (Other.Clock[I] > Clock[I])
        Clock[I] = Other.Clock[I];
  }

  /// True if this clock is pointwise <= \p Other ("happens before or
  /// equals" for event clocks).
  bool leq(const VectorClock &Other) const {
    ICB_ASSERT(Clock.size() == Other.Clock.size(),
               "comparing clocks of different widths");
    for (size_t I = 0; I != Clock.size(); ++I)
      if (Clock[I] > Other.Clock[I])
        return false;
    return true;
  }

  friend bool operator==(const VectorClock &L, const VectorClock &R) {
    return L.Clock == R.Clock;
  }

  /// Stable digest of the clock contents.
  uint64_t hash() const {
    StableHasher Hasher;
    for (uint32_t Component : Clock)
      Hasher.add(Component);
    return Hasher.digest();
  }

  /// "<1,0,3>" rendering for trace output.
  std::string str() const;

private:
  std::vector<uint32_t> Clock;
};

} // namespace icb::trace

#endif // ICB_TRACE_VECTORCLOCK_H
