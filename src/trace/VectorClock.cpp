//===- trace/VectorClock.cpp - Vector clocks for happens-before -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/VectorClock.h"

using namespace icb::trace;

std::string VectorClock::str() const {
  std::string Text = "<";
  for (size_t I = 0; I != Clock.size(); ++I) {
    if (I != 0)
      Text += ",";
    Text += std::to_string(Clock[I]);
  }
  Text += ">";
  return Text;
}
