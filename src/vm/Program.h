//===- vm/Program.h - Static description of a model program -----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `Program` is the static part of a model: per-thread code, the shared
/// object declarations (globals, locks, events, semaphores), and assert
/// message strings. The dynamic part lives in `State`.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_VM_PROGRAM_H
#define ICB_VM_PROGRAM_H

#include "vm/Ids.h"
#include "vm/Instruction.h"
#include <string>
#include <vector>

namespace icb::vm {

/// Static event properties; the set/reset flag itself lives in State.
struct EventDecl {
  std::string Name;
  bool ManualReset = false; ///< Manual-reset events survive a WaitE.
  bool InitiallySet = false;
};

/// Static semaphore properties.
struct SemaphoreDecl {
  std::string Name;
  int32_t InitialCount = 0;
};

/// Static global (shared data variable) properties.
struct GlobalDecl {
  std::string Name;
  int64_t InitialValue = 0;
};

/// Code of a single model thread.
struct ThreadCode {
  std::string Name;
  std::vector<Instruction> Code;
};

/// A complete closed model program (test driver + library, Section 4.1).
struct Program {
  std::string Name;
  std::vector<GlobalDecl> Globals;
  std::vector<std::string> Locks; ///< Lock names; locks carry no static data.
  std::vector<EventDecl> Events;
  std::vector<SemaphoreDecl> Semaphores;
  std::vector<ThreadCode> Threads;
  std::vector<std::string> Messages; ///< Assert failure messages.

  unsigned numThreads() const { return static_cast<unsigned>(Threads.size()); }

  /// Structural validation: operand ranges, branch targets, terminated
  /// code paths. Returns an empty string on success, else a diagnostic.
  std::string validate() const;

  /// Total instruction count across all threads (the "LOC" surrogate for
  /// model benchmarks in Table 1).
  size_t totalInstructions() const;
};

} // namespace icb::vm

#endif // ICB_VM_PROGRAM_H
