//===- vm/State.h - Dynamic state of a model program ------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit, value-semantics state of a running model: shared globals,
/// sync object states, and per-thread contexts. States are cheap to copy
/// (Algorithm 1's work items snapshot them) and canonically hashable (the
/// ZING-side state cache and the coverage experiments count state hashes).
///
/// Hashing is *incremental*: the canonical 64-bit digest is maintained as
/// an XOR of independently mixed per-slot hashes, updated by the mutation
/// helpers the interpreter uses, so `hash()` is O(1) instead of a full
/// rescan on every step. XOR aggregation is sound because every slot's
/// contribution is salted with its kind and index before mixing, so equal
/// values in different slots contribute different terms; removing a slot's
/// old term and adding its new one is a single symmetric XOR pair.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_VM_STATE_H
#define ICB_VM_STATE_H

#include "support/Hashing.h"
#include "vm/Ids.h"
#include "vm/Program.h"
#include <array>
#include <cstdint>
#include <vector>

namespace icb::vm {

/// Execution status of one thread.
enum class ThreadStatus : uint8_t {
  Runnable, ///< Parked immediately before a shared-access instruction.
  Done,     ///< Executed Halt; never runs again.
};

/// Per-thread dynamic context.
struct ThreadState {
  uint32_t Pc = 0;
  ThreadStatus Status = ThreadStatus::Runnable;
  std::array<int64_t, NumRegisters> Regs{};
};

/// The complete dynamic state. Invariant maintained by the interpreter:
/// every Runnable thread's Pc points at a shared-access instruction (all
/// leading thread-local instructions have already been executed).
///
/// Mutators that change hashed content must go through the set* helpers
/// (shared slots) or bracket their edits with toggleThreadDigest (thread
/// contexts); code that fills the raw fields directly must call rehash()
/// before the digest is read.
class State {
public:
  State() = default;

  std::vector<int64_t> Globals;
  std::vector<ThreadId> LockOwners; ///< InvalidThread when free.
  std::vector<uint8_t> EventSet;    ///< 1 when signaled.
  std::vector<int32_t> SemCounts;
  std::vector<ThreadState> Threads;

  /// Canonical 64-bit digest of the whole state, maintained incrementally
  /// (O(1)). Two states with equal digests are treated as identical by the
  /// state cache (collisions are possible but negligible at our state
  /// counts; see DESIGN.md).
  uint64_t hash() const { return Digest; }

  /// Recomputes the digest with a full rescan; equals hash() whenever the
  /// incremental bookkeeping is intact (asserted by the test suite).
  uint64_t computeHash() const;

  /// Re-initializes the incremental digest after direct field edits.
  void rehash() { Digest = computeHash(); }

  // --- Digest-maintaining mutators (used by the interpreter) --------------

  void setGlobal(size_t I, int64_t Value) {
    Digest ^= slotDigest(SaltGlobal, I, static_cast<uint64_t>(Globals[I]));
    Globals[I] = Value;
    Digest ^= slotDigest(SaltGlobal, I, static_cast<uint64_t>(Value));
  }

  void setLockOwner(size_t I, ThreadId Owner) {
    Digest ^= slotDigest(SaltLock, I, LockOwners[I]);
    LockOwners[I] = Owner;
    Digest ^= slotDigest(SaltLock, I, Owner);
  }

  void setEvent(size_t I, uint8_t Set) {
    Digest ^= slotDigest(SaltEvent, I, EventSet[I]);
    EventSet[I] = Set;
    Digest ^= slotDigest(SaltEvent, I, Set);
  }

  void setSem(size_t I, int32_t Count) {
    Digest ^= slotDigest(
        SaltSem, I, static_cast<uint64_t>(static_cast<int64_t>(SemCounts[I])));
    SemCounts[I] = Count;
    Digest ^= slotDigest(
        SaltSem, I, static_cast<uint64_t>(static_cast<int64_t>(Count)));
  }

  /// XORs thread \p Tid's digest contribution in or out. The interpreter
  /// calls this before and after a step's thread-context edits: the first
  /// call removes the old contribution, the second adds the new one.
  void toggleThreadDigest(ThreadId Tid) { Digest ^= threadDigest(Tid); }

  /// True when every thread has terminated.
  bool allDone() const;

private:
  // Per-kind salts keep equal (index, value) pairs in different slot
  // classes from cancelling each other under XOR.
  static constexpr uint64_t SaltShape = 0x243f6a8885a308d3ULL;
  static constexpr uint64_t SaltGlobal = 0x13198a2e03707344ULL;
  static constexpr uint64_t SaltLock = 0xa4093822299f31d0ULL;
  static constexpr uint64_t SaltEvent = 0x082efa98ec4e6c89ULL;
  static constexpr uint64_t SaltSem = 0x452821e638d01377ULL;
  static constexpr uint64_t SaltThread = 0xbe5466cf34e90c6cULL;

  static uint64_t slotDigest(uint64_t Salt, uint64_t Index, uint64_t Value) {
    return hashMix(hashCombine(hashCombine(Salt, Index), Value));
  }

  uint64_t threadDigest(ThreadId Tid) const;

  uint64_t Digest = 0;
};

bool operator==(const State &L, const State &R);

} // namespace icb::vm

#endif // ICB_VM_STATE_H
