//===- vm/State.h - Dynamic state of a model program ------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit, value-semantics state of a running model: shared globals,
/// sync object states, and per-thread contexts. States are cheap to copy
/// (Algorithm 1's work items snapshot them) and canonically hashable (the
/// ZING-side state cache and the coverage experiments count state hashes).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_VM_STATE_H
#define ICB_VM_STATE_H

#include "vm/Ids.h"
#include "vm/Program.h"
#include <array>
#include <cstdint>
#include <vector>

namespace icb::vm {

/// Execution status of one thread.
enum class ThreadStatus : uint8_t {
  Runnable, ///< Parked immediately before a shared-access instruction.
  Done,     ///< Executed Halt; never runs again.
};

/// Per-thread dynamic context.
struct ThreadState {
  uint32_t Pc = 0;
  ThreadStatus Status = ThreadStatus::Runnable;
  std::array<int64_t, NumRegisters> Regs{};
};

/// The complete dynamic state. Invariant maintained by the interpreter:
/// every Runnable thread's Pc points at a shared-access instruction (all
/// leading thread-local instructions have already been executed).
class State {
public:
  State() = default;

  std::vector<int64_t> Globals;
  std::vector<ThreadId> LockOwners; ///< InvalidThread when free.
  std::vector<uint8_t> EventSet;    ///< 1 when signaled.
  std::vector<int32_t> SemCounts;
  std::vector<ThreadState> Threads;

  /// Canonical 64-bit digest of the whole state. Two states with equal
  /// digests are treated as identical by the state cache (collisions are
  /// possible but negligible at our state counts; see DESIGN.md).
  uint64_t hash() const;

  /// True when every thread has terminated.
  bool allDone() const;

};

bool operator==(const State &L, const State &R);

} // namespace icb::vm

#endif // ICB_VM_STATE_H
