//===- vm/Disassembler.cpp - Human-readable program dumps -----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Disassembler.h"
#include "support/Debug.h"
#include "support/Format.h"

using namespace icb;
using namespace icb::vm;

std::string icb::vm::disassembleInstr(const Program &Prog,
                                      const Instruction &I) {
  auto R = [](int32_t Reg) { return strFormat("r%d", Reg); };
  auto G = [&](int32_t Idx) { return Prog.Globals[Idx].Name; };
  switch (I.Opcode) {
  case Op::Nop:
    return "nop";
  case Op::Imm:
    return strFormat("imm %s, %lld", R(I.A).c_str(),
                     static_cast<long long>(I.Imm));
  case Op::Mov:
    return strFormat("mov %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Mod:
  case Op::Eq:
  case Op::Ne:
  case Op::Lt:
  case Op::Le:
  case Op::And:
  case Op::Or:
    return strFormat("%s %s, %s, %s", opName(I.Opcode), R(I.A).c_str(),
                     R(I.B).c_str(), R(I.C).c_str());
  case Op::Not:
    return strFormat("not %s, %s", R(I.A).c_str(), R(I.B).c_str());
  case Op::Jmp:
    return strFormat("jmp @%d", I.A);
  case Op::Bz:
  case Op::Bnz:
    return strFormat("%s %s, @%d", opName(I.Opcode), R(I.A).c_str(), I.B);
  case Op::Assert:
    return strFormat("assert %s, \"%s\"", R(I.A).c_str(),
                     Prog.Messages[I.MsgId].c_str());
  case Op::Halt:
    return "halt";
  case Op::LoadG:
    return strFormat("loadg %s, %s", R(I.A).c_str(), G(I.B).c_str());
  case Op::StoreG:
    return strFormat("storeg %s, %s", G(I.A).c_str(), R(I.B).c_str());
  case Op::AddG:
    return strFormat("addg %s, %s, %s", R(I.A).c_str(), G(I.B).c_str(),
                     R(I.C).c_str());
  case Op::CasG:
    return strFormat("casg %s, %s, %s, %s", R(I.A).c_str(), G(I.B).c_str(),
                     R(I.C).c_str(), R(static_cast<int32_t>(I.Imm)).c_str());
  case Op::XchgG:
    return strFormat("xchgg %s, %s, %s", R(I.A).c_str(), G(I.B).c_str(),
                     R(I.C).c_str());
  case Op::Lock:
  case Op::Unlock:
    return strFormat("%s %s", opName(I.Opcode), Prog.Locks[I.A].c_str());
  case Op::SetE:
  case Op::ResetE:
  case Op::WaitE:
    return strFormat("%s %s", opName(I.Opcode),
                     Prog.Events[I.A].Name.c_str());
  case Op::SemV:
  case Op::SemP:
    return strFormat("%s %s", opName(I.Opcode),
                     Prog.Semaphores[I.A].Name.c_str());
  case Op::Join:
    return strFormat("join %s", Prog.Threads[I.A].Name.c_str());
  }
  ICB_UNREACHABLE("unknown opcode");
}

std::string icb::vm::disassembleThread(const Program &Prog,
                                       unsigned ThreadIndex) {
  ICB_ASSERT(ThreadIndex < Prog.Threads.size(), "thread index out of range");
  const ThreadCode &Thread = Prog.Threads[ThreadIndex];
  std::string Text = strFormat("thread %u '%s':\n", ThreadIndex,
                               Thread.Name.c_str());
  for (size_t Pc = 0; Pc != Thread.Code.size(); ++Pc)
    Text += strFormat("  %4zu: %s\n", Pc,
                      disassembleInstr(Prog, Thread.Code[Pc]).c_str());
  return Text;
}

std::string icb::vm::disassembleProgram(const Program &Prog) {
  std::string Text = strFormat("program '%s'\n", Prog.Name.c_str());
  for (const GlobalDecl &G : Prog.Globals)
    Text += strFormat("  global %s = %lld\n", G.Name.c_str(),
                      static_cast<long long>(G.InitialValue));
  for (const std::string &L : Prog.Locks)
    Text += strFormat("  lock %s\n", L.c_str());
  for (const EventDecl &E : Prog.Events)
    Text += strFormat("  event %s%s%s\n", E.Name.c_str(),
                      E.ManualReset ? " manual-reset" : " auto-reset",
                      E.InitiallySet ? " (initially set)" : "");
  for (const SemaphoreDecl &S : Prog.Semaphores)
    Text += strFormat("  semaphore %s = %d\n", S.Name.c_str(),
                      S.InitialCount);
  for (unsigned T = 0; T != Prog.Threads.size(); ++T)
    Text += disassembleThread(Prog, T);
  return Text;
}
