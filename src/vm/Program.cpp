//===- vm/Program.cpp - Static description of a model program ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Program.h"
#include "support/Format.h"

using namespace icb;
using namespace icb::vm;

namespace {

/// Validates one instruction of thread \p T at index \p Pc.
std::string validateInstr(const Program &Prog, const ThreadCode &Thread,
                          unsigned T, size_t Pc) {
  const Instruction &I = Thread.Code[Pc];
  auto Fail = [&](const char *What) {
    return strFormat("thread %u ('%s') pc %zu (%s): %s", T,
                     Thread.Name.c_str(), Pc, opName(I.Opcode), What);
  };
  auto RegOk = [](int32_t R) {
    return R >= 0 && R < static_cast<int32_t>(NumRegisters);
  };
  auto TargetOk = [&](int32_t Target) {
    return Target >= 0 && Target < static_cast<int32_t>(Thread.Code.size());
  };
  auto GlobalOk = [&](int32_t G) {
    return G >= 0 && G < static_cast<int32_t>(Prog.Globals.size());
  };

  switch (I.Opcode) {
  case Op::Nop:
  case Op::Halt:
    return "";
  case Op::Imm:
    return RegOk(I.A) ? "" : Fail("bad destination register");
  case Op::Mov:
  case Op::Not:
    if (!RegOk(I.A) || !RegOk(I.B))
      return Fail("bad register operand");
    return "";
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Mod:
  case Op::Eq:
  case Op::Ne:
  case Op::Lt:
  case Op::Le:
  case Op::And:
  case Op::Or:
    if (!RegOk(I.A) || !RegOk(I.B) || !RegOk(I.C))
      return Fail("bad register operand");
    return "";
  case Op::Jmp:
    return TargetOk(I.A) ? "" : Fail("branch target out of range");
  case Op::Bz:
  case Op::Bnz:
    if (!RegOk(I.A))
      return Fail("bad condition register");
    if (!TargetOk(I.B))
      return Fail("branch target out of range");
    return "";
  case Op::Assert:
    if (!RegOk(I.A))
      return Fail("bad condition register");
    if (I.MsgId >= Prog.Messages.size())
      return Fail("assert message id out of range");
    return "";
  case Op::LoadG:
    if (!RegOk(I.A))
      return Fail("bad destination register");
    if (!GlobalOk(I.B))
      return Fail("global index out of range");
    return "";
  case Op::StoreG:
    if (!GlobalOk(I.A))
      return Fail("global index out of range");
    if (!RegOk(I.B))
      return Fail("bad source register");
    return "";
  case Op::AddG:
    if (!RegOk(I.A) || !RegOk(I.C))
      return Fail("bad register operand");
    if (!GlobalOk(I.B))
      return Fail("global index out of range");
    return "";
  case Op::CasG:
    if (!RegOk(I.A) || !RegOk(I.C) ||
        !RegOk(static_cast<int32_t>(I.Imm)))
      return Fail("bad register operand");
    if (!GlobalOk(I.B))
      return Fail("global index out of range");
    return "";
  case Op::XchgG:
    if (!RegOk(I.A) || !RegOk(I.C))
      return Fail("bad register operand");
    if (!GlobalOk(I.B))
      return Fail("global index out of range");
    return "";
  case Op::Lock:
  case Op::Unlock:
    if (I.A < 0 || I.A >= static_cast<int32_t>(Prog.Locks.size()))
      return Fail("lock index out of range");
    return "";
  case Op::SetE:
  case Op::ResetE:
  case Op::WaitE:
    if (I.A < 0 || I.A >= static_cast<int32_t>(Prog.Events.size()))
      return Fail("event index out of range");
    return "";
  case Op::SemV:
  case Op::SemP:
    if (I.A < 0 || I.A >= static_cast<int32_t>(Prog.Semaphores.size()))
      return Fail("semaphore index out of range");
    return "";
  case Op::Join:
    if (I.A < 0 || I.A >= static_cast<int32_t>(Prog.Threads.size()))
      return Fail("join target thread out of range");
    return "";
  }
  return Fail("unknown opcode");
}

} // namespace

std::string Program::validate() const {
  if (Threads.empty())
    return "program has no threads";
  for (unsigned T = 0; T != Threads.size(); ++T) {
    const ThreadCode &Thread = Threads[T];
    if (Thread.Code.empty())
      return strFormat("thread %u ('%s') has no code", T, Thread.Name.c_str());
    // Every thread must end in an unconditional control transfer or Halt so
    // the interpreter cannot run off the end of the code array.
    const Instruction &LastInstr = Thread.Code.back();
    if (LastInstr.Opcode != Op::Halt && LastInstr.Opcode != Op::Jmp)
      return strFormat("thread %u ('%s') does not end with halt or jmp", T,
                       Thread.Name.c_str());
    for (size_t Pc = 0; Pc != Thread.Code.size(); ++Pc) {
      std::string Error = validateInstr(*this, Thread, T, Pc);
      if (!Error.empty())
        return Error;
    }
  }
  return "";
}

size_t Program::totalInstructions() const {
  size_t Total = 0;
  for (const ThreadCode &Thread : Threads)
    Total += Thread.Code.size();
  return Total;
}
