//===- vm/Instruction.cpp - Model VM instruction set ----------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Instruction.h"
#include "support/Debug.h"

using namespace icb::vm;

const char *icb::vm::opName(Op Opcode) {
  switch (Opcode) {
  case Op::Nop:
    return "nop";
  case Op::Imm:
    return "imm";
  case Op::Mov:
    return "mov";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Mod:
    return "mod";
  case Op::Eq:
    return "eq";
  case Op::Ne:
    return "ne";
  case Op::Lt:
    return "lt";
  case Op::Le:
    return "le";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Not:
    return "not";
  case Op::Jmp:
    return "jmp";
  case Op::Bz:
    return "bz";
  case Op::Bnz:
    return "bnz";
  case Op::Assert:
    return "assert";
  case Op::Halt:
    return "halt";
  case Op::LoadG:
    return "loadg";
  case Op::StoreG:
    return "storeg";
  case Op::AddG:
    return "addg";
  case Op::CasG:
    return "casg";
  case Op::XchgG:
    return "xchgg";
  case Op::Unlock:
    return "unlock";
  case Op::SetE:
    return "sete";
  case Op::ResetE:
    return "resete";
  case Op::SemV:
    return "semv";
  case Op::Lock:
    return "lock";
  case Op::WaitE:
    return "waite";
  case Op::SemP:
    return "semp";
  case Op::Join:
    return "join";
  }
  ICB_UNREACHABLE("unknown opcode");
}
