//===- vm/Ids.h - Identifier types for the model VM -------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifier types shared across the ZING-style model VM: thread ids,
/// shared-variable references, and register indices.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_VM_IDS_H
#define ICB_VM_IDS_H

#include <cstdint>

namespace icb::vm {

/// Threads are dense indices into Program::Threads.
using ThreadId = uint32_t;

/// Sentinel for "no thread" (e.g. the last-scheduled thread before the
/// first step of an execution, or a free lock's owner).
inline constexpr ThreadId InvalidThread = ~0u;

/// Number of general-purpose registers per thread.
inline constexpr unsigned NumRegisters = 16;

/// The classes of shared objects a step can touch. `ThreadEnd` models the
/// per-thread termination event of Appendix A (joins synchronize on it).
enum class VarKind : uint8_t {
  None,      ///< The step touched no shared object (should not happen).
  Global,    ///< A shared global data slot.
  Lock,      ///< A mutual-exclusion lock.
  Event,     ///< An auto- or manual-reset event.
  Semaphore, ///< A counting semaphore.
  ThreadEnd, ///< The implicit termination event of a thread (Join target).
};

/// Identifies the single shared object accessed by a step.
struct VarRef {
  VarKind Kind = VarKind::None;
  uint32_t Index = 0;

  friend bool operator==(const VarRef &L, const VarRef &R) {
    return L.Kind == R.Kind && L.Index == R.Index;
  }

  /// Stable encoding for hashing and trace records.
  uint64_t encode() const {
    return (static_cast<uint64_t>(Kind) << 32) | Index;
  }
};

} // namespace icb::vm

#endif // ICB_VM_IDS_H
