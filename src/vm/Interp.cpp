//===- vm/Interp.cpp - Step semantics of the model VM ---------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Interp.h"
#include "support/Debug.h"
#include "support/Format.h"

using namespace icb;
using namespace icb::vm;

Interp::Interp(const Program &Prog) : Prog(Prog) {
  std::string Error = Prog.validate();
  if (!Error.empty())
    fatalError(__FILE__, __LINE__, Error.c_str());
}

namespace {

/// Marks a thread terminated and canonicalizes its context so dead local
/// data never distinguishes states.
void finishThread(const Program &Prog, State &S, ThreadId Tid) {
  ThreadState &Thread = S.Threads[Tid];
  Thread.Status = ThreadStatus::Done;
  Thread.Pc = static_cast<uint32_t>(Prog.Threads[Tid].Code.size());
  Thread.Regs.fill(0);
}

/// Brackets a step's thread-context edits for incremental hashing: the
/// constructor XORs the stepping thread's old digest contribution out, the
/// destructor XORs the new one back in on every exit path.
class ThreadDigestScope {
public:
  ThreadDigestScope(State &S, ThreadId Tid) : S(S), Tid(Tid) {
    S.toggleThreadDigest(Tid);
  }
  ~ThreadDigestScope() { S.toggleThreadDigest(Tid); }
  ThreadDigestScope(const ThreadDigestScope &) = delete;
  ThreadDigestScope &operator=(const ThreadDigestScope &) = delete;

private:
  State &S;
  ThreadId Tid;
};

} // namespace

StepStatus Interp::runLocal(State &S, ThreadId Tid, uint32_t &FailMsgId,
                            std::string &ErrorText) const {
  ThreadState &Thread = S.Threads[Tid];
  const std::vector<Instruction> &Code = Prog.Threads[Tid].Code;
  for (unsigned Budget = 0; Budget != LocalStepLimit; ++Budget) {
    ICB_ASSERT(Thread.Pc < Code.size(), "pc ran past end of thread code");
    const Instruction &I = Code[Thread.Pc];
    if (isSharedAccess(I.Opcode))
      return StepStatus::Ok; // Parked before the next scheduling point.
    auto &R = Thread.Regs;
    switch (I.Opcode) {
    case Op::Nop:
      break;
    case Op::Imm:
      R[I.A] = I.Imm;
      break;
    case Op::Mov:
      R[I.A] = R[I.B];
      break;
    case Op::Add:
      R[I.A] = R[I.B] + R[I.C];
      break;
    case Op::Sub:
      R[I.A] = R[I.B] - R[I.C];
      break;
    case Op::Mul:
      R[I.A] = R[I.B] * R[I.C];
      break;
    case Op::Mod:
      if (R[I.C] == 0) {
        ErrorText = strFormat("thread %u: mod by zero at pc %u", Tid,
                              Thread.Pc);
        return StepStatus::ModelError;
      }
      R[I.A] = R[I.B] % R[I.C];
      break;
    case Op::Eq:
      R[I.A] = R[I.B] == R[I.C];
      break;
    case Op::Ne:
      R[I.A] = R[I.B] != R[I.C];
      break;
    case Op::Lt:
      R[I.A] = R[I.B] < R[I.C];
      break;
    case Op::Le:
      R[I.A] = R[I.B] <= R[I.C];
      break;
    case Op::And:
      R[I.A] = R[I.B] & R[I.C];
      break;
    case Op::Or:
      R[I.A] = R[I.B] | R[I.C];
      break;
    case Op::Not:
      R[I.A] = R[I.B] == 0;
      break;
    case Op::Jmp:
      Thread.Pc = static_cast<uint32_t>(I.A);
      continue; // Branch already set the pc.
    case Op::Bz:
      if (R[I.A] == 0) {
        Thread.Pc = static_cast<uint32_t>(I.B);
        continue;
      }
      break;
    case Op::Bnz:
      if (R[I.A] != 0) {
        Thread.Pc = static_cast<uint32_t>(I.B);
        continue;
      }
      break;
    case Op::Assert:
      if (R[I.A] == 0) {
        FailMsgId = I.MsgId;
        return StepStatus::AssertFailed;
      }
      break;
    case Op::Halt:
      finishThread(Prog, S, Tid);
      return StepStatus::ThreadDone;
    default:
      ICB_UNREACHABLE("shared opcode reached local execution loop");
    }
    ++Thread.Pc;
  }
  ErrorText = strFormat(
      "thread %u: executed %u local instructions without reaching a shared "
      "access or halt (runaway local loop)",
      Tid, LocalStepLimit);
  return StepStatus::ModelError;
}

State Interp::initialState() const {
  State S;
  S.Globals.reserve(Prog.Globals.size());
  for (const GlobalDecl &G : Prog.Globals)
    S.Globals.push_back(G.InitialValue);
  S.LockOwners.assign(Prog.Locks.size(), InvalidThread);
  S.EventSet.reserve(Prog.Events.size());
  for (const EventDecl &E : Prog.Events)
    S.EventSet.push_back(E.InitiallySet ? 1 : 0);
  S.SemCounts.reserve(Prog.Semaphores.size());
  for (const SemaphoreDecl &Sem : Prog.Semaphores)
    S.SemCounts.push_back(Sem.InitialCount);
  S.Threads.resize(Prog.Threads.size());

  // Park every thread at its first shared access. A failing assert or a
  // model error before the first scheduling point is a bug in the model's
  // sequential prefix; surface it loudly rather than during search.
  for (ThreadId Tid = 0; Tid != S.Threads.size(); ++Tid) {
    uint32_t MsgId = 0;
    std::string ErrorText;
    StepStatus Status = runLocal(S, Tid, MsgId, ErrorText);
    if (Status == StepStatus::AssertFailed)
      fatalError(__FILE__, __LINE__,
                 "assert failed in a thread's local prefix before its first "
                 "shared access");
    if (Status == StepStatus::ModelError)
      fatalError(__FILE__, __LINE__, ErrorText.c_str());
  }
  S.rehash(); // Initialize the incremental digest over the final contents.
  return S;
}

bool Interp::isEnabled(const State &S, ThreadId Tid) const {
  ICB_ASSERT(Tid < S.Threads.size(), "thread id out of range");
  const ThreadState &Thread = S.Threads[Tid];
  if (Thread.Status != ThreadStatus::Runnable)
    return false;
  const Instruction &I = Prog.Threads[Tid].Code[Thread.Pc];
  ICB_ASSERT(isSharedAccess(I.Opcode),
             "runnable thread not parked at a shared access");
  switch (I.Opcode) {
  case Op::Lock:
    // A thread that re-acquires a lock it already holds self-deadlocks;
    // modeling it as permanently blocked lets deadlock detection flag it.
    return S.LockOwners[I.A] == InvalidThread;
  case Op::WaitE:
    return S.EventSet[I.A] != 0;
  case Op::SemP:
    return S.SemCounts[I.A] > 0;
  case Op::Join:
    return S.Threads[I.A].Status == ThreadStatus::Done;
  default:
    return true;
  }
}

std::vector<ThreadId> Interp::enabledThreads(const State &S) const {
  std::vector<ThreadId> Enabled;
  for (ThreadId Tid = 0; Tid != S.Threads.size(); ++Tid)
    if (isEnabled(S, Tid))
      Enabled.push_back(Tid);
  return Enabled;
}

VarRef Interp::nextVar(const State &S, ThreadId Tid) const {
  const ThreadState &Thread = S.Threads[Tid];
  ICB_ASSERT(Thread.Status == ThreadStatus::Runnable,
             "nextVar on a terminated thread");
  const Instruction &I = Prog.Threads[Tid].Code[Thread.Pc];
  switch (I.Opcode) {
  case Op::LoadG:
  case Op::AddG:
  case Op::CasG:
  case Op::XchgG:
    return {VarKind::Global, static_cast<uint32_t>(I.B)};
  case Op::StoreG:
    return {VarKind::Global, static_cast<uint32_t>(I.A)};
  case Op::Lock:
  case Op::Unlock:
    return {VarKind::Lock, static_cast<uint32_t>(I.A)};
  case Op::SetE:
  case Op::ResetE:
  case Op::WaitE:
    return {VarKind::Event, static_cast<uint32_t>(I.A)};
  case Op::SemV:
  case Op::SemP:
    return {VarKind::Semaphore, static_cast<uint32_t>(I.A)};
  case Op::Join:
    return {VarKind::ThreadEnd, static_cast<uint32_t>(I.A)};
  default:
    ICB_UNREACHABLE("runnable thread not parked at a shared access");
  }
}

StepResult Interp::step(State &S, ThreadId Tid) const {
  ICB_ASSERT(isEnabled(S, Tid), "step on a disabled thread");
  ThreadState &Thread = S.Threads[Tid];
  const Instruction &I = Prog.Threads[Tid].Code[Thread.Pc];
  StepResult Result;
  Result.Tid = Tid;
  Result.Var = nextVar(S, Tid);
  Result.WasBlockingOp = isPotentiallyBlocking(I.Opcode);

  // All thread-context edits below (registers, pc, status — including the
  // ones runLocal makes) happen inside this scope, which keeps the state
  // digest incremental; shared slots go through the set* helpers.
  ThreadDigestScope DigestScope(S, Tid);

  auto &R = Thread.Regs;
  switch (I.Opcode) {
  case Op::LoadG:
    R[I.A] = S.Globals[I.B];
    break;
  case Op::StoreG:
    S.setGlobal(I.A, R[I.B]);
    break;
  case Op::AddG:
    S.setGlobal(I.B, S.Globals[I.B] + R[I.C]);
    R[I.A] = S.Globals[I.B];
    break;
  case Op::CasG:
    if (S.Globals[I.B] == R[I.C]) {
      S.setGlobal(I.B, R[I.Imm]);
      R[I.A] = 1;
    } else {
      R[I.A] = 0;
    }
    break;
  case Op::XchgG: {
    int64_t Old = S.Globals[I.B];
    S.setGlobal(I.B, R[I.C]);
    R[I.A] = Old;
    break;
  }
  case Op::Lock:
    S.setLockOwner(I.A, Tid);
    break;
  case Op::Unlock:
    if (S.LockOwners[I.A] != Tid) {
      Result.Status = StepStatus::ModelError;
      Result.ModelErrorText = strFormat(
          "thread %u: unlock of lock '%s' not held by it", Tid,
          Prog.Locks[I.A].c_str());
      return Result;
    }
    S.setLockOwner(I.A, InvalidThread);
    break;
  case Op::SetE:
    S.setEvent(I.A, 1);
    break;
  case Op::ResetE:
    S.setEvent(I.A, 0);
    break;
  case Op::WaitE:
    if (!Prog.Events[I.A].ManualReset)
      S.setEvent(I.A, 0); // Auto-reset events are consumed by the waiter.
    break;
  case Op::SemV:
    S.setSem(I.A, S.SemCounts[I.A] + 1);
    break;
  case Op::SemP:
    S.setSem(I.A, S.SemCounts[I.A] - 1);
    break;
  case Op::Join:
    break; // The join itself has no effect beyond the enabledness guard.
  default:
    ICB_UNREACHABLE("step on a local instruction");
  }
  ++Thread.Pc;

  uint32_t MsgId = 0;
  std::string ErrorText;
  StepStatus LocalStatus = runLocal(S, Tid, MsgId, ErrorText);
  switch (LocalStatus) {
  case StepStatus::Ok:
    Result.Status = StepStatus::Ok;
    break;
  case StepStatus::ThreadDone:
    Result.Status = StepStatus::ThreadDone;
    break;
  case StepStatus::AssertFailed:
    Result.Status = StepStatus::AssertFailed;
    Result.MsgId = MsgId;
    break;
  case StepStatus::ModelError:
    Result.Status = StepStatus::ModelError;
    Result.ModelErrorText = std::move(ErrorText);
    break;
  }
  return Result;
}
