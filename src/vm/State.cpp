//===- vm/State.cpp - Dynamic state of a model program --------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/State.h"
#include "support/Hashing.h"

using namespace icb;
using namespace icb::vm;

uint64_t State::threadDigest(ThreadId Tid) const {
  const ThreadState &Thread = Threads[Tid];
  uint64_t H = hashCombine(SaltThread, Tid);
  H = hashCombine(H, Thread.Pc);
  H = hashCombine(H, static_cast<uint64_t>(Thread.Status));
  // Registers of terminated threads are zeroed by the interpreter, so
  // hashing them never distinguishes states that differ only in dead
  // local data.
  for (int64_t Reg : Thread.Regs)
    H = hashCombine(H, static_cast<uint64_t>(Reg));
  return hashMix(H);
}

uint64_t State::computeHash() const {
  // The shape term pins the vector sizes (all states of one program share
  // them, but it keeps digests of differently-shaped states apart); every
  // slot then contributes one independently mixed XOR term.
  uint64_t D = hashCombine(SaltShape, Globals.size());
  D = hashCombine(D, LockOwners.size());
  D = hashCombine(D, EventSet.size());
  D = hashCombine(D, SemCounts.size());
  D = hashCombine(D, Threads.size());
  for (size_t I = 0; I != Globals.size(); ++I)
    D ^= slotDigest(SaltGlobal, I, static_cast<uint64_t>(Globals[I]));
  for (size_t I = 0; I != LockOwners.size(); ++I)
    D ^= slotDigest(SaltLock, I, LockOwners[I]);
  for (size_t I = 0; I != EventSet.size(); ++I)
    D ^= slotDigest(SaltEvent, I, EventSet[I]);
  for (size_t I = 0; I != SemCounts.size(); ++I)
    D ^= slotDigest(
        SaltSem, I, static_cast<uint64_t>(static_cast<int64_t>(SemCounts[I])));
  for (ThreadId Tid = 0; Tid != Threads.size(); ++Tid)
    D ^= threadDigest(Tid);
  return D;
}

bool State::allDone() const {
  for (const ThreadState &Thread : Threads)
    if (Thread.Status != ThreadStatus::Done)
      return false;
  return true;
}

bool icb::vm::operator==(const State &L, const State &R) {
  if (L.Globals != R.Globals || L.LockOwners != R.LockOwners ||
      L.EventSet != R.EventSet || L.SemCounts != R.SemCounts)
    return false;
  if (L.Threads.size() != R.Threads.size())
    return false;
  for (size_t I = 0; I != L.Threads.size(); ++I) {
    const ThreadState &A = L.Threads[I];
    const ThreadState &B = R.Threads[I];
    if (A.Pc != B.Pc || A.Status != B.Status || A.Regs != B.Regs)
      return false;
  }
  return true;
}
