//===- vm/State.cpp - Dynamic state of a model program --------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/State.h"
#include "support/Hashing.h"

using namespace icb;
using namespace icb::vm;

uint64_t State::hash() const {
  StableHasher Hasher;
  for (int64_t Value : Globals)
    Hasher.add(static_cast<uint64_t>(Value));
  for (ThreadId Owner : LockOwners)
    Hasher.add(Owner);
  for (uint8_t Set : EventSet)
    Hasher.add(Set);
  for (int32_t Count : SemCounts)
    Hasher.add(static_cast<uint64_t>(static_cast<int64_t>(Count)));
  for (const ThreadState &Thread : Threads) {
    Hasher.add(Thread.Pc);
    Hasher.add(static_cast<uint64_t>(Thread.Status));
    // Registers of terminated threads are zeroed by the interpreter, so
    // hashing them never distinguishes states that differ only in dead
    // local data.
    for (int64_t Reg : Thread.Regs)
      Hasher.add(static_cast<uint64_t>(Reg));
  }
  return Hasher.digest();
}

bool State::allDone() const {
  for (const ThreadState &Thread : Threads)
    if (Thread.Status != ThreadStatus::Done)
      return false;
  return true;
}

bool icb::vm::operator==(const State &L, const State &R) {
  if (L.Globals != R.Globals || L.LockOwners != R.LockOwners ||
      L.EventSet != R.EventSet || L.SemCounts != R.SemCounts)
    return false;
  if (L.Threads.size() != R.Threads.size())
    return false;
  for (size_t I = 0; I != L.Threads.size(); ++I) {
    const ThreadState &A = L.Threads[I];
    const ThreadState &B = R.Threads[I];
    if (A.Pc != B.Pc || A.Status != B.Status || A.Regs != B.Regs)
      return false;
  }
  return true;
}
