//===- vm/Disassembler.h - Human-readable program dumps ---------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders model programs and instructions with symbolic names; used by
/// trace pretty-printing and the model_explore example.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_VM_DISASSEMBLER_H
#define ICB_VM_DISASSEMBLER_H

#include "vm/Program.h"
#include <string>

namespace icb::vm {

/// Formats one instruction of \p Prog with symbolic operand names.
std::string disassembleInstr(const Program &Prog, const Instruction &I);

/// Formats one whole thread: "pc: instr" lines.
std::string disassembleThread(const Program &Prog, unsigned ThreadIndex);

/// Formats the whole program: declarations followed by each thread.
std::string disassembleProgram(const Program &Prog);

} // namespace icb::vm

#endif // ICB_VM_DISASSEMBLER_H
