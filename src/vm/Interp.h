//===- vm/Interp.h - Step semantics of the model VM -------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter defines the transition system the search strategies
/// explore: `initialState()`, `enabled()`, and `step()`. A step executes
/// exactly one shared-access instruction (the paper's unit of scheduling)
/// and then runs the thread's local instructions until it parks at the next
/// shared access or terminates. Scheduling points therefore sit immediately
/// *before* shared accesses, and `enabled()` is computable without running
/// any thread — each Runnable thread's pending operation is its parked
/// instruction.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_VM_INTERP_H
#define ICB_VM_INTERP_H

#include "vm/Program.h"
#include "vm/State.h"
#include <string>
#include <vector>

namespace icb::vm {

/// Outcome of one step.
enum class StepStatus : uint8_t {
  Ok,           ///< Step completed; thread parked at next shared access.
  ThreadDone,   ///< Step completed and the thread reached Halt.
  AssertFailed, ///< An Assert with a false condition executed.
  ModelError,   ///< The model itself is ill-formed (unlock of an unheld
                ///< lock, division by zero, runaway local loop).
};

/// Everything a search strategy needs to know about an executed step.
struct StepResult {
  StepStatus Status = StepStatus::Ok;
  ThreadId Tid = InvalidThread;
  VarRef Var;                ///< The shared object the step accessed.
  bool WasBlockingOp = false; ///< Executed a potentially-blocking opcode.
  uint32_t MsgId = 0;         ///< Valid when Status == AssertFailed.
  std::string ModelErrorText; ///< Valid when Status == ModelError.
};

/// Interprets a fixed Program over explicit States.
class Interp {
public:
  explicit Interp(const Program &Prog);

  const Program &program() const { return Prog; }

  /// Builds the initial state: declared initial values, every thread parked
  /// at its first shared-access instruction (threads whose code is entirely
  /// local terminate immediately).
  State initialState() const;

  /// True if \p Tid may take a step from \p S: the thread is Runnable and
  /// its pending shared access is not blocked.
  bool isEnabled(const State &S, ThreadId Tid) const;

  /// All enabled threads in ascending id order (deterministic).
  std::vector<ThreadId> enabledThreads(const State &S) const;

  /// Executes one step of \p Tid in place. \p Tid must be enabled.
  StepResult step(State &S, ThreadId Tid) const;

  /// The shared object thread \p Tid will access if scheduled (the paper's
  /// NV(alpha, t)); only meaningful for Runnable threads.
  VarRef nextVar(const State &S, ThreadId Tid) const;

  /// Upper bound on consecutive local instructions before the interpreter
  /// declares a runaway loop (a model whose local code never reaches a
  /// shared access or Halt is a modeling error).
  static constexpr unsigned LocalStepLimit = 100000;

private:
  /// Runs local instructions of \p Tid until it parks at a shared access,
  /// halts, fails an assert, or exhausts the local budget.
  StepStatus runLocal(State &S, ThreadId Tid, uint32_t &FailMsgId,
                      std::string &ErrorText) const;

  const Program &Prog;
};

} // namespace icb::vm

#endif // ICB_VM_INTERP_H
