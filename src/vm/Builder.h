//===- vm/Builder.h - Fluent construction of model programs -----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `ProgramBuilder` and `ThreadBuilder` form the DSL the model benchmarks
/// (Bluetooth, file system, transaction manager, ...) are written in. The
/// builder owns name->index mapping, label fixups, and message interning;
/// `build()` validates the result and aborts on a malformed program, so a
/// successfully built Program is always safe to interpret.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_VM_BUILDER_H
#define ICB_VM_BUILDER_H

#include "vm/Program.h"
#include <memory>
#include <string>
#include <vector>

namespace icb::vm {

/// Typed handle for a general-purpose register (0..NumRegisters-1).
struct Reg {
  uint8_t Id = 0;
};

/// Typed handles for shared objects; returned by ProgramBuilder::add*.
struct GlobalVar {
  int32_t Id = -1;
};
struct LockVar {
  int32_t Id = -1;
};
struct EventVar {
  int32_t Id = -1;
};
struct SemVar {
  int32_t Id = -1;
};

/// Typed handle for a declared thread (Join target).
struct ThreadRef {
  int32_t Id = -1;
};

/// Forward-referencable code location within one thread.
struct Label {
  uint32_t Id = ~0u;
};

class ProgramBuilder;

/// Emits instructions for one model thread.
class ThreadBuilder {
public:
  ThreadRef ref() const { return {static_cast<int32_t>(Index)}; }

  // --- Labels -------------------------------------------------------------
  Label newLabel();
  void bind(Label L);

  // --- Thread-local instructions ------------------------------------------
  void nop();
  void imm(Reg Dst, int64_t Value);
  void mov(Reg Dst, Reg Src);
  void add(Reg Dst, Reg L, Reg R);
  void sub(Reg Dst, Reg L, Reg R);
  void mul(Reg Dst, Reg L, Reg R);
  void mod(Reg Dst, Reg L, Reg R);
  void eq(Reg Dst, Reg L, Reg R);
  void ne(Reg Dst, Reg L, Reg R);
  void lt(Reg Dst, Reg L, Reg R);
  void le(Reg Dst, Reg L, Reg R);
  void bitAnd(Reg Dst, Reg L, Reg R);
  void bitOr(Reg Dst, Reg L, Reg R);
  void logicalNot(Reg Dst, Reg Src);
  void jmp(Label Target);
  void bz(Reg Cond, Label Target);
  void bnz(Reg Cond, Label Target);
  void assertTrue(Reg Cond, const std::string &Message);
  void halt();

  // --- Shared accesses ------------------------------------------------------
  void loadG(Reg Dst, GlobalVar G);
  void storeG(GlobalVar G, Reg Src);
  /// Atomic fetch-add; Dst receives the post-add value.
  void addG(Reg Dst, GlobalVar G, Reg Delta);
  /// Atomic compare-and-swap; Ok receives 1 on success.
  void casG(Reg Ok, GlobalVar G, Reg Expected, Reg Replacement);
  /// Atomic exchange; Old receives the previous value.
  void xchgG(Reg Old, GlobalVar G, Reg NewValue);
  void lock(LockVar M);
  void unlock(LockVar M);
  void setE(EventVar E);
  void resetE(EventVar E);
  void waitE(EventVar E);
  void semP(SemVar S);
  void semV(SemVar S);
  void join(ThreadRef T);

  // --- Conveniences ---------------------------------------------------------
  /// Globals[G] = Value, via a scratch register (one shared access).
  void storeImm(GlobalVar G, int64_t Value, Reg Scratch);
  /// Non-atomic increment: load, local add, store (two shared accesses, so
  /// a preemption can land between them — deliberately racy).
  void incrNonAtomic(GlobalVar G, Reg Scratch, int64_t Delta = 1);
  /// Asserts Globals[G] == Value (one shared access plus a local check).
  void assertGlobalEq(GlobalVar G, int64_t Value, Reg Scratch, Reg Scratch2,
                      const std::string &Message);

  /// Current instruction count (useful when composing code fragments).
  size_t codeSize() const { return Code.size(); }

private:
  friend class ProgramBuilder;
  ThreadBuilder(ProgramBuilder &Parent, size_t Index)
      : Parent(Parent), Index(Index) {}

  void emit(Instruction I);
  void emitBranch(Op Opcode, Reg Cond, Label Target);
  /// Resolves label fixups and returns the finished code.
  std::vector<Instruction> finish(const std::string &ThreadName);

  ProgramBuilder &Parent;
  size_t Index;
  std::vector<Instruction> Code;
  std::vector<int32_t> LabelTargets; ///< -1 while unbound.
  struct Fixup {
    size_t InstrIndex;
    bool InOperandB; ///< Branch target lives in B (Bz/Bnz) or A (Jmp).
    uint32_t LabelId;
  };
  std::vector<Fixup> Fixups;
};

/// Builds a complete Program.
class ProgramBuilder {
public:
  explicit ProgramBuilder(std::string Name);
  ~ProgramBuilder();

  ProgramBuilder(const ProgramBuilder &) = delete;
  ProgramBuilder &operator=(const ProgramBuilder &) = delete;

  GlobalVar addGlobal(const std::string &Name, int64_t InitialValue = 0);
  LockVar addLock(const std::string &Name);
  EventVar addEvent(const std::string &Name, bool ManualReset = false,
                    bool InitiallySet = false);
  SemVar addSemaphore(const std::string &Name, int32_t InitialCount);

  /// Declares a new thread; the returned builder stays valid until build().
  ThreadBuilder &addThread(const std::string &Name);

  /// Finalizes: resolves labels, validates, aborts on malformed programs.
  Program build();

private:
  friend class ThreadBuilder;
  uint32_t internMessage(const std::string &Message);

  Program Prog;
  std::vector<std::unique_ptr<ThreadBuilder>> Builders;
  bool Built = false;
};

} // namespace icb::vm

#endif // ICB_VM_BUILDER_H
