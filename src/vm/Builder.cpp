//===- vm/Builder.cpp - Fluent construction of model programs -------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Builder.h"
#include "support/Debug.h"
#include "support/Format.h"

using namespace icb;
using namespace icb::vm;

//===----------------------------------------------------------------------===//
// ThreadBuilder
//===----------------------------------------------------------------------===//

void ThreadBuilder::emit(Instruction I) {
  ICB_ASSERT(!Parent.Built, "emitting into an already-built program");
  Code.push_back(I);
}

Label ThreadBuilder::newLabel() {
  Label L{static_cast<uint32_t>(LabelTargets.size())};
  LabelTargets.push_back(-1);
  return L;
}

void ThreadBuilder::bind(Label L) {
  ICB_ASSERT(L.Id < LabelTargets.size(), "bind of undeclared label");
  ICB_ASSERT(LabelTargets[L.Id] == -1, "label bound twice");
  LabelTargets[L.Id] = static_cast<int32_t>(Code.size());
}

void ThreadBuilder::nop() { emit({Op::Nop, 0, 0, 0, 0, 0}); }

void ThreadBuilder::imm(Reg Dst, int64_t Value) {
  emit({Op::Imm, Dst.Id, 0, 0, Value, 0});
}

void ThreadBuilder::mov(Reg Dst, Reg Src) {
  emit({Op::Mov, Dst.Id, Src.Id, 0, 0, 0});
}

void ThreadBuilder::add(Reg Dst, Reg L, Reg R) {
  emit({Op::Add, Dst.Id, L.Id, R.Id, 0, 0});
}

void ThreadBuilder::sub(Reg Dst, Reg L, Reg R) {
  emit({Op::Sub, Dst.Id, L.Id, R.Id, 0, 0});
}

void ThreadBuilder::mul(Reg Dst, Reg L, Reg R) {
  emit({Op::Mul, Dst.Id, L.Id, R.Id, 0, 0});
}

void ThreadBuilder::mod(Reg Dst, Reg L, Reg R) {
  emit({Op::Mod, Dst.Id, L.Id, R.Id, 0, 0});
}

void ThreadBuilder::eq(Reg Dst, Reg L, Reg R) {
  emit({Op::Eq, Dst.Id, L.Id, R.Id, 0, 0});
}

void ThreadBuilder::ne(Reg Dst, Reg L, Reg R) {
  emit({Op::Ne, Dst.Id, L.Id, R.Id, 0, 0});
}

void ThreadBuilder::lt(Reg Dst, Reg L, Reg R) {
  emit({Op::Lt, Dst.Id, L.Id, R.Id, 0, 0});
}

void ThreadBuilder::le(Reg Dst, Reg L, Reg R) {
  emit({Op::Le, Dst.Id, L.Id, R.Id, 0, 0});
}

void ThreadBuilder::bitAnd(Reg Dst, Reg L, Reg R) {
  emit({Op::And, Dst.Id, L.Id, R.Id, 0, 0});
}

void ThreadBuilder::bitOr(Reg Dst, Reg L, Reg R) {
  emit({Op::Or, Dst.Id, L.Id, R.Id, 0, 0});
}

void ThreadBuilder::logicalNot(Reg Dst, Reg Src) {
  emit({Op::Not, Dst.Id, Src.Id, 0, 0, 0});
}

void ThreadBuilder::jmp(Label Target) {
  ICB_ASSERT(Target.Id < LabelTargets.size(), "jump to undeclared label");
  Fixups.push_back({Code.size(), /*InOperandB=*/false, Target.Id});
  emit({Op::Jmp, -1, 0, 0, 0, 0});
}

void ThreadBuilder::emitBranch(Op Opcode, Reg Cond, Label Target) {
  ICB_ASSERT(Target.Id < LabelTargets.size(), "branch to undeclared label");
  Fixups.push_back({Code.size(), /*InOperandB=*/true, Target.Id});
  emit({Opcode, Cond.Id, -1, 0, 0, 0});
}

void ThreadBuilder::bz(Reg Cond, Label Target) {
  emitBranch(Op::Bz, Cond, Target);
}

void ThreadBuilder::bnz(Reg Cond, Label Target) {
  emitBranch(Op::Bnz, Cond, Target);
}

void ThreadBuilder::assertTrue(Reg Cond, const std::string &Message) {
  uint32_t MsgId = Parent.internMessage(Message);
  emit({Op::Assert, Cond.Id, 0, 0, 0, MsgId});
}

void ThreadBuilder::halt() { emit({Op::Halt, 0, 0, 0, 0, 0}); }

void ThreadBuilder::loadG(Reg Dst, GlobalVar G) {
  ICB_ASSERT(G.Id >= 0, "use of undeclared global");
  emit({Op::LoadG, Dst.Id, G.Id, 0, 0, 0});
}

void ThreadBuilder::storeG(GlobalVar G, Reg Src) {
  ICB_ASSERT(G.Id >= 0, "use of undeclared global");
  emit({Op::StoreG, G.Id, Src.Id, 0, 0, 0});
}

void ThreadBuilder::addG(Reg Dst, GlobalVar G, Reg Delta) {
  ICB_ASSERT(G.Id >= 0, "use of undeclared global");
  emit({Op::AddG, Dst.Id, G.Id, Delta.Id, 0, 0});
}

void ThreadBuilder::casG(Reg Ok, GlobalVar G, Reg Expected, Reg Replacement) {
  ICB_ASSERT(G.Id >= 0, "use of undeclared global");
  emit({Op::CasG, Ok.Id, G.Id, Expected.Id, Replacement.Id, 0});
}

void ThreadBuilder::xchgG(Reg Old, GlobalVar G, Reg NewValue) {
  ICB_ASSERT(G.Id >= 0, "use of undeclared global");
  emit({Op::XchgG, Old.Id, G.Id, NewValue.Id, 0, 0});
}

void ThreadBuilder::lock(LockVar M) {
  ICB_ASSERT(M.Id >= 0, "use of undeclared lock");
  emit({Op::Lock, M.Id, 0, 0, 0, 0});
}

void ThreadBuilder::unlock(LockVar M) {
  ICB_ASSERT(M.Id >= 0, "use of undeclared lock");
  emit({Op::Unlock, M.Id, 0, 0, 0, 0});
}

void ThreadBuilder::setE(EventVar E) {
  ICB_ASSERT(E.Id >= 0, "use of undeclared event");
  emit({Op::SetE, E.Id, 0, 0, 0, 0});
}

void ThreadBuilder::resetE(EventVar E) {
  ICB_ASSERT(E.Id >= 0, "use of undeclared event");
  emit({Op::ResetE, E.Id, 0, 0, 0, 0});
}

void ThreadBuilder::waitE(EventVar E) {
  ICB_ASSERT(E.Id >= 0, "use of undeclared event");
  emit({Op::WaitE, E.Id, 0, 0, 0, 0});
}

void ThreadBuilder::semP(SemVar S) {
  ICB_ASSERT(S.Id >= 0, "use of undeclared semaphore");
  emit({Op::SemP, S.Id, 0, 0, 0, 0});
}

void ThreadBuilder::semV(SemVar S) {
  ICB_ASSERT(S.Id >= 0, "use of undeclared semaphore");
  emit({Op::SemV, S.Id, 0, 0, 0, 0});
}

void ThreadBuilder::join(ThreadRef T) {
  ICB_ASSERT(T.Id >= 0, "join of undeclared thread");
  emit({Op::Join, T.Id, 0, 0, 0, 0});
}

void ThreadBuilder::storeImm(GlobalVar G, int64_t Value, Reg Scratch) {
  imm(Scratch, Value);
  storeG(G, Scratch);
}

void ThreadBuilder::incrNonAtomic(GlobalVar G, Reg Scratch, int64_t Delta) {
  // Two shared accesses with a local add in between: the classic racy
  // read-modify-write a preemption can split.
  loadG(Scratch, G);
  Reg DeltaReg{static_cast<uint8_t>(NumRegisters - 1)};
  imm(DeltaReg, Delta);
  add(Scratch, Scratch, DeltaReg);
  storeG(G, Scratch);
}

void ThreadBuilder::assertGlobalEq(GlobalVar G, int64_t Value, Reg Scratch,
                                   Reg Scratch2, const std::string &Message) {
  loadG(Scratch, G);
  imm(Scratch2, Value);
  eq(Scratch, Scratch, Scratch2);
  assertTrue(Scratch, Message);
}

std::vector<Instruction> ThreadBuilder::finish(const std::string &ThreadName) {
  for (const Fixup &F : Fixups) {
    int32_t Target = LabelTargets[F.LabelId];
    if (Target < 0)
      fatalError(__FILE__, __LINE__,
                 strFormat("thread '%s': unbound label %u",
                           ThreadName.c_str(), F.LabelId)
                     .c_str());
    // A label bound at the very end of the code is a jump past the last
    // instruction; require models to place a Halt there instead.
    ICB_ASSERT(Target <= static_cast<int32_t>(Code.size()),
               "label target out of range");
    if (F.InOperandB)
      Code[F.InstrIndex].B = Target;
    else
      Code[F.InstrIndex].A = Target;
  }
  return std::move(Code);
}

//===----------------------------------------------------------------------===//
// ProgramBuilder
//===----------------------------------------------------------------------===//

ProgramBuilder::ProgramBuilder(std::string Name) {
  Prog.Name = std::move(Name);
}

ProgramBuilder::~ProgramBuilder() = default;

GlobalVar ProgramBuilder::addGlobal(const std::string &Name,
                                    int64_t InitialValue) {
  Prog.Globals.push_back({Name, InitialValue});
  return {static_cast<int32_t>(Prog.Globals.size() - 1)};
}

LockVar ProgramBuilder::addLock(const std::string &Name) {
  Prog.Locks.push_back(Name);
  return {static_cast<int32_t>(Prog.Locks.size() - 1)};
}

EventVar ProgramBuilder::addEvent(const std::string &Name, bool ManualReset,
                                  bool InitiallySet) {
  Prog.Events.push_back({Name, ManualReset, InitiallySet});
  return {static_cast<int32_t>(Prog.Events.size() - 1)};
}

SemVar ProgramBuilder::addSemaphore(const std::string &Name,
                                    int32_t InitialCount) {
  Prog.Semaphores.push_back({Name, InitialCount});
  return {static_cast<int32_t>(Prog.Semaphores.size() - 1)};
}

ThreadBuilder &ProgramBuilder::addThread(const std::string &Name) {
  ICB_ASSERT(!Built, "addThread after build");
  Prog.Threads.push_back({Name, {}});
  Builders.emplace_back(new ThreadBuilder(*this, Builders.size()));
  return *Builders.back();
}

uint32_t ProgramBuilder::internMessage(const std::string &Message) {
  for (size_t I = 0; I != Prog.Messages.size(); ++I)
    if (Prog.Messages[I] == Message)
      return static_cast<uint32_t>(I);
  Prog.Messages.push_back(Message);
  return static_cast<uint32_t>(Prog.Messages.size() - 1);
}

Program ProgramBuilder::build() {
  ICB_ASSERT(!Built, "build called twice");
  Built = true;
  for (size_t I = 0; I != Builders.size(); ++I)
    Prog.Threads[I].Code = Builders[I]->finish(Prog.Threads[I].Name);
  std::string Error = Prog.validate();
  if (!Error.empty())
    fatalError(__FILE__, __LINE__,
               strFormat("invalid program '%s': %s", Prog.Name.c_str(),
                         Error.c_str())
                   .c_str());
  return std::move(Prog);
}
