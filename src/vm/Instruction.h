//===- vm/Instruction.h - Model VM instruction set ---------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the ZING-style model VM. Instructions divide into
/// thread-local operations (register arithmetic, branches, asserts) and
/// shared-access operations, each of which touches exactly one shared
/// object. A *step* of the transition system executes one shared-access
/// instruction plus any adjacent local instructions, matching the paper's
/// "each step involving exactly one access to a shared variable".
///
//===----------------------------------------------------------------------===//

#ifndef ICB_VM_INSTRUCTION_H
#define ICB_VM_INSTRUCTION_H

#include <cstdint>
#include <string>

namespace icb::vm {

/// Opcodes. The enumerator blocks matter: opcodes at or after `LoadG` are
/// shared accesses; opcodes at or after `Lock` are also potentially
/// blocking (the "B" column of Table 1 counts executions of these).
enum class Op : uint8_t {
  // --- Thread-local operations -------------------------------------------
  Nop,    ///< Does nothing.
  Imm,    ///< R[A] = Imm.
  Mov,    ///< R[A] = R[B].
  Add,    ///< R[A] = R[B] + R[C].
  Sub,    ///< R[A] = R[B] - R[C].
  Mul,    ///< R[A] = R[B] * R[C].
  Mod,    ///< R[A] = R[B] mod R[C]  (C must be nonzero).
  Eq,     ///< R[A] = (R[B] == R[C]).
  Ne,     ///< R[A] = (R[B] != R[C]).
  Lt,     ///< R[A] = (R[B] < R[C]).
  Le,     ///< R[A] = (R[B] <= R[C]).
  And,    ///< R[A] = R[B] & R[C].
  Or,     ///< R[A] = R[B] | R[C].
  Not,    ///< R[A] = !R[B] (logical).
  Jmp,    ///< pc = A.
  Bz,     ///< if (R[A] == 0) pc = B.
  Bnz,    ///< if (R[A] != 0) pc = B.
  Assert, ///< if (R[A] == 0) fail with message Messages[MsgId].
  Halt,   ///< Thread terminates.

  // --- Shared accesses (scheduling points) -------------------------------
  LoadG,  ///< R[A] = Globals[B].
  StoreG, ///< Globals[A] = R[B].
  AddG,   ///< Atomic: R[A] = (Globals[B] += R[C]) (post-add value).
  CasG,   ///< Atomic: R[A] = (Globals[B] == R[C]) ? (Globals[B] = Imm via
          ///<         register? see note) — compare Globals[B] with R[C],
          ///<         swap in R[Imm] on success, R[A] = success flag.
  XchgG,  ///< Atomic: R[A] = Globals[B]; Globals[B] = R[C].
  Unlock, ///< Releases lock A (model error if not held by this thread).
  SetE,   ///< Sets event A.
  ResetE, ///< Resets event A.
  SemV,   ///< Increments semaphore A.

  // --- Shared accesses that may block -------------------------------------
  Lock,  ///< Acquires lock A; blocks while held by another thread.
  WaitE, ///< Blocks until event A is set; auto-reset events are consumed.
  SemP,  ///< Blocks until semaphore A is positive, then decrements.
  Join,  ///< Blocks until thread A has terminated.
};

/// One decoded instruction. Operand meaning depends on the opcode; see the
/// enumerator comments. `Imm` doubles as the swap-source register for CasG
/// and the immediate value for Imm. `MsgId` indexes Program::Messages for
/// Assert.
struct Instruction {
  Op Opcode = Op::Nop;
  int32_t A = 0;
  int32_t B = 0;
  int32_t C = 0;
  int64_t Imm = 0;
  uint32_t MsgId = 0;
};

/// Returns true if executing \p Opcode accesses a shared object.
constexpr bool isSharedAccess(Op Opcode) {
  return Opcode >= Op::LoadG;
}

/// Returns true if \p Opcode can block the executing thread.
constexpr bool isPotentiallyBlocking(Op Opcode) {
  return Opcode >= Op::Lock;
}

/// Mnemonic for an opcode ("lock", "loadg", ...).
const char *opName(Op Opcode);

} // namespace icb::vm

#endif // ICB_VM_INSTRUCTION_H
