//===- support/StripedQueue.h - Lock-striped publish queue ------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-producer queue striped over independent locks. Producers push
/// with a stripe hint (the parallel ICB workers use their worker index, so
/// steady-state pushes are uncontended); a single consumer drains all
/// stripes in stripe order at a barrier. This carries the deferred
/// (preempting) continuations from the workers of bound c to the work
/// queue of bound c + 1.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_STRIPEDQUEUE_H
#define ICB_SUPPORT_STRIPEDQUEUE_H

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace icb {

template <typename T> class StripedQueue {
public:
  explicit StripedQueue(unsigned StripeCount)
      : Stripes(StripeCount ? StripeCount : 1),
        Lanes(new Stripe[StripeCount ? StripeCount : 1]) {}

  unsigned stripes() const { return Stripes; }

  /// Pushes an item onto stripe `Hint % stripes()`.
  void push(unsigned Hint, T &&Item) {
    Stripe &Lane = Lanes[Hint % Stripes];
    std::lock_guard<std::mutex> Guard(Lane.Mu);
    Lane.Items.push_back(std::move(Item));
  }

  /// Moves every queued item out, stripe by stripe in stripe order, and
  /// leaves the queue empty. Single-consumer; callers must ensure no
  /// concurrent push (the parallel engine drains only at bound barriers).
  std::vector<T> drain() {
    std::vector<T> Out;
    for (unsigned I = 0; I != Stripes; ++I) {
      Stripe &Lane = Lanes[I];
      std::lock_guard<std::mutex> Guard(Lane.Mu);
      if (Out.empty()) {
        Out = std::move(Lane.Items);
        Lane.Items.clear(); // Moved-from: restore a definite empty state.
      } else {
        for (T &Item : Lane.Items)
          Out.push_back(std::move(Item));
        Lane.Items.clear();
      }
    }
    return Out;
  }

  bool empty() const {
    for (unsigned I = 0; I != Stripes; ++I) {
      Stripe &Lane = Lanes[I];
      std::lock_guard<std::mutex> Guard(Lane.Mu);
      if (!Lane.Items.empty())
        return false;
    }
    return true;
  }

private:
  struct Stripe {
    mutable std::mutex Mu;
    std::vector<T> Items;
  };

  unsigned Stripes;
  std::unique_ptr<Stripe[]> Lanes;
};

} // namespace icb

#endif // ICB_SUPPORT_STRIPEDQUEUE_H
