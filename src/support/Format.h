//===- support/Format.h - printf-style std::string formatting ---*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small formatting helpers for report and table output. Library code never
/// writes to std::cout directly; harnesses format rows through these.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_FORMAT_H
#define ICB_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>

namespace icb {

/// printf-style formatting into a std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// vprintf-style formatting into a std::string.
std::string strFormatV(const char *Fmt, va_list Args);

/// Left-pads \p Str with spaces to \p Width (no-op if already wider).
std::string padLeft(const std::string &Str, size_t Width);

/// Right-pads \p Str with spaces to \p Width (no-op if already wider).
std::string padRight(const std::string &Str, size_t Width);

/// Formats a count with thousands separators ("1234567" -> "1,234,567").
std::string withCommas(uint64_t Value);

} // namespace icb

#endif // ICB_SUPPORT_FORMAT_H
