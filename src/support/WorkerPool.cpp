//===- support/WorkerPool.cpp - Persistent worker-thread pool -------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/WorkerPool.h"
#include "support/Debug.h"

using namespace icb;

unsigned WorkerPool::defaultWorkers() {
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw ? Hw : 1;
}

WorkerPool::WorkerPool(unsigned Workers) : Count(Workers ? Workers : 1) {
  Threads.reserve(Count - 1);
  for (unsigned I = 1; I != Count; ++I)
    Threads.emplace_back([this, I] { threadMain(I); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Guard(Mu);
    Shutdown = true;
  }
  RoundStart.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::run(const std::function<void(unsigned)> &Fn) {
  if (Count == 1) {
    Fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> Guard(Mu);
    ICB_ASSERT(Running == 0, "WorkerPool::run is not reentrant");
    this->Fn = &Fn;
    Running = Count - 1;
    ++Generation;
  }
  RoundStart.notify_all();
  Fn(0); // The caller is worker 0.
  std::unique_lock<std::mutex> Lock(Mu);
  RoundDone.wait(Lock, [this] { return Running == 0; });
  this->Fn = nullptr;
}

void WorkerPool::threadMain(unsigned Index) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(unsigned)> *Round = nullptr;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      RoundStart.wait(Lock, [this, SeenGeneration] {
        return Shutdown || Generation != SeenGeneration;
      });
      if (Shutdown)
        return;
      SeenGeneration = Generation;
      Round = Fn;
    }
    (*Round)(Index);
    {
      std::lock_guard<std::mutex> Guard(Mu);
      --Running;
    }
    RoundDone.notify_one();
  }
}
