//===- support/WorkStealingDeque.h - Per-worker work deque ------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-worker double-ended work queue: the owner pushes and pops at the
/// bottom (LIFO — keeps its own recently produced items hot), thieves take
/// from the top (FIFO — steal the oldest, typically largest, items). The
/// ICB work items these hold carry whole `State` copies, so each operation
/// moves a nontrivial payload; a short critical section around a deque is
/// cheap relative to the state copy, which is why this uses a plain mutex
/// rather than a lock-free Chase-Lev deque (measured: the lock is not the
/// bottleneck — the per-item search work is thousands of times larger).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_WORKSTEALINGDEQUE_H
#define ICB_SUPPORT_WORKSTEALINGDEQUE_H

#include <deque>
#include <mutex>
#include <utility>

namespace icb {

template <typename T> class WorkStealingDeque {
public:
  /// Owner side: pushes an item at the bottom.
  void pushBottom(T &&Item) {
    std::lock_guard<std::mutex> Guard(Mu);
    Items.push_back(std::move(Item));
  }

  /// Owner side: pops the most recently pushed item. Returns false when
  /// the deque is empty.
  bool tryPopBottom(T &Out) {
    std::lock_guard<std::mutex> Guard(Mu);
    if (Items.empty())
      return false;
    Out = std::move(Items.back());
    Items.pop_back();
    return true;
  }

  /// Thief side: takes the oldest item. Returns false when empty.
  bool trySteal(T &Out) {
    std::lock_guard<std::mutex> Guard(Mu);
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    return true;
  }

  /// Racy size hint; exact only while no other thread mutates the deque.
  size_t sizeHint() const {
    std::lock_guard<std::mutex> Guard(Mu);
    return Items.size();
  }

private:
  mutable std::mutex Mu;
  std::deque<T> Items;
};

} // namespace icb

#endif // ICB_SUPPORT_WORKSTEALINGDEQUE_H
