//===- support/WorkStealingDeque.h - Per-worker work deque ------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-worker double-ended work queue: the owner pushes and pops at the
/// bottom (LIFO — keeps its own recently produced items hot), thieves take
/// from the top (FIFO — steal the oldest, typically largest, items).
///
/// This is the Chase-Lev lock-free deque (SPAA'05), in the C11
/// memory-model formulation of Le et al. (PPoPP'13), with two deliberate
/// deviations:
///
///   * Items are held by pointer. The search work items carry whole
///     `State` copies / schedule prefixes, so slots would otherwise be
///     torn by a concurrent steal; a pointer slot is a single atomic word
///     and the heap allocation is trivial next to the per-item search
///     work. Ownership transfers with the successful pop/steal.
///   * The standalone seq_cst fences of the reference algorithm are
///     expressed as seq_cst accesses of Top/Bottom instead. The ordering
///     argument is unchanged (the fences exist exactly to order the
///     owner's Bottom store against its Top load, and the thief's Top load
///     against its Bottom load), and ThreadSanitizer — which does not
///     model standalone fences — can then verify the implementation.
///
/// Retired ring buffers are kept alive until the deque is destroyed:
/// a thief may still be reading a slot of an old ring after the owner
/// grows, and the search engine's deques live for one search anyway.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_WORKSTEALINGDEQUE_H
#define ICB_SUPPORT_WORKSTEALINGDEQUE_H

#include <atomic>
#include <cstdint>
#include <utility>

namespace icb {

template <typename T> class WorkStealingDeque {
public:
  WorkStealingDeque() : Buf(new Ring(InitialCapacity)) {}

  ~WorkStealingDeque() {
    // Single-threaded by now (the pool has joined): drop leftovers, then
    // the ring chain.
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_relaxed);
    Ring *R = Buf.load(std::memory_order_relaxed);
    for (int64_t I = Tp; I < B; ++I)
      delete R->get(I);
    while (R) {
      Ring *Prev = R->Prev;
      delete R;
      R = Prev;
    }
  }

  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

  /// Owner side: pushes an item at the bottom.
  void pushBottom(T &&Item) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_acquire);
    Ring *R = Buf.load(std::memory_order_relaxed);
    if (B - Tp >= R->Capacity)
      R = grow(R, Tp, B);
    R->put(B, new T(std::move(Item)));
    // Publish the slot before the new bottom becomes visible to thieves.
    Bottom.store(B + 1, std::memory_order_release);
  }

  /// Owner side: pops the most recently pushed item. Returns false when
  /// the deque is empty.
  bool tryPopBottom(T &Out) {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Ring *R = Buf.load(std::memory_order_relaxed);
    // seq_cst store/load pair: thieves must observe the reservation of
    // slot B before we read Top (the reference algorithm's fence).
    Bottom.store(B, std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    if (Tp > B) {
      // Empty: undo the reservation.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return false;
    }
    T *Item = nullptr;
    if (Tp != B) {
      // More than one item: slot B cannot be contended.
      Item = R->get(B);
      Out = std::move(*Item);
      delete Item;
      return true;
    }
    // Last item: race the thieves for it via the Top CAS.
    Item = R->get(B);
    bool Won = Top.compare_exchange_strong(
        Tp, Tp + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    Bottom.store(B + 1, std::memory_order_relaxed);
    if (!Won)
      return false; // A thief claimed (and will delete) the item.
    Out = std::move(*Item);
    delete Item;
    return true;
  }

  /// Thief side: takes the oldest item. Returns false when empty or when
  /// it lost a race (callers retry or move on — spurious failure is part
  /// of the work-stealing contract).
  bool trySteal(T &Out) {
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (Tp >= B)
      return false;
    Ring *R = Buf.load(std::memory_order_acquire);
    T *Item = R->get(Tp);
    // Claim slot Tp before touching the item; the loser never dereferences.
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return false;
    Out = std::move(*Item);
    delete Item;
    return true;
  }

  /// Racy size hint; exact only while no other thread mutates the deque.
  size_t sizeHint() const {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_relaxed);
    return B > Tp ? static_cast<size_t>(B - Tp) : 0;
  }

private:
  /// A circular array of item pointers. Slots are atomic so a thief's
  /// read of an index racing the owner's store to a *different* index
  /// modulo growth stays well-defined.
  struct Ring {
    explicit Ring(int64_t Cap)
        : Capacity(Cap), Slots(new std::atomic<T *>[Cap]) {}
    ~Ring() { delete[] Slots; }

    T *get(int64_t I) const {
      return Slots[I & (Capacity - 1)].load(std::memory_order_relaxed);
    }
    void put(int64_t I, T *Item) {
      Slots[I & (Capacity - 1)].store(Item, std::memory_order_relaxed);
    }

    const int64_t Capacity; ///< Always a power of two.
    std::atomic<T *> *Slots;
    Ring *Prev = nullptr; ///< Retired predecessor, freed with the deque.
  };

  Ring *grow(Ring *Old, int64_t Tp, int64_t B) {
    Ring *Bigger = new Ring(Old->Capacity * 2);
    for (int64_t I = Tp; I < B; ++I)
      Bigger->put(I, Old->get(I));
    Bigger->Prev = Old;
    Buf.store(Bigger, std::memory_order_release);
    return Bigger;
  }

  static constexpr int64_t InitialCapacity = 64;

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::atomic<Ring *> Buf;
};

} // namespace icb

#endif // ICB_SUPPORT_WORKSTEALINGDEQUE_H
