//===- support/CommandLine.h - Tiny flag parser -----------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small `--flag=value` parser for examples and experiment harnesses.
/// Supports int64, bool, and string flags with defaults and help text.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_COMMANDLINE_H
#define ICB_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace icb {

/// Declarative flag registry with `--name=value` / `--name value` parsing.
class FlagSet {
public:
  explicit FlagSet(std::string ProgramDescription)
      : Description(std::move(ProgramDescription)) {}

  void addInt(const std::string &Name, int64_t Default,
              const std::string &Help);
  void addBool(const std::string &Name, bool Default, const std::string &Help);
  void addString(const std::string &Name, const std::string &Default,
                 const std::string &Help);
  /// A string flag that may also appear bare: `--name` (no `=value`, no
  /// following value consumed) assigns \p BareValue instead of erroring —
  /// how `--trace` means "trace to the default sink" while `--trace=FILE`
  /// names one. The default is the empty string (flag absent).
  void addOptString(const std::string &Name, const std::string &BareValue,
                    const std::string &Help);

  /// Parses argv. Returns false (after printing usage to \p ErrorOut) on an
  /// unknown flag, malformed value, or `--help`.
  bool parse(int Argc, const char *const *Argv, std::string *ErrorOut);

  int64_t getInt(const std::string &Name) const;
  bool getBool(const std::string &Name) const;
  const std::string &getString(const std::string &Name) const;

  /// True iff the flag was explicitly assigned during parse() (as opposed
  /// to still holding its registered default). Lets resume-style commands
  /// distinguish "user asked for X" from "X is just the default".
  bool wasSet(const std::string &Name) const;

  /// Leftover non-flag arguments, in order.
  const std::vector<std::string> &positional() const { return Positional; }

  /// Renders the usage/help text.
  std::string usage(const std::string &Argv0) const;

private:
  enum class FlagKind { Int, Bool, String };

  struct Flag {
    FlagKind Kind;
    std::string Help;
    int64_t IntValue = 0;
    bool BoolValue = false;
    std::string StringValue;
    bool ExplicitlySet = false;
    /// String flags only: bare `--name` assigns BareValue rather than
    /// consuming the next argv (addOptString).
    bool AllowBare = false;
    std::string BareValue;
  };

  bool setValue(Flag &F, const std::string &Text, const std::string &Name,
                std::string *ErrorOut);

  std::string Description;
  std::map<std::string, Flag> Flags;
  std::vector<std::string> Positional;
};

} // namespace icb

#endif // ICB_SUPPORT_COMMANDLINE_H
