//===- support/Csv.h - CSV emission for experiment curves -------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV writer. Figure harnesses print both a human-readable table
/// and a machine-readable CSV block so the paper's plots can be regenerated
/// from captured output.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_CSV_H
#define ICB_SUPPORT_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace icb {

/// Streams rows of comma-separated values with proper quoting.
class CsvWriter {
public:
  CsvWriter(std::ostream &Out, std::vector<std::string> Header);

  /// Emits one row; the cell count must match the header.
  void writeRow(const std::vector<std::string> &Cells);

  /// Convenience for all-numeric rows.
  void writeRow(const std::vector<double> &Cells);

  unsigned rowCount() const { return Rows; }

private:
  static std::string escapeCell(const std::string &Cell);

  std::ostream &Out;
  size_t Columns;
  unsigned Rows = 0;
};

} // namespace icb

#endif // ICB_SUPPORT_CSV_H
