//===- support/Prng.h - Deterministic pseudo-random generators --*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, reproducible PRNGs for the random-walk search strategy (Section
/// 4.3 compares ICB against "random"). We avoid std::mt19937 so that the
/// stream is fully specified by this repository and identical everywhere.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_PRNG_H
#define ICB_SUPPORT_PRNG_H

#include "support/Debug.h"
#include <cstdint>
#include <vector>

namespace icb {

/// SplitMix64: used to seed Xoshiro and for one-off hashing of seeds.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256**: fast, high-quality generator for search decisions.
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 Seeder(Seed);
    for (uint64_t &Word : State)
      Word = Seeder.next();
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound) without modulo bias (Lemire reduction).
  uint64_t nextBounded(uint64_t Bound) {
    ICB_ASSERT(Bound > 0, "nextBounded requires a positive bound");
    // 128-bit multiply keeps the reduction unbiased enough for search use.
    unsigned __int128 Product =
        static_cast<unsigned __int128>(next()) * Bound;
    return static_cast<uint64_t>(Product >> 64);
  }

  /// Picks a uniformly random element index of a non-empty container size.
  size_t pickIndex(size_t Size) {
    return static_cast<size_t>(nextBounded(Size));
  }

  /// Fisher-Yates shuffle; deterministic given the generator state.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[pickIndex(I)]);
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace icb

#endif // ICB_SUPPORT_PRNG_H
