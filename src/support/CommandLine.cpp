//===- support/CommandLine.cpp - Tiny flag parser ------------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Debug.h"
#include "support/Format.h"
#include <cstdlib>

using namespace icb;

void FlagSet::addInt(const std::string &Name, int64_t Default,
                     const std::string &Help) {
  Flag F;
  F.Kind = FlagKind::Int;
  F.Help = Help;
  F.IntValue = Default;
  ICB_ASSERT(Flags.emplace(Name, std::move(F)).second, "duplicate flag");
}

void FlagSet::addBool(const std::string &Name, bool Default,
                      const std::string &Help) {
  Flag F;
  F.Kind = FlagKind::Bool;
  F.Help = Help;
  F.BoolValue = Default;
  ICB_ASSERT(Flags.emplace(Name, std::move(F)).second, "duplicate flag");
}

void FlagSet::addString(const std::string &Name, const std::string &Default,
                        const std::string &Help) {
  Flag F;
  F.Kind = FlagKind::String;
  F.Help = Help;
  F.StringValue = Default;
  ICB_ASSERT(Flags.emplace(Name, std::move(F)).second, "duplicate flag");
}

void FlagSet::addOptString(const std::string &Name,
                           const std::string &BareValue,
                           const std::string &Help) {
  Flag F;
  F.Kind = FlagKind::String;
  F.Help = Help;
  F.AllowBare = true;
  F.BareValue = BareValue;
  ICB_ASSERT(Flags.emplace(Name, std::move(F)).second, "duplicate flag");
}

bool FlagSet::setValue(Flag &F, const std::string &Text,
                       const std::string &Name, std::string *ErrorOut) {
  switch (F.Kind) {
  case FlagKind::Int: {
    char *End = nullptr;
    long long Parsed = std::strtoll(Text.c_str(), &End, 10);
    if (End == Text.c_str() || *End != '\0') {
      if (ErrorOut)
        *ErrorOut = strFormat("flag --%s expects an integer, got '%s'",
                              Name.c_str(), Text.c_str());
      return false;
    }
    F.IntValue = Parsed;
    return true;
  }
  case FlagKind::Bool:
    if (Text == "true" || Text == "1" || Text == "on") {
      F.BoolValue = true;
      return true;
    }
    if (Text == "false" || Text == "0" || Text == "off") {
      F.BoolValue = false;
      return true;
    }
    if (ErrorOut)
      *ErrorOut = strFormat("flag --%s expects on/off (or true/false), "
                            "got '%s'",
                            Name.c_str(), Text.c_str());
    return false;
  case FlagKind::String:
    F.StringValue = Text;
    return true;
  }
  ICB_UNREACHABLE("unknown flag kind");
}

bool FlagSet::parse(int Argc, const char *const *Argv, std::string *ErrorOut) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    if (Body == "help") {
      if (ErrorOut)
        *ErrorOut = usage(Argv[0]);
      return false;
    }
    std::string Name = Body;
    std::string Value;
    bool HasValue = false;
    if (size_t Eq = Body.find('='); Eq != std::string::npos) {
      Name = Body.substr(0, Eq);
      Value = Body.substr(Eq + 1);
      HasValue = true;
    }
    auto It = Flags.find(Name);
    if (It == Flags.end()) {
      if (ErrorOut)
        *ErrorOut = strFormat("unknown flag --%s\n%s", Name.c_str(),
                              usage(Argv[0]).c_str());
      return false;
    }
    Flag &F = It->second;
    if (!HasValue) {
      // Bare `--boolflag` means true; bare optional strings take their
      // registered bare value; other kinds consume the next argv.
      if (F.Kind == FlagKind::Bool) {
        F.BoolValue = true;
        F.ExplicitlySet = true;
        continue;
      }
      if (F.AllowBare) {
        F.StringValue = F.BareValue;
        F.ExplicitlySet = true;
        continue;
      }
      if (I + 1 >= Argc) {
        if (ErrorOut)
          *ErrorOut = strFormat("flag --%s requires a value", Name.c_str());
        return false;
      }
      Value = Argv[++I];
    }
    if (!setValue(F, Value, Name, ErrorOut))
      return false;
    F.ExplicitlySet = true;
  }
  return true;
}

bool FlagSet::wasSet(const std::string &Name) const {
  auto It = Flags.find(Name);
  ICB_ASSERT(It != Flags.end(), "wasSet on unknown flag");
  return It->second.ExplicitlySet;
}

int64_t FlagSet::getInt(const std::string &Name) const {
  auto It = Flags.find(Name);
  ICB_ASSERT(It != Flags.end() && It->second.Kind == FlagKind::Int,
             "getInt on unknown or non-int flag");
  return It->second.IntValue;
}

bool FlagSet::getBool(const std::string &Name) const {
  auto It = Flags.find(Name);
  ICB_ASSERT(It != Flags.end() && It->second.Kind == FlagKind::Bool,
             "getBool on unknown or non-bool flag");
  return It->second.BoolValue;
}

const std::string &FlagSet::getString(const std::string &Name) const {
  auto It = Flags.find(Name);
  ICB_ASSERT(It != Flags.end() && It->second.Kind == FlagKind::String,
             "getString on unknown or non-string flag");
  return It->second.StringValue;
}

std::string FlagSet::usage(const std::string &Argv0) const {
  std::string Text = Description + "\n\nusage: " + Argv0 + " [flags]\n";
  for (const auto &[Name, F] : Flags) {
    std::string Default;
    switch (F.Kind) {
    case FlagKind::Int:
      Default = strFormat("%lld", static_cast<long long>(F.IntValue));
      break;
    case FlagKind::Bool:
      Default = F.BoolValue ? "true" : "false";
      break;
    case FlagKind::String:
      Default = F.StringValue;
      break;
    }
    Text += strFormat("  --%-20s %s (default: %s)\n", Name.c_str(),
                      F.Help.c_str(), Default.c_str());
  }
  return Text;
}
