//===- support/WorkerPool.h - Persistent worker-thread pool -----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small persistent pool of worker threads for fork/join rounds. The
/// parallel ICB engine runs one round per preemption bound: `run(Fn)`
/// invokes `Fn(workerIndex)` on every worker concurrently (the calling
/// thread participates as worker 0) and returns when all of them have
/// finished — the return *is* the per-bound barrier of Algorithm 1.
///
/// Threads are spawned once and parked between rounds, so per-bound
/// dispatch costs two lock acquisitions per worker instead of a thread
/// spawn.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_WORKERPOOL_H
#define ICB_SUPPORT_WORKERPOOL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace icb {

class WorkerPool {
public:
  /// Creates a pool of \p Workers logical workers (>= 1). Worker 0 is the
  /// thread that calls run(); Workers - 1 threads are spawned and parked.
  explicit WorkerPool(unsigned Workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  unsigned workers() const { return Count; }

  /// Runs `Fn(workerIndex)` on all workers concurrently and waits for every
  /// invocation to return (a full barrier). Not reentrant.
  void run(const std::function<void(unsigned)> &Fn);

  /// A sensible default worker count: the hardware concurrency, with a
  /// floor of 1 (hardware_concurrency() may report 0).
  static unsigned defaultWorkers();

private:
  void threadMain(unsigned Index);

  std::mutex Mu;
  std::condition_variable RoundStart;
  std::condition_variable RoundDone;
  const std::function<void(unsigned)> *Fn = nullptr; ///< Guarded by Mu.
  uint64_t Generation = 0;                           ///< Guarded by Mu.
  unsigned Running = 0;                              ///< Guarded by Mu.
  bool Shutdown = false;                             ///< Guarded by Mu.
  unsigned Count = 1;
  std::vector<std::thread> Threads;
};

} // namespace icb

#endif // ICB_SUPPORT_WORKERPOOL_H
