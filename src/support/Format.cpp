//===- support/Format.cpp - printf-style std::string formatting ----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/Debug.h"
#include <cstdio>

using namespace icb;

std::string icb::strFormatV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  ICB_ASSERT(Needed >= 0, "vsnprintf failed to measure format");
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  return Result;
}

std::string icb::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = strFormatV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string icb::padLeft(const std::string &Str, size_t Width) {
  if (Str.size() >= Width)
    return Str;
  return std::string(Width - Str.size(), ' ') + Str;
}

std::string icb::padRight(const std::string &Str, size_t Width) {
  if (Str.size() >= Width)
    return Str;
  return Str + std::string(Width - Str.size(), ' ');
}

std::string icb::withCommas(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  Result.reserve(Digits.size() + Digits.size() / 3);
  size_t Lead = Digits.size() % 3;
  if (Lead == 0)
    Lead = 3;
  for (size_t I = 0; I != Digits.size(); ++I) {
    if (I != 0 && (I - Lead) % 3 == 0 && I >= Lead)
      Result.push_back(',');
    Result.push_back(Digits[I]);
  }
  return Result;
}
