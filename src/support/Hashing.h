//===- support/Hashing.h - Stable hashing utilities -------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic 64-bit hashing used for state caching (ZING-side) and
/// happens-before execution fingerprints (CHESS-side). Hashes are stable
/// across runs and platforms: state-space coverage numbers must reproduce
/// bit-for-bit for the experiment harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_HASHING_H
#define ICB_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace icb {

/// Finalization mix from SplitMix64; a cheap, well-distributed bijection.
constexpr uint64_t hashMix(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

/// Combines an existing seed with a new value, order-sensitively.
constexpr uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return hashMix(Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                         (Seed >> 2)));
}

/// FNV-1a over raw bytes; used for strings and byte-serialized states.
constexpr uint64_t fnv1a(const char *Data, size_t Len,
                         uint64_t Seed = 0xcbf29ce484222325ULL) {
  uint64_t Hash = Seed;
  for (size_t I = 0; I != Len; ++I) {
    Hash ^= static_cast<unsigned char>(Data[I]);
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

constexpr uint64_t hashString(std::string_view Str) {
  return fnv1a(Str.data(), Str.size());
}

/// Accumulates a sequence of 64-bit words into one stable digest.
///
/// Order-sensitive by default; use \c addUnordered for multiset semantics
/// (the HB fingerprint hashes an unordered set of events, so equivalent
/// executions that reorder independent steps produce identical digests).
class StableHasher {
public:
  explicit StableHasher(uint64_t Seed = 0x9e3779b97f4a7c15ULL)
      : Ordered(Seed) {}

  void add(uint64_t Value) {
    Ordered = hashCombine(Ordered, Value);
    ++Count;
  }

  void addBytes(const void *Data, size_t Len) {
    add(fnv1a(static_cast<const char *>(Data), Len));
  }

  /// Adds a value commutatively: the digest does not depend on the order in
  /// which unordered values are added.
  void addUnordered(uint64_t Value) {
    Unordered += hashMix(Value);
    UnorderedXor ^= hashMix(Value ^ 0x6a09e667f3bcc909ULL);
    ++Count;
  }

  /// Final digest over everything added so far.
  uint64_t digest() const {
    uint64_t Result = hashCombine(Ordered, Unordered);
    Result = hashCombine(Result, UnorderedXor);
    return hashCombine(Result, Count);
  }

private:
  uint64_t Ordered;
  uint64_t Unordered = 0;
  uint64_t UnorderedXor = 0;
  uint64_t Count = 0;
};

} // namespace icb

#endif // ICB_SUPPORT_HASHING_H
