//===- support/Stats.h - Counters and histograms ----------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistic helpers shared by both checkers: min/max trackers for
/// Table 1 (max K, max B, max c) and dense histograms for Table 2 (bugs per
/// preemption bound).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_STATS_H
#define ICB_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace icb {

/// Tracks the extremes and total of a stream of observations.
class MinMax {
public:
  void observe(uint64_t Value) {
    if (Count == 0 || Value < Min)
      Min = Value;
    if (Count == 0 || Value > Max)
      Max = Value;
    Sum += Value;
    ++Count;
  }

  /// Folds another tracker in; the result is what observing both streams
  /// in any order would have produced (merging is commutative, which is
  /// what makes the parallel engine's per-worker stats order-independent).
  void merge(const MinMax &Other) {
    if (Other.Count == 0)
      return;
    if (Count == 0 || Other.Min < Min)
      Min = Other.Min;
    if (Count == 0 || Other.Max > Max)
      Max = Other.Max;
    Sum += Other.Sum;
    Count += Other.Count;
  }

  bool empty() const { return Count == 0; }
  uint64_t min() const { return Count ? Min : 0; }
  uint64_t max() const { return Count ? Max : 0; }
  uint64_t sum() const { return Sum; }
  uint64_t count() const { return Count; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0.0;
  }

  /// Mean scaled by 1000 and rounded to nearest, as an integer — the form
  /// the uint64-only JSON layer exports (field names carry a `_milli`
  /// suffix). The widened multiply keeps the scaling exact for any Sum a
  /// uint64 can hold, so this is stable wherever mean() would lose bits.
  uint64_t meanMilli() const {
    if (Count == 0)
      return 0;
    unsigned __int128 Scaled = static_cast<unsigned __int128>(Sum) * 1000;
    return static_cast<uint64_t>((Scaled + Count / 2) / Count);
  }

  /// Rebuilds a tracker from its four saved components (checkpoint
  /// restore); the inverse of reading min()/max()/sum()/count().
  static MinMax restore(uint64_t Min, uint64_t Max, uint64_t Sum,
                        uint64_t Count) {
    MinMax M;
    if (Count != 0) {
      M.Min = Min;
      M.Max = Max;
      M.Sum = Sum;
      M.Count = Count;
    }
    return M;
  }

private:
  uint64_t Min = 0;
  uint64_t Max = 0;
  uint64_t Sum = 0;
  uint64_t Count = 0;
};

/// Dense histogram over small non-negative integer keys (e.g. preemption
/// bounds); grows on demand.
class Histogram {
public:
  void increment(size_t Bucket, uint64_t Amount = 1) {
    if (Bucket >= Buckets.size())
      Buckets.resize(Bucket + 1, 0);
    Buckets[Bucket] += Amount;
  }

  uint64_t at(size_t Bucket) const {
    return Bucket < Buckets.size() ? Buckets[Bucket] : 0;
  }

  size_t size() const { return Buckets.size(); }

  uint64_t total() const {
    uint64_t Sum = 0;
    for (uint64_t Value : Buckets)
      Sum += Value;
    return Sum;
  }

  /// Adds another histogram bucket-wise (commutative).
  void merge(const Histogram &Other) {
    for (size_t I = 0; I != Other.Buckets.size(); ++I)
      increment(I, Other.Buckets[I]);
  }

  const std::vector<uint64_t> &buckets() const { return Buckets; }

private:
  std::vector<uint64_t> Buckets;
};

/// Bounded sampler for states-vs-executions coverage curves.
///
/// The figure harnesses want the curve's *shape*; recording one point per
/// execution makes the vector grow linearly with the run (hundreds of MB
/// on long searches). This sampler records every Stride-th execution and,
/// whenever the retained vector reaches MaxPoints, drops every other point
/// and doubles the stride — so memory stays bounded while early executions
/// (where the curve bends) remain densely sampled. `finish` appends the
/// final observation so the curve always ends at the true totals.
///
/// Point is any struct with {Executions, States} members (the search:: and
/// rt:: coverage point types are structurally identical).
///
/// The sampler's internal cursor can be saved and restored (checkpoint /
/// resume): restoring {stride, last-observation, pending} alongside the
/// already-emitted points makes the continued curve byte-identical to an
/// uninterrupted run's.
struct CoverageSamplerState {
  uint64_t Stride = 1;
  uint64_t LastExecutions = 0;
  uint64_t LastStates = 0;
  bool HavePending = false;
};

template <typename Point> class CoverageSampler {
public:
  explicit CoverageSampler(uint64_t MaxPoints = 4096)
      : MaxPoints(MaxPoints < 16 ? 16 : MaxPoints) {}

  /// Called once per completed execution with the running totals.
  void observe(std::vector<Point> &Out, uint64_t Executions,
               uint64_t States) {
    LastExecutions = Executions;
    LastStates = States;
    HavePending = true;
    if (Executions % Stride != 0)
      return;
    Out.push_back(Point{Executions, States});
    HavePending = false;
    if (Out.size() < MaxPoints)
      return;
    // Keep points at the doubled stride (indices 1, 3, 5, ... hold the
    // executions that are multiples of 2 * Stride).
    size_t Write = 0;
    for (size_t I = 1; I < Out.size(); I += 2)
      Out[Write++] = Out[I];
    Out.resize(Write);
    Stride *= 2;
  }

  /// Appends the last observed totals if they were not already recorded.
  void finish(std::vector<Point> &Out) {
    if (HavePending)
      Out.push_back(Point{LastExecutions, LastStates});
    HavePending = false;
  }

  CoverageSamplerState saveState() const {
    return {Stride, LastExecutions, LastStates, HavePending};
  }

  void restoreState(const CoverageSamplerState &S) {
    Stride = S.Stride ? S.Stride : 1;
    LastExecutions = S.LastExecutions;
    LastStates = S.LastStates;
    HavePending = S.HavePending;
  }

private:
  uint64_t MaxPoints;
  uint64_t Stride = 1;
  uint64_t LastExecutions = 0;
  uint64_t LastStates = 0;
  bool HavePending = false;
};

} // namespace icb

#endif // ICB_SUPPORT_STATS_H
