//===- support/Stats.h - Counters and histograms ----------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistic helpers shared by both checkers: min/max trackers for
/// Table 1 (max K, max B, max c) and dense histograms for Table 2 (bugs per
/// preemption bound).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_STATS_H
#define ICB_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace icb {

/// Tracks the extremes and total of a stream of observations.
class MinMax {
public:
  void observe(uint64_t Value) {
    if (Count == 0 || Value < Min)
      Min = Value;
    if (Count == 0 || Value > Max)
      Max = Value;
    Sum += Value;
    ++Count;
  }

  bool empty() const { return Count == 0; }
  uint64_t min() const { return Count ? Min : 0; }
  uint64_t max() const { return Count ? Max : 0; }
  uint64_t sum() const { return Sum; }
  uint64_t count() const { return Count; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0.0;
  }

private:
  uint64_t Min = 0;
  uint64_t Max = 0;
  uint64_t Sum = 0;
  uint64_t Count = 0;
};

/// Dense histogram over small non-negative integer keys (e.g. preemption
/// bounds); grows on demand.
class Histogram {
public:
  void increment(size_t Bucket, uint64_t Amount = 1) {
    if (Bucket >= Buckets.size())
      Buckets.resize(Bucket + 1, 0);
    Buckets[Bucket] += Amount;
  }

  uint64_t at(size_t Bucket) const {
    return Bucket < Buckets.size() ? Buckets[Bucket] : 0;
  }

  size_t size() const { return Buckets.size(); }

  uint64_t total() const {
    uint64_t Sum = 0;
    for (uint64_t Value : Buckets)
      Sum += Value;
    return Sum;
  }

  const std::vector<uint64_t> &buckets() const { return Buckets; }

private:
  std::vector<uint64_t> Buckets;
};

} // namespace icb

#endif // ICB_SUPPORT_STATS_H
