//===- support/Debug.h - Assertions and unreachable markers ----*- C++ -*-===//
//
// Part of the ICB project, a reproduction of "Iterative Context Bounding for
// Systematic Testing of Multithreaded Programs" (Musuvathi & Qadeer, PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Project-wide assertion helpers. Library code asserts liberally (with
/// messages) and never throws; a violated invariant aborts with a location.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SUPPORT_DEBUG_H
#define ICB_SUPPORT_DEBUG_H

#include <cstdio>
#include <cstdlib>

namespace icb {

/// Prints a fatal-error message with source location and aborts.
[[noreturn]] inline void fatalError(const char *File, int Line,
                                    const char *Msg) {
  std::fprintf(stderr, "%s:%d: fatal error: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace icb

/// Marks a point in the code that must never be reached.
#define ICB_UNREACHABLE(MSG) ::icb::fatalError(__FILE__, __LINE__, MSG)

/// Like assert(), but always enabled: search invariants guard soundness of
/// the checker itself, so we keep them in release builds too.
#define ICB_ASSERT(COND, MSG)                                                  \
  do {                                                                         \
    if (!(COND))                                                               \
      ::icb::fatalError(__FILE__, __LINE__, "assertion failed: " MSG);         \
  } while (false)

#endif // ICB_SUPPORT_DEBUG_H
