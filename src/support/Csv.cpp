//===- support/Csv.cpp - CSV emission for experiment curves --------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"
#include "support/Debug.h"
#include "support/Format.h"

using namespace icb;

CsvWriter::CsvWriter(std::ostream &OutStream, std::vector<std::string> Header)
    : Out(OutStream), Columns(Header.size()) {
  ICB_ASSERT(!Header.empty(), "CSV requires at least one column");
  writeRow(Header);
  Rows = 0; // The header is not a data row.
}

std::string CsvWriter::escapeCell(const std::string &Cell) {
  bool NeedsQuotes = Cell.find_first_of(",\"\n") != std::string::npos;
  if (!NeedsQuotes)
    return Cell;
  std::string Escaped = "\"";
  for (char C : Cell) {
    if (C == '"')
      Escaped += "\"\"";
    else
      Escaped.push_back(C);
  }
  Escaped.push_back('"');
  return Escaped;
}

void CsvWriter::writeRow(const std::vector<std::string> &Cells) {
  ICB_ASSERT(Cells.size() == Columns, "CSV row width mismatch");
  for (size_t I = 0; I != Cells.size(); ++I) {
    if (I != 0)
      Out << ',';
    Out << escapeCell(Cells[I]);
  }
  Out << '\n';
  ++Rows;
}

void CsvWriter::writeRow(const std::vector<double> &Cells) {
  std::vector<std::string> Text;
  Text.reserve(Cells.size());
  for (double Value : Cells) {
    // Integral values print without a decimal point for readability.
    if (Value == static_cast<double>(static_cast<long long>(Value)))
      Text.push_back(strFormat("%lld", static_cast<long long>(Value)));
    else
      Text.push_back(strFormat("%.6g", Value));
  }
  writeRow(Text);
}
