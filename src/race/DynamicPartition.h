//===- race/DynamicPartition.h - Data/sync variable partition ---*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "An important aspect of the CHESS implementation is its dynamic
/// partitioning of the set of program variables into data and
/// synchronization variables." This registry tracks that partition:
///
///   * Variables backing Mutex/Event/Semaphore/Atomic objects register as
///     synchronization variables (their accesses are scheduling points).
///   * SharedVar<T> objects register as data variables (their accesses are
///     *not* scheduling points, but are checked for races).
///   * When a race on a data variable turns out to be intended (lock-free
///     code), the harness can *promote* it: in subsequent executions it is
///     treated as a synchronization variable, exactly the workflow CHESS
///     supports for racy-by-design programs.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RACE_DYNAMICPARTITION_H
#define ICB_RACE_DYNAMICPARTITION_H

#include <cstddef>
#include <cstdint>
#include <unordered_set>

namespace icb::race {

/// Classification of one shared variable.
enum class VarClass : uint8_t {
  Data, ///< Checked for races; not a scheduling point.
  Sync, ///< Scheduling point; creates happens-before edges.
};

/// The evolving data/sync partition for one test (persists across the
/// executions of a search, since promotions must stick).
class DynamicPartition {
public:
  /// Registers \p VarCode as a synchronization variable.
  void registerSync(uint64_t VarCode) { SyncVars.insert(VarCode); }

  /// Promotes a data variable to synchronization status (typically after
  /// an intended race was detected on it).
  void promoteToSync(uint64_t VarCode) {
    SyncVars.insert(VarCode);
    ++Promotions;
  }

  VarClass classify(uint64_t VarCode) const {
    return SyncVars.count(VarCode) ? VarClass::Sync : VarClass::Data;
  }

  bool isSync(uint64_t VarCode) const {
    return SyncVars.count(VarCode) != 0;
  }

  unsigned promotionCount() const { return Promotions; }
  size_t syncVarCount() const { return SyncVars.size(); }

private:
  std::unordered_set<uint64_t> SyncVars;
  unsigned Promotions = 0;
};

} // namespace icb::race

#endif // ICB_RACE_DYNAMICPARTITION_H
