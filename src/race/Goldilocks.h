//===- race/Goldilocks.h - Lockset-propagation race detection ---*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Goldilocks-style race detector [Elmas, Qadeer, Tasiran, FATES/RV'06],
/// the algorithm the paper's CHESS implementation used ("while using the
/// Goldilocks algorithm to check for data-races in each execution").
///
/// The idea: for each data variable, maintain a *lockset* of
/// synchronization elements (threads and sync variables) that currently
/// "own" knowledge of the variable's last accesses. A thread may access the
/// variable race-free iff the thread itself is in the lockset. Sync
/// operations propagate ownership: when thread t operates on sync variable
/// m, any lockset containing m gains t (t acquired m's knowledge) and any
/// lockset containing t gains m (t released its knowledge into m).
///
/// This detector computes exactly the happens-before races that the
/// vector-clock detector computes; the test suite cross-checks them on
/// randomized executions.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RACE_GOLDILOCKS_H
#define ICB_RACE_GOLDILOCKS_H

#include "race/RaceDetector.h"
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace icb::race {

/// Lockset-propagation happens-before race detector.
class GoldilocksDetector final : public RaceDetector {
public:
  explicit GoldilocksDetector(unsigned NumThreads);

  void onSyncOp(uint32_t Tid, uint64_t VarCode) override;
  std::optional<RaceReport> onDataAccess(uint32_t Tid, uint64_t VarCode,
                                         bool IsWrite) override;
  const char *name() const override { return "goldilocks"; }

private:
  /// Synchronization elements are threads or sync variables; encode threads
  /// in a reserved high range so they cannot collide with variable codes.
  static uint64_t threadElement(uint32_t Tid) {
    return (1ULL << 63) | Tid;
  }

  using LockSet = std::unordered_set<uint64_t>;

  /// Applies the acquire/release propagation of a sync op to one lockset.
  static void propagate(LockSet &Set, uint64_t ThreadElem, uint64_t VarElem);

  struct VarState {
    /// Lockset guarding the last write; empty = no write yet.
    LockSet WriteSet;
    uint32_t LastWriteTid = 0;
    bool HasWrite = false;
    /// Lockset guarding the latest read of each reading thread.
    std::unordered_map<uint32_t, LockSet> ReadSets;
  };

  unsigned NumThreads;
  std::unordered_map<uint64_t, VarState> DataVars;
};

} // namespace icb::race

#endif // ICB_RACE_GOLDILOCKS_H
