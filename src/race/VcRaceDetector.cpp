//===- race/VcRaceDetector.cpp - Vector-clock race detection --------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/VcRaceDetector.h"

using namespace icb;
using namespace icb::race;
using icb::trace::VectorClock;

RaceDetector::~RaceDetector() = default;

std::string RaceReport::str() const {
  auto AccessName = [](bool IsWrite) { return IsWrite ? "write" : "read"; };
  std::string Text = "data race on variable ";
  Text += std::to_string(VarCode);
  Text += ": ";
  Text += AccessName(FirstWasWrite);
  Text += " by thread ";
  Text += std::to_string(FirstTid);
  Text += " races with ";
  Text += AccessName(SecondWasWrite);
  Text += " by thread ";
  Text += std::to_string(SecondTid);
  return Text;
}

VcRaceDetector::VcRaceDetector(unsigned NumThreads) : NumThreads(NumThreads) {
  ThreadClocks.resize(NumThreads, VectorClock(NumThreads));
  // Start every thread at component 1 so epoch 0 can mean "no write yet".
  for (unsigned Tid = 0; Tid != NumThreads; ++Tid)
    ThreadClocks[Tid].tick(Tid);
}

void VcRaceDetector::onSyncOp(uint32_t Tid, uint64_t VarCode) {
  ICB_ASSERT(Tid < NumThreads, "thread id out of range");
  VectorClock &Mine = ThreadClocks[Tid];
  auto [It, Inserted] = SyncClocks.try_emplace(VarCode, NumThreads);
  if (!Inserted)
    Mine.join(It->second);
  // Publish-then-tick: the published clock must not cover accesses the
  // thread performs after this operation, so the thread's own component is
  // incremented only after the variable's clock is updated.
  It->second = Mine;
  Mine.tick(Tid);
}

std::optional<RaceReport> VcRaceDetector::onDataAccess(uint32_t Tid,
                                                       uint64_t VarCode,
                                                       bool IsWrite) {
  ICB_ASSERT(Tid < NumThreads, "thread id out of range");
  VectorClock &Mine = ThreadClocks[Tid];
  auto [It, Inserted] = DataVars.try_emplace(VarCode);
  VarState &Var = It->second;
  if (Inserted)
    Var.Reads = VectorClock(NumThreads);

  // Any access must be ordered after the last write.
  if (Var.LastWriteClock != 0 &&
      Mine.get(Var.LastWriteTid) < Var.LastWriteClock) {
    RaceReport Report;
    Report.VarCode = VarCode;
    Report.FirstTid = Var.LastWriteTid;
    Report.FirstWasWrite = true;
    Report.SecondTid = Tid;
    Report.SecondWasWrite = IsWrite;
    return Report;
  }

  if (!IsWrite) {
    Var.Reads.set(Tid, Mine.get(Tid));
    return std::nullopt;
  }

  // A write must additionally be ordered after every previous read.
  for (unsigned Reader = 0; Reader != NumThreads; ++Reader) {
    if (Var.Reads.get(Reader) != 0 &&
        Mine.get(Reader) < Var.Reads.get(Reader)) {
      RaceReport Report;
      Report.VarCode = VarCode;
      Report.FirstTid = Reader;
      Report.FirstWasWrite = false;
      Report.SecondTid = Tid;
      Report.SecondWasWrite = true;
      return Report;
    }
  }
  Var.LastWriteTid = Tid;
  Var.LastWriteClock = Mine.get(Tid);
  Var.Reads = VectorClock(NumThreads);
  return std::nullopt;
}
