//===- race/RaceDetector.h - Data-race detection interfaces -----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.1: CHESS "introduces context switches only at accesses to
/// synchronization variables and verifies that accesses to data variables
/// are ordered by accesses to synchronization variables in each explored
/// execution". These interfaces implement that verification. Two
/// interchangeable detectors are provided:
///
///   * `VcRaceDetector` — FastTrack-flavoured vector clocks (the default).
///   * `GoldilocksDetector` — lockset-propagation in the style of the
///     Goldilocks algorithm [Elmas, Qadeer, Tasiran 2006], which the CHESS
///     implementation in the paper used.
///
/// Both observe the same event stream (one sync-op or data-access record
/// per step) and must report identical races; the test suite cross-checks
/// them on randomized executions.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RACE_RACEDETECTOR_H
#define ICB_RACE_RACEDETECTOR_H

#include <cstdint>
#include <optional>
#include <string>

namespace icb::race {

/// A detected data race: two accesses to the same data variable not
/// ordered by the happens-before relation of the execution.
struct RaceReport {
  uint64_t VarCode = 0;
  uint32_t FirstTid = 0;
  uint32_t SecondTid = 0;
  bool FirstWasWrite = false;
  bool SecondWasWrite = false;

  std::string str() const;
};

/// Abstract per-execution race detector. A fresh detector observes one
/// execution from its first step; the scheduler feeds it every step.
class RaceDetector {
public:
  virtual ~RaceDetector();

  /// Observes an operation on a synchronization variable by \p Tid. All
  /// operations on the same sync variable are mutually dependent (the
  /// paper's dependence relation), so each op both acquires and releases
  /// the variable's causal knowledge.
  virtual void onSyncOp(uint32_t Tid, uint64_t VarCode) = 0;

  /// Observes a data-variable access; returns a report if it races with a
  /// previous access.
  virtual std::optional<RaceReport> onDataAccess(uint32_t Tid,
                                                 uint64_t VarCode,
                                                 bool IsWrite) = 0;

  /// Human-readable detector name for reports and benches.
  virtual const char *name() const = 0;
};

} // namespace icb::race

#endif // ICB_RACE_RACEDETECTOR_H
