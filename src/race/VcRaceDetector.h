//===- race/VcRaceDetector.h - Vector-clock race detection ------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef ICB_RACE_VCRACEDETECTOR_H
#define ICB_RACE_VCRACEDETECTOR_H

#include "race/RaceDetector.h"
#include "trace/VectorClock.h"
#include <unordered_map>
#include <vector>

namespace icb::race {

/// FastTrack-flavoured happens-before race detector.
///
/// Per thread: a vector clock. Per sync variable: the clock of its last
/// operation (joined into the next operator's clock). Per data variable:
/// the epoch (tid, clock) of the last write and a read clock accumulating
/// the last read per thread.
class VcRaceDetector final : public RaceDetector {
public:
  explicit VcRaceDetector(unsigned NumThreads);

  void onSyncOp(uint32_t Tid, uint64_t VarCode) override;
  std::optional<RaceReport> onDataAccess(uint32_t Tid, uint64_t VarCode,
                                         bool IsWrite) override;
  const char *name() const override { return "vectorclock"; }

private:
  struct VarState {
    uint32_t LastWriteTid = 0;
    uint32_t LastWriteClock = 0; ///< 0 means "no write yet".
    trace::VectorClock Reads;    ///< Component per thread; 0 = no read.
  };

  unsigned NumThreads;
  std::vector<trace::VectorClock> ThreadClocks;
  std::unordered_map<uint64_t, trace::VectorClock> SyncClocks;
  std::unordered_map<uint64_t, VarState> DataVars;
};

} // namespace icb::race

#endif // ICB_RACE_VCRACEDETECTOR_H
