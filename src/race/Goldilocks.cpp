//===- race/Goldilocks.cpp - Lockset-propagation race detection -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/Goldilocks.h"
#include "support/Debug.h"

using namespace icb::race;

GoldilocksDetector::GoldilocksDetector(unsigned NumThreads)
    : NumThreads(NumThreads) {}

void GoldilocksDetector::propagate(LockSet &Set, uint64_t ThreadElem,
                                   uint64_t VarElem) {
  // A sync op is both an acquire (if the set contains the variable, the
  // thread learns it: add the thread) and a release (if the set contains
  // the thread, the variable learns it: add the variable).
  bool HasVar = Set.count(VarElem) != 0;
  bool HasThread = Set.count(ThreadElem) != 0;
  if (HasVar || HasThread) {
    Set.insert(ThreadElem);
    Set.insert(VarElem);
  }
}

void GoldilocksDetector::onSyncOp(uint32_t Tid, uint64_t VarCode) {
  ICB_ASSERT(Tid < NumThreads, "thread id out of range");
  uint64_t ThreadElem = threadElement(Tid);
  for (auto &[Var, State] : DataVars) {
    (void)Var;
    if (State.HasWrite)
      propagate(State.WriteSet, ThreadElem, VarCode);
    for (auto &[Reader, Set] : State.ReadSets) {
      (void)Reader;
      propagate(Set, ThreadElem, VarCode);
    }
  }
}

std::optional<RaceReport>
GoldilocksDetector::onDataAccess(uint32_t Tid, uint64_t VarCode,
                                 bool IsWrite) {
  ICB_ASSERT(Tid < NumThreads, "thread id out of range");
  uint64_t ThreadElem = threadElement(Tid);
  VarState &Var = DataVars[VarCode];

  // Any access races with an unordered previous write.
  if (Var.HasWrite && Var.WriteSet.count(ThreadElem) == 0) {
    RaceReport Report;
    Report.VarCode = VarCode;
    Report.FirstTid = Var.LastWriteTid;
    Report.FirstWasWrite = true;
    Report.SecondTid = Tid;
    Report.SecondWasWrite = IsWrite;
    return Report;
  }

  if (!IsWrite) {
    // Record this read; its ownership starts with just the reading thread.
    LockSet &Set = Var.ReadSets[Tid];
    Set.clear();
    Set.insert(ThreadElem);
    return std::nullopt;
  }

  // A write additionally races with any unordered previous read.
  for (const auto &[Reader, Set] : Var.ReadSets) {
    if (Set.count(ThreadElem) == 0) {
      RaceReport Report;
      Report.VarCode = VarCode;
      Report.FirstTid = Reader;
      Report.FirstWasWrite = false;
      Report.SecondTid = Tid;
      Report.SecondWasWrite = true;
      return Report;
    }
  }
  Var.HasWrite = true;
  Var.LastWriteTid = Tid;
  Var.WriteSet.clear();
  Var.WriteSet.insert(ThreadElem);
  Var.ReadSets.clear();
  return std::nullopt;
}
