//===- io/Channel.cpp - Modeled byte streams and eventfds -----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/Channel.h"
#include "support/Debug.h"
#include <cstring>

using namespace icb;
using namespace icb::io;

//===----------------------------------------------------------------------===//
// Stream
//===----------------------------------------------------------------------===//

Stream::Stream(std::string Name) : SyncObject("stream", std::move(Name)) {}

size_t Stream::push(const void *Data, size_t N) {
  size_t Space = kStreamCapacity - (Buffer.size() - Head);
  size_t Take = N < Space ? N : Space;
  if (Take == 0)
    return 0;
  Buffer.append(static_cast<const char *>(Data), Take);
  ++InEpoch;
  return Take;
}

size_t Stream::pop(void *Data, size_t N) {
  size_t Have = Buffer.size() - Head;
  size_t Take = N < Have ? N : Have;
  if (Take == 0)
    return 0;
  std::memcpy(Data, Buffer.data() + Head, Take);
  Head += Take;
  if (Head == Buffer.size()) {
    Buffer.clear();
    Head = 0;
  }
  ++OutEpoch;
  return Take;
}

void Stream::dropReader() {
  ICB_ASSERT(Readers > 0, "reader refcount underflow");
  if (--Readers == 0)
    ++InEpoch; // Writers must wake to observe EPIPE.
  ++OutEpoch;
}

void Stream::dropWriter() {
  ICB_ASSERT(Writers > 0, "writer refcount underflow");
  if (--Writers == 0)
    ++InEpoch; // Readers must wake to observe EOF.
  ++OutEpoch;
}

bool Stream::canProceed(const rt::PendingOp &Op, rt::ThreadId Tid) const {
  (void)Tid;
  if (Op.Kind != rt::OpKind::IoWait)
    return true;
  return Op.IsWrite ? writable() : readable();
}

//===----------------------------------------------------------------------===//
// EventFd
//===----------------------------------------------------------------------===//

EventFd::EventFd(std::string Name, uint64_t Initial, bool SemaphoreMode)
    : SyncObject("eventfd", std::move(Name)), Count(Initial),
      SemaphoreMode(SemaphoreMode) {}

uint64_t EventFd::take() {
  ICB_ASSERT(Count > 0, "take() on an empty eventfd");
  uint64_t V = SemaphoreMode ? 1 : Count;
  Count -= V;
  ++OutEpoch;
  return V;
}

void EventFd::add(uint64_t V) {
  Count += V;
  if (V > 0)
    ++InEpoch;
}

bool EventFd::canProceed(const rt::PendingOp &Op, rt::ThreadId Tid) const {
  (void)Tid;
  if (Op.Kind != rt::OpKind::IoWait)
    return true;
  // Writes never block in the model; reads wait for a nonzero count.
  return Op.IsWrite ? true : readable();
}
