//===- io/Epoll.h - Modeled readiness multiplexing --------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modeled epoll instance, also reused as the transient readiness
/// gate behind poll(2)/select(2). An Epoll is an rt::SyncObject: a fiber
/// parked in epoll_wait publishes OpKind::IoWait on it, and canProceed
/// answers from the watch list without running the thread — a watcher is
/// enabled exactly when some watch is *reportable*:
///
///   * level-triggered: the watched direction is ready right now;
///   * edge-triggered (EPOLLET): ready AND a new readiness edge (channel
///     epoch) arrived since this watch last reported — consuming data
///     without draining it therefore does NOT re-arm the watch, which is
///     the lost-wakeup the model exists to explore.
///
/// Timed waits use the CondVar::timedWait discipline: a timed waiter
/// registers before parking and stays enabled, so being scheduled with no
/// reportable watch IS the timeout branch (epoll_wait returns 0) — no
/// clock, deterministic replay.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_IO_EPOLL_H
#define ICB_IO_EPOLL_H

#include "io/Channel.h"
#include <cstdint>
#include <vector>

namespace icb::io {

/// One registered interest. Object pointers are resolved at epoll_ctl
/// time and scrubbed by IoContext::close(), so they always point into the
/// live per-execution arena.
struct Watch {
  int Fd = -1;
  uint32_t Events = 0; ///< EPOLLIN | EPOLLOUT | EPOLLET (model subset).
  uint64_t Data = 0;   ///< epoll_data.u64, returned verbatim.
  Stream *Recv = nullptr;
  Stream *Send = nullptr;
  EventFd *Efd = nullptr;
  uint64_t SeenIn = 0;  ///< In-direction epoch at last report (EPOLLET).
  uint64_t SeenOut = 0; ///< Out-direction epoch at last report (EPOLLET).
};

class Epoll : public rt::SyncObject {
public:
  explicit Epoll(std::string Name);

  /// Watch-list maintenance (epoll_ctl / poll-gate setup / close scrub).
  int findWatch(int Fd) const; ///< Index, or -1.
  void addWatch(const Watch &W) { Watches.push_back(W); }
  void removeWatch(int Fd);
  void clearWatches() { Watches.clear(); }
  size_t watchCount() const { return Watches.size(); }
  Watch &watchAt(size_t I) { return Watches[I]; }

  /// True if the watched in/out direction is ready *and* (for EPOLLET)
  /// carries an unreported edge.
  bool reportableIn(const Watch &W) const;
  bool reportableOut(const Watch &W) const;
  bool reportable(const Watch &W) const {
    return reportableIn(W) || reportableOut(W);
  }
  bool anyReportable() const;

  /// Waiter registration, CondVar-style: register before parking so
  /// canProceed can tell timed from untimed waiters.
  void addWaiter(rt::ThreadId Tid, bool Timed);
  void removeWaiter(rt::ThreadId Tid);

  bool canProceed(const rt::PendingOp &Op, rt::ThreadId Tid) const override;

private:
  std::vector<Watch> Watches;
  std::vector<rt::ThreadId> Waiters;
  std::vector<bool> Timed;
};

} // namespace icb::io

#endif // ICB_IO_EPOLL_H
