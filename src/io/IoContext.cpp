//===- io/IoContext.cpp - Per-execution modeled fd table ------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/IoContext.h"
#include "obs/Metrics.h"
#include "obs/PhaseTimer.h"
#include "rt/Scheduler.h"
#include "support/Debug.h"
#include "support/Format.h"
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/eventfd.h>
#include <sys/socket.h>

using namespace icb;
using namespace icb::io;

namespace {

thread_local IoContext WorkerIo;

/// Publishes a never-blocking io scheduling point on \p Obj. All modeled
/// state (fd table, streams, watches, serial counters) is read and
/// mutated strictly *after* the point, so every interleaving-sensitive io
/// effect lives in a slice anchored at an io op — the invariant the POR
/// independence relation's "io ops never commute" rule relies on.
void ioOpPoint(rt::Scheduler *S, rt::SyncObject *Obj, const char *OpName) {
  rt::PendingOp Op;
  Op.Kind = rt::OpKind::IoOp;
  Op.Object = Obj;
  Op.VarCode = Obj->varCode();
  Op.Detail = strFormat("%s %s", OpName, Obj->name().c_str());
  S->schedulingPoint(std::move(Op));
  Obj->checkAlive(OpName);
}

/// Publishes a blocking io wait on \p Obj and parks until it is enabled
/// (the object's canProceed for the given direction, or — for registered
/// timed waiters — unconditionally, making the timeout a schedule
/// branch). Counts the deterministic io_block/io_wake pair when the park
/// actually found the object unready.
void ioWaitPoint(rt::Scheduler *S, rt::SyncObject &Obj, bool IsWrite,
                 const char *OpName) {
  rt::PendingOp Op;
  Op.Kind = rt::OpKind::IoWait;
  Op.Object = &Obj;
  Op.VarCode = Obj.varCode();
  Op.IsWrite = IsWrite;
  Op.Detail = strFormat("%s %s", OpName, Obj.name().c_str());
  bool Ready = Obj.canProceed(Op, S->runningThread());
  obs::MetricShard *MS = S->metricShard();
#ifndef ICB_NO_METRICS
  // Intern before schedulingPoint moves the op; the wake event reuses the
  // id (same buffer, same single writer across the park).
  uint32_t DetailId = 0;
  bool Tracing = !Ready && MS && MS->Trace;
  if (Tracing)
    DetailId = MS->Trace->intern(Op.Detail);
  auto TraceIo = [&](obs::TraceEventKind Kind) {
    obs::TraceEvent Ev;
    Ev.Kind = Kind;
    Ev.Nanos = obs::nowNanos();
    Ev.Str = DetailId;
    MS->Trace->append(Ev);
  };
#endif
  if (!Ready) {
    obs::count(MS, obs::Counter::IoBlock);
#ifndef ICB_NO_METRICS
    if (Tracing)
      TraceIo(obs::TraceEventKind::IoBlock);
#endif
  }
  S->schedulingPoint(std::move(Op));
  if (!Ready) {
    obs::count(MS, obs::Counter::IoWake);
#ifndef ICB_NO_METRICS
    if (Tracing)
      TraceIo(obs::TraceEventKind::IoWake);
#endif
  }
  Obj.checkAlive(OpName);
}

uint64_t inEpochOf(const Watch &W) {
  return W.Recv ? W.Recv->inEpoch() : W.Efd->inEpoch();
}

uint64_t outEpochOf(const Watch &W) {
  return W.Send ? W.Send->outEpoch() : W.Efd->outEpoch();
}

constexpr uint32_t kSupportedEpollEvents =
    EPOLLIN | EPOLLOUT | EPOLLET | EPOLLHUP | EPOLLERR | EPOLLRDHUP;

} // namespace

IoContext &IoContext::current() { return WorkerIo; }

void IoContext::begin() {
  reset();
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S, "IoContext::begin outside a controlled execution");
  Live = true;
  TableObj = make<rt::SyncObject>("fdtable", "fdtable");
}

void IoContext::end() { reset(); }

void IoContext::reset() {
  Table.clear();
  TableObj = nullptr;
  // Reverse creation order, mirroring posix::ExecContext::reset.
  while (!Arena.empty())
    Arena.pop_back();
  std::memset(Serial, 0, sizeof(Serial));
  Live = false;
}

IoContext::FdEntry *IoContext::entry(int Fd) {
  size_t I = static_cast<size_t>(Fd - kFdBase);
  if (Fd < kFdBase || I >= Table.size() || Table[I].K == FdEntry::Kind::Closed)
    return nullptr;
  return &Table[I];
}

const IoContext::FdEntry *IoContext::entry(int Fd) const {
  return const_cast<IoContext *>(this)->entry(Fd);
}

int IoContext::allocFd() {
  for (size_t I = 0; I != Table.size(); ++I)
    if (Table[I].K == FdEntry::Kind::Closed)
      return kFdBase + static_cast<int>(I);
  Table.push_back(FdEntry{});
  return kFdBase + static_cast<int>(Table.size() - 1);
}

rt::SyncObject *IoContext::primary(const FdEntry &F) const {
  if (F.Recv)
    return F.Recv;
  if (F.Send)
    return F.Send;
  if (F.Efd)
    return F.Efd;
  if (F.Ep)
    return F.Ep;
  return TableObj;
}

std::string IoContext::fdName(int Fd) const {
  const FdEntry *F = entry(Fd);
  if (!F)
    return std::string();
  return primary(*F)->name();
}

//===----------------------------------------------------------------------===//
// Creation
//===----------------------------------------------------------------------===//

int IoContext::pipe2(int Out[2], int Flags) {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled pipe2 outside a controlled execution");
  ioOpPoint(S, TableObj, "pipe2");
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  if (Flags & ~(O_NONBLOCK | O_CLOEXEC))
    return -EINVAL;
  Stream *Sm = make<Stream>(strFormat("pipe#%u", Serial[0]++));
  int R = allocFd();
  {
    FdEntry &E = Table[R - kFdBase];
    E.K = FdEntry::Kind::PipeRead;
    E.Recv = Sm;
    E.NonBlock = (Flags & O_NONBLOCK) != 0;
  }
  int W = allocFd();
  {
    FdEntry &E = Table[W - kFdBase];
    E.K = FdEntry::Kind::PipeWrite;
    E.Send = Sm;
    E.NonBlock = (Flags & O_NONBLOCK) != 0;
  }
  Out[0] = R;
  Out[1] = W;
  return 0;
}

int IoContext::socketpair(int Domain, int Type, int Protocol, int Out[2]) {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled socketpair outside a controlled execution");
  ioOpPoint(S, TableObj, "socketpair");
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  int TypeFlags = Type & (SOCK_NONBLOCK | SOCK_CLOEXEC);
  int BaseType = Type & ~(SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (Domain != AF_UNIX)
    return -EAFNOSUPPORT;
  if (BaseType != SOCK_STREAM || Protocol != 0)
    return -EOPNOTSUPP;
  unsigned Id = Serial[1]++;
  Stream *ToA = make<Stream>(strFormat("sock#%u.a", Id));
  Stream *ToB = make<Stream>(strFormat("sock#%u.b", Id));
  int A = allocFd();
  {
    FdEntry &E = Table[A - kFdBase];
    E.K = FdEntry::Kind::Sock;
    E.Recv = ToA;
    E.Send = ToB;
    E.NonBlock = (TypeFlags & SOCK_NONBLOCK) != 0;
  }
  int B = allocFd();
  {
    FdEntry &E = Table[B - kFdBase];
    E.K = FdEntry::Kind::Sock;
    E.Recv = ToB;
    E.Send = ToA;
    E.NonBlock = (TypeFlags & SOCK_NONBLOCK) != 0;
  }
  Out[0] = A;
  Out[1] = B;
  return 0;
}

int IoContext::eventfd(unsigned Initial, int Flags) {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled eventfd outside a controlled execution");
  ioOpPoint(S, TableObj, "eventfd");
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  if (Flags & ~(EFD_SEMAPHORE | EFD_NONBLOCK | EFD_CLOEXEC))
    return -EINVAL;
  EventFd *E = make<EventFd>(strFormat("efd#%u", Serial[2]++), Initial,
                             (Flags & EFD_SEMAPHORE) != 0);
  int Fd = allocFd();
  FdEntry &F = Table[Fd - kFdBase];
  F.K = FdEntry::Kind::Event;
  F.Efd = E;
  F.NonBlock = (Flags & EFD_NONBLOCK) != 0;
  return Fd;
}

int IoContext::epollCreate() {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled epoll_create outside a controlled execution");
  ioOpPoint(S, TableObj, "epoll_create");
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  Epoll *E = make<Epoll>(strFormat("epoll#%u", Serial[3]++));
  int Fd = allocFd();
  FdEntry &F = Table[Fd - kFdBase];
  F.K = FdEntry::Kind::Poller;
  F.Ep = E;
  return Fd;
}

//===----------------------------------------------------------------------===//
// Data plane
//===----------------------------------------------------------------------===//

long IoContext::readStream(FdEntry &F, int Fd, void *Buf, unsigned long N) {
  rt::Scheduler *S = rt::Scheduler::current();
  Stream *Sm = F.Recv;
  bool NonBlock = F.NonBlock;
  if (N == 0) {
    ioOpPoint(S, Sm, "read");
    return 0;
  }
  if (NonBlock)
    ioOpPoint(S, Sm, "read");
  else
    ioWaitPoint(S, *Sm, /*IsWrite=*/false, "read");
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  // The fd may have been closed (or its slot reused) while we were parked.
  const FdEntry *G = entry(Fd);
  if (!G || G->Recv != Sm)
    return -EBADF;
  if (!Sm->readable())
    return -EAGAIN; // Only reachable on O_NONBLOCK fds.
  if (Sm->eof())
    return 0;
  return static_cast<long>(Sm->pop(Buf, N));
}

long IoContext::readEvent(FdEntry &F, void *Buf, unsigned long N) {
  rt::Scheduler *S = rt::Scheduler::current();
  EventFd *E = F.Efd;
  bool NonBlock = F.NonBlock;
  if (N < sizeof(uint64_t)) {
    ioOpPoint(S, E, "read");
    return -EINVAL;
  }
  if (NonBlock)
    ioOpPoint(S, E, "read");
  else
    ioWaitPoint(S, *E, /*IsWrite=*/false, "read");
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  if (!E->readable())
    return -EAGAIN; // Only reachable on EFD_NONBLOCK fds.
  uint64_t V = E->take();
  std::memcpy(Buf, &V, sizeof(V));
  return sizeof(V);
}

long IoContext::read(int Fd, void *Buf, unsigned long N) {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled read outside a controlled execution");
  FdEntry *F = entry(Fd);
  if (!F) {
    ioOpPoint(S, TableObj, "read");
    return -EBADF;
  }
  switch (F->K) {
  case FdEntry::Kind::Poller:
    ioOpPoint(S, F->Ep, "read");
    return -EINVAL;
  case FdEntry::Kind::PipeWrite:
    ioOpPoint(S, F->Send, "read");
    return -EBADF;
  case FdEntry::Kind::Event:
    return readEvent(*F, Buf, N);
  default:
    return readStream(*F, Fd, Buf, N);
  }
}

long IoContext::write(int Fd, const void *Buf, unsigned long N) {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled write outside a controlled execution");
  FdEntry *F = entry(Fd);
  if (!F) {
    ioOpPoint(S, TableObj, "write");
    return -EBADF;
  }
  if (F->K == FdEntry::Kind::Poller) {
    ioOpPoint(S, F->Ep, "write");
    return -EINVAL;
  }
  if (F->K == FdEntry::Kind::PipeRead) {
    ioOpPoint(S, F->Recv, "write");
    return -EBADF;
  }
  if (F->K == FdEntry::Kind::Event) {
    EventFd *E = F->Efd;
    if (N < sizeof(uint64_t)) {
      ioOpPoint(S, E, "write");
      return -EINVAL;
    }
    uint64_t V;
    std::memcpy(&V, Buf, sizeof(V));
    ioOpPoint(S, E, "write");
    obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
    if (V == ~0ULL)
      return -EINVAL;
    E->add(V);
    return sizeof(V);
  }
  Stream *Sm = F->Send;
  bool NonBlock = F->NonBlock;
  if (N == 0) {
    ioOpPoint(S, Sm, "write");
    return 0;
  }
  if (NonBlock)
    ioOpPoint(S, Sm, "write");
  else
    ioWaitPoint(S, *Sm, /*IsWrite=*/true, "write");
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  const FdEntry *G = entry(Fd);
  if (!G || G->Send != Sm)
    return -EBADF;
  // The model reports EPIPE and raises no SIGPIPE (DESIGN.md §11).
  if (Sm->readerGone())
    return -EPIPE;
  size_t W = Sm->push(Buf, N);
  if (W == 0)
    return -EAGAIN; // Only reachable on O_NONBLOCK fds (buffer full).
  return static_cast<long>(W);
}

int IoContext::close(int Fd) {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled close outside a controlled execution");
  FdEntry *F = entry(Fd);
  if (!F) {
    ioOpPoint(S, TableObj, "close");
    return -EBADF;
  }
  rt::SyncObject *Target = primary(*F);
  ioOpPoint(S, Target, "close");
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  FdEntry *G = entry(Fd);
  if (!G || primary(*G) != Target)
    return -EBADF; // Double close raced with us at the point.
  switch (G->K) {
  case FdEntry::Kind::PipeRead:
    G->Recv->dropReader();
    break;
  case FdEntry::Kind::PipeWrite:
    G->Send->dropWriter();
    break;
  case FdEntry::Kind::Sock:
    G->Recv->dropReader();
    G->Send->dropWriter();
    break;
  case FdEntry::Kind::Event:
    break;
  case FdEntry::Kind::Poller:
    G->Ep->clearWatches();
    break;
  case FdEntry::Kind::Closed:
    return -EBADF;
  }
  // Linux drops epoll registrations when the last fd for the open file
  // goes away; modeled fds are never duplicated, so that is now.
  for (FdEntry &E : Table)
    if (E.K == FdEntry::Kind::Poller)
      E.Ep->removeWatch(Fd);
  *G = FdEntry{};
  return 0;
}

int IoContext::fcntl(int Fd, int Cmd, long Arg) {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled fcntl outside a controlled execution");
  FdEntry *F = entry(Fd);
  if (!F) {
    ioOpPoint(S, TableObj, "fcntl");
    return -EBADF;
  }
  rt::SyncObject *Target = primary(*F);
  ioOpPoint(S, Target, "fcntl");
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  FdEntry *G = entry(Fd);
  if (!G || primary(*G) != Target)
    return -EBADF;
  switch (Cmd) {
  case F_GETFL: {
    int Access = G->K == FdEntry::Kind::PipeRead    ? O_RDONLY
                 : G->K == FdEntry::Kind::PipeWrite ? O_WRONLY
                                                    : O_RDWR;
    return Access | (G->NonBlock ? O_NONBLOCK : 0);
  }
  case F_SETFL:
    G->NonBlock = (Arg & O_NONBLOCK) != 0;
    return 0;
  case F_GETFD:
  case F_SETFD:
    return 0;
  default:
    return -EINVAL;
  }
}

//===----------------------------------------------------------------------===//
// Readiness multiplexing
//===----------------------------------------------------------------------===//

int IoContext::waitGate(Epoll &Gate, bool Timed) {
  rt::Scheduler *S = rt::Scheduler::current();
  Gate.addWaiter(S->runningThread(), Timed);
  ioWaitPoint(S, Gate, /*IsWrite=*/false, "wait");
  Gate.removeWaiter(S->runningThread());
  return Gate.anyReportable() ? 1 : 0;
}

int IoContext::poll(struct pollfd *Fds, unsigned long N, int TimeoutMs) {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled poll outside a controlled execution");
  ioOpPoint(S, TableObj, "poll");
  Epoll *Gate;
  unsigned NVal = 0;
  {
    obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
    Gate = make<Epoll>(strFormat("poll#%u", Serial[4]++));
    for (unsigned long I = 0; I != N; ++I) {
      Fds[I].revents = 0;
      int Fd = Fds[I].fd;
      if (Fd < 0)
        continue;
      const FdEntry *T = entry(Fd);
      if (!T || T->K == FdEntry::Kind::Poller) {
        Fds[I].revents = POLLNVAL;
        ++NVal;
        continue;
      }
      Watch W;
      W.Fd = Fd;
      W.Events = ((Fds[I].events & POLLIN) ? EPOLLIN : 0u) |
                 ((Fds[I].events & POLLOUT) ? EPOLLOUT : 0u);
      W.Recv = T->Recv;
      W.Send = T->Send;
      W.Efd = T->Efd;
      Gate->addWatch(W);
    }
  }
  if (NVal == 0) {
    if (!waitGate(*Gate, TimeoutMs >= 0)) {
      obs::count(S->metricShard(), obs::Counter::IoSpurious);
      return 0;
    }
  } else {
    // POSIX: POLLNVAL entries make poll return without waiting.
    ioOpPoint(S, Gate, "poll");
  }
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  int Count = 0;
  for (unsigned long I = 0; I != N; ++I) {
    int Fd = Fds[I].fd;
    if (Fd < 0)
      continue;
    if (Fds[I].revents == POLLNVAL) {
      ++Count;
      continue;
    }
    const FdEntry *T = entry(Fd);
    if (!T || T->K == FdEntry::Kind::Poller) {
      Fds[I].revents = POLLNVAL; // Closed while we were parked.
      ++Count;
      continue;
    }
    short Re = 0;
    bool In = T->Recv ? T->Recv->readable() : T->Efd && T->Efd->readable();
    bool Out = T->Send ? T->Send->writable() : T->Efd != nullptr;
    if ((Fds[I].events & POLLIN) && In)
      Re |= POLLIN;
    if ((Fds[I].events & POLLOUT) && Out)
      Re |= POLLOUT;
    if (T->Recv && T->Recv->writerGone())
      Re |= POLLHUP;
    if (T->Send && T->Send->readerGone())
      Re |= POLLERR;
    if (Re) {
      Fds[I].revents = Re;
      ++Count;
    }
  }
  return Count;
}

int IoContext::select(int Nfds, fd_set *R, fd_set *W, fd_set *X,
                      struct timeval *T) {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled select outside a controlled execution");
  ioOpPoint(S, TableObj, "select");
  if (Nfds < 0 || Nfds > FD_SETSIZE)
    return -EINVAL;
  Epoll *Gate;
  {
    obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
    Gate = make<Epoll>(strFormat("select#%u", Serial[5]++));
    for (int Fd = 0; Fd < Nfds; ++Fd) {
      bool InR = R && FD_ISSET(Fd, R);
      bool InW = W && FD_ISSET(Fd, W);
      if (!InR && !InW)
        continue;
      const FdEntry *E = entry(Fd);
      if (!E || E->K == FdEntry::Kind::Poller)
        return -EBADF; // Only modeled data fds are selectable under test.
      Watch Wa;
      Wa.Fd = Fd;
      Wa.Events = (InR ? EPOLLIN : 0u) | (InW ? EPOLLOUT : 0u);
      Wa.Recv = E->Recv;
      Wa.Send = E->Send;
      Wa.Efd = E->Efd;
      Gate->addWatch(Wa);
    }
  }
  bool Ready = waitGate(*Gate, /*Timed=*/T != nullptr) != 0;
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  fd_set RIn, WIn;
  FD_ZERO(&RIn);
  FD_ZERO(&WIn);
  if (R) {
    RIn = *R;
    FD_ZERO(R);
  }
  if (W) {
    WIn = *W;
    FD_ZERO(W);
  }
  if (X)
    FD_ZERO(X); // Exceptional conditions are not modeled.
  if (!Ready) {
    obs::count(S->metricShard(), obs::Counter::IoSpurious);
    return 0;
  }
  int Count = 0;
  for (int Fd = 0; Fd < Nfds; ++Fd) {
    bool InR = R && FD_ISSET(Fd, &RIn);
    bool InW = W && FD_ISSET(Fd, &WIn);
    if (!InR && !InW)
      continue;
    const FdEntry *E = entry(Fd);
    if (!E)
      continue; // Closed while we were parked; report nothing.
    bool CanR = E->Recv ? E->Recv->readable() : E->Efd && E->Efd->readable();
    bool CanW = E->Send ? E->Send->writable() : E->Efd != nullptr;
    if (InR && CanR) {
      FD_SET(Fd, R);
      ++Count;
    }
    if (InW && CanW) {
      FD_SET(Fd, W);
      ++Count;
    }
  }
  return Count;
}

int IoContext::epollCtl(int Ep, int Op, int Fd, struct epoll_event *Ev) {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled epoll_ctl outside a controlled execution");
  FdEntry *E = entry(Ep);
  if (!E || E->K != FdEntry::Kind::Poller) {
    ioOpPoint(S, TableObj, "epoll_ctl");
    return E ? -EINVAL : -EBADF;
  }
  Epoll *P = E->Ep;
  ioOpPoint(S, P, "epoll_ctl");
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  FdEntry *G = entry(Ep);
  if (!G || G->Ep != P)
    return -EBADF;
  FdEntry *T = entry(Fd);
  if (!T)
    return -EBADF;
  if (Fd == Ep || T->K == FdEntry::Kind::Poller)
    return -EINVAL; // Nested epoll is not modeled (DESIGN.md §11).
  switch (Op) {
  case EPOLL_CTL_ADD: {
    if (!Ev)
      return -EFAULT;
    if (P->findWatch(Fd) >= 0)
      return -EEXIST;
    if (Ev->events & ~kSupportedEpollEvents)
      return -EINVAL; // EPOLLONESHOT/EXCLUSIVE/... are not modeled.
    Watch W;
    W.Fd = Fd;
    W.Events = Ev->events;
    W.Data = Ev->data.u64;
    W.Recv = T->Recv;
    W.Send = T->Send;
    W.Efd = T->Efd;
    P->addWatch(W);
    return 0;
  }
  case EPOLL_CTL_MOD: {
    if (!Ev)
      return -EFAULT;
    int I = P->findWatch(Fd);
    if (I < 0)
      return -ENOENT;
    if (Ev->events & ~kSupportedEpollEvents)
      return -EINVAL;
    Watch &W = P->watchAt(static_cast<size_t>(I));
    W.Events = Ev->events;
    W.Data = Ev->data.u64;
    W.SeenIn = 0; // MOD re-arms an edge-triggered watch.
    W.SeenOut = 0;
    return 0;
  }
  case EPOLL_CTL_DEL: {
    if (P->findWatch(Fd) < 0)
      return -ENOENT;
    P->removeWatch(Fd);
    return 0;
  }
  default:
    return -EINVAL;
  }
}

int IoContext::epollWait(int Ep, struct epoll_event *Evs, int MaxEvents,
                         int TimeoutMs) {
  rt::Scheduler *S = rt::Scheduler::current();
  ICB_ASSERT(S && Live, "modeled epoll_wait outside a controlled execution");
  FdEntry *E = entry(Ep);
  if (!E || E->K != FdEntry::Kind::Poller) {
    ioOpPoint(S, TableObj, "epoll_wait");
    return E ? -EINVAL : -EBADF;
  }
  Epoll *P = E->Ep;
  if (MaxEvents <= 0 || !Evs) {
    ioOpPoint(S, P, "epoll_wait");
    return -EINVAL;
  }
  bool Timed = TimeoutMs >= 0;
  P->addWaiter(S->runningThread(), Timed);
  ioWaitPoint(S, *P, /*IsWrite=*/false, "epoll_wait");
  P->removeWaiter(S->runningThread());
  obs::ScopedPhase IoTimer(S->metricShard(), obs::Phase::Io);
  int N = 0;
  for (size_t I = 0; I != P->watchCount() && N < MaxEvents; ++I) {
    Watch &W = P->watchAt(I);
    uint32_t Re = 0;
    if (P->reportableIn(W)) {
      Re |= EPOLLIN;
      W.SeenIn = inEpochOf(W);
    }
    if (P->reportableOut(W)) {
      Re |= EPOLLOUT;
      W.SeenOut = outEpochOf(W);
    }
    if (!Re)
      continue;
    if (W.Recv && W.Recv->writerGone())
      Re |= EPOLLHUP;
    if (W.Send && W.Send->readerGone())
      Re |= EPOLLERR;
    Evs[N].events = Re;
    Evs[N].data.u64 = W.Data;
    ++N;
  }
  if (N == 0) {
    // Only a registered timed waiter can be scheduled with nothing
    // reportable: this is the modeled timeout expiry.
    obs::count(S->metricShard(), obs::Counter::IoSpurious);
  }
  return N;
}
