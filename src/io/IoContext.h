//===- io/IoContext.h - Per-execution modeled fd table ----------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic, per-execution file-descriptor table behind the
/// POSIX frontend's modeled-I/O surface (pipe/socketpair/eventfd +
/// poll/select/epoll). One IoContext lives per worker thread (like
/// posix::ExecContext, which owns its begin/end lifecycle); modeled fds
/// are numbered kFdBase + slot with lowest-free slot reuse, so the fd
/// values and the serial object names (pipe#0, sock#1, epoll#0, ...) a
/// test observes are functions of the schedule alone — identical across
/// --jobs 1 vs N, kill/resume, and replay.
///
/// Every entry point publishes an io scheduling point (OpKind::IoWait
/// when it can block, OpKind::IoOp otherwise) *before* touching modeled
/// state, so all interleaving-sensitive io effects are anchored at io
/// ops, which the POR independence relation treats as always mutually
/// dependent (rt/ReplayExecutor.h). Blocking ops park exactly like a
/// condvar wait; a peer's write/close is the wakeup edge; EAGAIN, short
/// writes and partial reads are plain outcomes of where a schedule placed
/// the op.
///
/// Methods return >= 0 on success and -errno on failure; the posix shim
/// (posix/PosixIo.cpp) converts to the -1-and-errno convention.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_IO_IOCONTEXT_H
#define ICB_IO_IOCONTEXT_H

#include "io/Channel.h"
#include "io/Epoll.h"
#include <memory>
#include <poll.h>
#include <string>
#include <sys/epoll.h>
#include <sys/select.h>
#include <vector>

namespace icb::io {

/// First modeled fd number. Low enough that modeled fds fit in an fd_set
/// (select support requires fd < FD_SETSIZE = 1024), high enough that
/// real kernel fds of the host process never reach it in practice; the
/// shim routes fd >= kFdBase to the model and everything below to the
/// real syscall.
inline constexpr int kFdBase = 512;

class IoContext {
public:
  /// The calling worker thread's io context (thread_local, like
  /// posix::ExecContext).
  static IoContext &current();

  /// Starts a fresh execution: empty table, serial names restart at #0.
  void begin();
  /// Ends an execution cleanly; drops all modeled state.
  void end();
  /// Discards leftover state (also from executions that died mid-run via
  /// failExecution). Safe to call outside any execution.
  void reset();

  bool live() const { return Live; }
  bool modeled(int Fd) const { return Fd >= kFdBase; }

  // Creation. Return the new fd (pairs via Out), or -errno.
  int pipe2(int Out[2], int Flags);
  int socketpair(int Domain, int Type, int Protocol, int Out[2]);
  int eventfd(unsigned Initial, int Flags);
  int epollCreate();

  // Data plane.
  long read(int Fd, void *Buf, unsigned long N);
  long write(int Fd, const void *Buf, unsigned long N);
  int close(int Fd);
  int fcntl(int Fd, int Cmd, long Arg);

  // Readiness multiplexing.
  int poll(struct pollfd *Fds, unsigned long N, int TimeoutMs);
  int select(int Nfds, fd_set *R, fd_set *W, fd_set *X, struct timeval *T);
  int epollCtl(int Ep, int Op, int Fd, struct epoll_event *Ev);
  int epollWait(int Ep, struct epoll_event *Evs, int MaxEvents, int TimeoutMs);

  /// Serial name of the object behind a modeled fd ("pipe#0", "sock#2",
  /// ...); empty for closed/unknown fds. Tests assert these to pin fd
  /// table determinism.
  std::string fdName(int Fd) const;

private:
  struct FdEntry {
    enum class Kind : uint8_t { Closed, PipeRead, PipeWrite, Sock, Event, Poller };
    Kind K = Kind::Closed;
    Stream *Recv = nullptr; ///< Direction this fd reads from.
    Stream *Send = nullptr; ///< Direction this fd writes to.
    EventFd *Efd = nullptr;
    Epoll *Ep = nullptr;
    bool NonBlock = false;
  };

  FdEntry *entry(int Fd);
  const FdEntry *entry(int Fd) const;
  int allocFd(); ///< Lowest free slot (deterministic reuse).
  rt::SyncObject *primary(const FdEntry &F) const;

  template <typename T, typename... Args> T *make(Args &&...As) {
    Arena.push_back(std::make_unique<T>(std::forward<Args>(As)...));
    return static_cast<T *>(Arena.back().get());
  }

  long readStream(FdEntry &F, int Fd, void *Buf, unsigned long N);
  long readEvent(FdEntry &F, void *Buf, unsigned long N);
  int waitGate(Epoll &Gate, bool Timed); ///< Parks; returns 1 ready / 0 expired.

  std::vector<FdEntry> Table;
  /// Objects live here until reset — never freed mid-execution, so parked
  /// waiters and epoll watches hold stable pointers even across close().
  std::vector<std::unique_ptr<rt::SyncObject>> Arena;
  /// Scheduling-point target for table-level ops (creation, bad fds).
  rt::SyncObject *TableObj = nullptr;
  /// Serial name counters: pipe, sock, efd, epoll, poll, select.
  unsigned Serial[6] = {};
  bool Live = false;
};

} // namespace icb::io

#endif // ICB_IO_IOCONTEXT_H
