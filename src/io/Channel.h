//===- io/Channel.h - Modeled byte streams and eventfds ---------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-carrying halves of the modeled file-descriptor table
/// (io/IoContext.h): a Stream is one direction of a pipe or socketpair (a
/// bounded byte FIFO with open-end reference counts), an EventFd is the
/// kernel eventfd counter. Both are rt::SyncObject subclasses so a fiber
/// parked in a blocking read/write publishes an OpKind::IoWait the
/// scheduler can evaluate without running it — exactly the CondVar
/// discipline, with the peer's write/close as the wakeup edge.
///
/// Readiness *epochs* (InEpoch / OutEpoch) count the edges: every push of
/// data and every writer close bumps InEpoch; every drain of space and
/// every reader close bumps OutEpoch. Edge-triggered epoll watches compare
/// their last-reported epoch against these, which is what makes the
/// level-vs-edge lost-wakeup class explorable.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_IO_CHANNEL_H
#define ICB_IO_CHANNEL_H

#include "rt/SyncObject.h"
#include <cstddef>
#include <cstdint>
#include <string>

namespace icb::io {

/// Byte capacity of one modeled stream direction (the modeled pipe
/// buffer). Writes past it short-write or block, which is how the model
/// makes short writes an explorable outcome.
inline constexpr size_t kStreamCapacity = 4096;

/// One direction of a modeled pipe/socketpair: a bounded byte FIFO with
/// reference-counted ends. All mutation happens in the slice after an io
/// scheduling point (IoContext enforces this), so no locking is needed —
/// fibers of one worker are cooperatively scheduled.
class Stream : public rt::SyncObject {
public:
  explicit Stream(std::string Name);

  /// A read can complete without blocking: data is buffered, or every
  /// writer closed (EOF).
  bool readable() const { return !Buffer.empty() || Writers == 0; }

  /// A write can complete without blocking: buffer space exists, or every
  /// reader closed (EPIPE).
  bool writable() const { return Buffer.size() < kStreamCapacity || Readers == 0; }

  bool eof() const { return Buffer.empty() && Writers == 0; }
  bool readerGone() const { return Readers == 0; }
  bool writerGone() const { return Writers == 0; }
  size_t bytes() const { return Buffer.size(); }

  /// Appends up to min(N, free space) bytes; returns the count appended
  /// (a short write when the buffer is nearly full).
  size_t push(const void *Data, size_t N);

  /// Removes up to min(N, buffered) bytes into \p Data; returns the count
  /// (a partial read when less is buffered than asked for).
  size_t pop(void *Data, size_t N);

  void dropReader();
  void dropWriter();

  uint64_t inEpoch() const { return InEpoch; }
  uint64_t outEpoch() const { return OutEpoch; }

  bool canProceed(const rt::PendingOp &Op, rt::ThreadId Tid) const override;

private:
  std::string Buffer;
  size_t Head = 0; ///< Consumed prefix of Buffer (compacted lazily).
  unsigned Readers = 1;
  unsigned Writers = 1;
  uint64_t InEpoch = 0;
  uint64_t OutEpoch = 0;
};

/// A modeled eventfd(2) counter. Reads block (or EAGAIN) while the count
/// is zero; writes add and never block in the model (the counter ceiling
/// is not a reachable state in bounded explorations).
class EventFd : public rt::SyncObject {
public:
  EventFd(std::string Name, uint64_t Initial, bool SemaphoreMode);

  bool readable() const { return Count > 0; }

  /// EFD_SEMAPHORE reads take 1; plain reads take the whole count.
  uint64_t take();
  void add(uint64_t V);

  uint64_t inEpoch() const { return InEpoch; }
  uint64_t outEpoch() const { return OutEpoch; }

  bool canProceed(const rt::PendingOp &Op, rt::ThreadId Tid) const override;

private:
  uint64_t Count;
  bool SemaphoreMode;
  uint64_t InEpoch = 0;
  uint64_t OutEpoch = 0;
};

} // namespace icb::io

#endif // ICB_IO_CHANNEL_H
