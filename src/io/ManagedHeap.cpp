//===- io/ManagedHeap.cpp - Quarantine + poison heap arena ----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/ManagedHeap.h"
#include "rt/Scheduler.h"
#include "support/Format.h"
#include <cstdlib>
#include <cstring>

using namespace icb;
using namespace icb::io;

namespace {

thread_local ManagedHeap WorkerHeap;

/// 16 bytes so payloads keep malloc's max_align_t alignment.
struct alignas(16) Header {
  uint32_t Magic;
  uint32_t Index; ///< Block serial == index into Blocks.
  uint64_t Pad;
};
static_assert(sizeof(Header) == 16, "header must preserve alignment");

constexpr uint32_t kLiveMagic = 0xA110CA7Eu;
constexpr uint32_t kFreedMagic = 0xDEADBEA7u;
constexpr unsigned char kPoison = 0xDB;

Header *headerOf(void *P) {
  return reinterpret_cast<Header *>(static_cast<unsigned char *>(P) -
                                    sizeof(Header));
}

[[noreturn]] void reportHeapBug(const std::string &Msg) {
  rt::Scheduler *S = rt::Scheduler::current();
  // The arena is only live inside a controlled execution, so the
  // scheduler is there to receive the report.
  S->failExecution(rt::RunStatus::UseAfterFree, Msg);
  std::abort(); // failExecution never returns.
}

} // namespace

ManagedHeap &ManagedHeap::current() { return WorkerHeap; }

void ManagedHeap::begin() {
  reset();
  Live = true;
}

void ManagedHeap::end() {
  if (Live)
    sweep();
  reset();
}

void ManagedHeap::reset() {
  for (Block &B : Blocks)
    std::free(B.Raw);
  Blocks.clear();
  Live = false;
}

int ManagedHeap::blockIndex(void *P) const {
  if (!P)
    return -1;
  const Header *H = headerOf(P);
  if (H->Magic != kLiveMagic && H->Magic != kFreedMagic)
    return -1;
  size_t I = H->Index;
  if (I >= Blocks.size() || Blocks[I].Raw + sizeof(Header) != P)
    return -1;
  return static_cast<int>(I);
}

bool ManagedHeap::owns(void *P) const { return blockIndex(P) >= 0; }

void *ManagedHeap::allocate(size_t N) {
  size_t Payload = N ? N : 1;
  auto *Raw =
      static_cast<unsigned char *>(std::malloc(sizeof(Header) + Payload));
  if (!Raw)
    return nullptr;
  auto *H = reinterpret_cast<Header *>(Raw);
  H->Magic = kLiveMagic;
  H->Index = static_cast<uint32_t>(Blocks.size());
  H->Pad = 0;
  Blocks.push_back(Block{Raw, Payload, /*Alive=*/true});
  return Raw + sizeof(Header);
}

void *ManagedHeap::callocate(size_t Count, size_t Size) {
  if (Size != 0 && Count > SIZE_MAX / Size)
    return nullptr;
  size_t N = Count * Size;
  void *P = allocate(N);
  if (P)
    std::memset(P, 0, N ? N : 1);
  return P;
}

void *ManagedHeap::reallocate(void *P, size_t N) {
  if (!P)
    return allocate(N);
  int I = blockIndex(P);
  if (I < 0)
    return std::realloc(P, N); // Foreign block: pass through.
  Block &B = Blocks[static_cast<size_t>(I)];
  if (!B.Alive)
    reportHeapBug(strFormat("double free: realloc of freed heap block #%d "
                            "(%zu bytes)",
                            I, B.Size));
  void *Q = allocate(N);
  if (!Q)
    return nullptr;
  std::memcpy(Q, P, B.Size < N ? B.Size : N);
  release(P);
  return Q;
}

void ManagedHeap::release(void *P) {
  if (!P)
    return;
  // Sweep first so a poison trample is attributed at the earliest free
  // after the stray write, deterministically.
  sweep();
  int I = blockIndex(P);
  if (I < 0) {
    std::free(P); // Foreign block (allocated outside the execution).
    return;
  }
  Block &B = Blocks[static_cast<size_t>(I)];
  if (!B.Alive)
    reportHeapBug(
        strFormat("double free of heap block #%d (%zu bytes)", I, B.Size));
  auto *H = reinterpret_cast<Header *>(B.Raw);
  H->Magic = kFreedMagic;
  B.Alive = false;
  // Quarantine: poison, keep the pages, release only at execution end.
  std::memset(B.Raw + sizeof(Header), kPoison, B.Size);
}

void ManagedHeap::sweep() {
  for (size_t I = 0; I != Blocks.size(); ++I) {
    const Block &B = Blocks[I];
    if (B.Alive)
      continue;
    const auto *H = reinterpret_cast<const Header *>(B.Raw);
    const unsigned char *Payload = B.Raw + sizeof(Header);
    bool Intact = H->Magic == kFreedMagic;
    for (size_t J = 0; Intact && J != B.Size; ++J)
      Intact = Payload[J] == kPoison;
    if (!Intact)
      reportHeapBug(strFormat("use-after-free: heap block #%zu (%zu bytes) "
                              "modified after free",
                              I, B.Size));
  }
}
