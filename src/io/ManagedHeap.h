//===- io/ManagedHeap.h - Quarantine + poison heap arena --------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-execution heap arena behind the POSIX frontend's malloc/free
/// interception. Allocations carry a header with a magic word and a
/// serial number (allocation order — deterministic per schedule, so bug
/// messages replay byte-identically); free() poisons the payload with
/// 0xDB and quarantines the block instead of releasing it, and every
/// subsequent free (plus the end of the execution) sweeps the quarantine
/// verifying the poison is intact. A write through a dangling pointer
/// trips the sweep and fails the execution as RunStatus::UseAfterFree;
/// freeing a quarantined block again is reported as a double free.
///
/// The arena only manages blocks allocated while an execution is live;
/// foreign pointers (module global ctors, libc internals) pass through to
/// the real allocator untouched. malloc/free are NOT scheduling points —
/// the racy window that makes a UAF reachable must contain a sync or io
/// scheduling point, which server code invariably has (the kv_server
/// bug's window is the response write(2)).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_IO_MANAGEDHEAP_H
#define ICB_IO_MANAGEDHEAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace icb::io {

class ManagedHeap {
public:
  /// The calling worker thread's heap arena (thread_local, lifecycle
  /// driven by posix::ExecContext like IoContext).
  static ManagedHeap &current();

  void begin();
  /// Final sweep (reports use-after-free via failExecution) and release.
  void end();
  /// Releases everything without reporting (failed-execution cleanup).
  void reset();

  bool live() const { return Live; }

  void *allocate(size_t N);
  void *callocate(size_t Count, size_t Size);
  void *reallocate(void *P, size_t N);
  void release(void *P);

  /// True if \p P is a live or quarantined payload of this arena.
  bool owns(void *P) const;

  /// Verifies every quarantined block's poison; fails the execution on a
  /// trample. Called from release() and end().
  void sweep();

private:
  struct Block {
    unsigned char *Raw = nullptr; ///< Header + payload.
    size_t Size = 0;              ///< Payload bytes.
    bool Alive = false;
  };

  int blockIndex(void *P) const; ///< -1 for foreign pointers.

  std::vector<Block> Blocks;
  bool Live = false;
};

} // namespace icb::io

#endif // ICB_IO_MANAGEDHEAP_H
