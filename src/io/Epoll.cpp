//===- io/Epoll.cpp - Modeled readiness multiplexing ----------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "io/Epoll.h"
#include "support/Debug.h"
#include <sys/epoll.h>

using namespace icb;
using namespace icb::io;

Epoll::Epoll(std::string Name) : SyncObject("epoll", std::move(Name)) {}

int Epoll::findWatch(int Fd) const {
  for (size_t I = 0; I != Watches.size(); ++I)
    if (Watches[I].Fd == Fd)
      return static_cast<int>(I);
  return -1;
}

void Epoll::removeWatch(int Fd) {
  int I = findWatch(Fd);
  if (I >= 0)
    Watches.erase(Watches.begin() + I);
}

bool Epoll::reportableIn(const Watch &W) const {
  if (!(W.Events & EPOLLIN))
    return false;
  bool Ready = W.Recv ? W.Recv->readable() : W.Efd && W.Efd->readable();
  if (!Ready)
    return false;
  if (!(W.Events & EPOLLET))
    return true;
  uint64_t Epoch = W.Recv ? W.Recv->inEpoch() : W.Efd->inEpoch();
  return W.SeenIn < Epoch;
}

bool Epoll::reportableOut(const Watch &W) const {
  if (!(W.Events & EPOLLOUT))
    return false;
  bool Ready = W.Send ? W.Send->writable() : W.Efd != nullptr;
  if (!Ready)
    return false;
  if (!(W.Events & EPOLLET))
    return true;
  uint64_t Epoch = W.Send ? W.Send->outEpoch() : W.Efd->outEpoch();
  return W.SeenOut < Epoch;
}

bool Epoll::anyReportable() const {
  for (const Watch &W : Watches)
    if (reportable(W))
      return true;
  return false;
}

void Epoll::addWaiter(rt::ThreadId Tid, bool IsTimed) {
  Waiters.push_back(Tid);
  Timed.push_back(IsTimed);
}

void Epoll::removeWaiter(rt::ThreadId Tid) {
  for (size_t I = 0; I != Waiters.size(); ++I)
    if (Waiters[I] == Tid) {
      Waiters.erase(Waiters.begin() + I);
      Timed.erase(Timed.begin() + I);
      return;
    }
  ICB_ASSERT(false, "epoll waiter not registered");
}

bool Epoll::canProceed(const rt::PendingOp &Op, rt::ThreadId Tid) const {
  if (Op.Kind != rt::OpKind::IoWait)
    return true;
  for (size_t I = 0; I != Waiters.size(); ++I)
    if (Waiters[I] == Tid && Timed[I])
      return true; // Scheduling an unready timed waiter is the timeout.
  return anyReportable();
}
