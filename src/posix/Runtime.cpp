//===- posix/Runtime.cpp - Per-execution state of the POSIX shim ----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "posix/Runtime.h"
#include "io/IoContext.h"
#include "io/ManagedHeap.h"
#include "support/Debug.h"
#include "support/Format.h"
#include <pthread.h>

using namespace icb;
using namespace icb::posix;

namespace {
/// One context per worker OS thread: fibers switch stacks, not OS threads,
/// so every shim call of an execution sees the same instance, and parallel
/// `--jobs N` workers never share POSIX-shim state.
thread_local ExecContext WorkerContext;
} // namespace

ExecContext &ExecContext::current() {
  ICB_ASSERT(rt::Scheduler::current(),
             "POSIX shim call outside a controlled execution");
  ICB_ASSERT(WorkerContext.Live,
             "POSIX shim call outside an icb posix test (wrap the test "
             "body with posix::makeTestCase)");
  return WorkerContext;
}

void ExecContext::begin() {
  reset();
  Sched = rt::Scheduler::current();
  ICB_ASSERT(Sched, "posix test body outside a controlled execution");
  Live = true;
  // Register the main thread (rt thread 0) as pthread handle 1.
  auto Rec = std::make_unique<ThreadRec>();
  Rec->Tid = 0;
  Threads.push_back(std::move(Rec));
  HandleOfTid.assign(1, 1);
  // The io model and the managed heap share the execution's lifetime.
  io::IoContext::current().begin();
  io::ManagedHeap::current().begin();
}

void ExecContext::end() {
  // Join every still-unjoined thread, detached or not, in creation order:
  // the test is a closed unit, so "main returned" waits for stragglers
  // exactly like CHESS's end-of-test barrier, and the deterministic order
  // keeps schedules replayable.
  for (size_t I = 1; I < Threads.size(); ++I) {
    ThreadRec &R = *Threads[I];
    if (!R.Joined && R.Tid != rt::InvalidThread) {
      Sched->joinThread(R.Tid);
      R.Joined = true;
    }
  }
  // All threads are done: the heap's final sweep reports any trample of
  // quarantined memory that no later free caught, then io winds down.
  io::ManagedHeap::current().end();
  io::IoContext::current().end();
  reset();
}

void ExecContext::reset() {
  Live = false;
  Mutexes.clear();
  Conds.clear();
  RwLocks.clear();
  Sems.clear();
  Onces.clear();
  Barriers.clear();
  Spins.clear();
  MutexAttrs.clear();
  ThreadAttrs.clear();
  VarCodes.clear();
  Threads.clear();
  HandleOfTid.clear();
  Keys.clear();
  for (unsigned &S : Serial)
    S = 0;
  // Reverse creation order; also disposes leftovers from an execution
  // that ended early via failExecution (which never reaches end()).
  while (!Arena.empty())
    Arena.pop_back();
  // Quiet teardown (no reports): covers failExecution leftovers too.
  io::ManagedHeap::current().reset();
  io::IoContext::current().reset();
  Sched = nullptr;
}

template <typename T, typename... A>
T *ExecContext::makeObject(std::string Name, A &&...Args) {
  auto Obj = std::make_unique<T>(std::move(Name), std::forward<A>(Args)...);
  T *Raw = Obj.get();
  Arena.push_back(std::move(Obj));
  return Raw;
}

MutexState &ExecContext::mutexFor(const void *Addr) {
  auto It = Mutexes.find(Addr);
  if (It != Mutexes.end())
    return It->second;
  // Lazy default init: covers PTHREAD_MUTEX_INITIALIZER statics.
  MutexState MS;
  MS.M = makeObject<rt::Mutex>(strFormat("pmutex#%u", Serial[0]++));
  MS.Type = PTHREAD_MUTEX_DEFAULT;
  return Mutexes.emplace(Addr, MS).first->second;
}

CondState &ExecContext::condFor(const void *Addr) {
  auto It = Conds.find(Addr);
  if (It != Conds.end())
    return It->second;
  CondState CS;
  CS.C = makeObject<rt::CondVar>(strFormat("pcond#%u", Serial[1]++));
  return Conds.emplace(Addr, CS).first->second;
}

RwState &ExecContext::rwFor(const void *Addr) {
  auto It = RwLocks.find(Addr);
  if (It != RwLocks.end())
    return It->second;
  RwState RS;
  RS.RW = makeObject<rt::RwLock>(strFormat("prwlock#%u", Serial[2]++));
  return RwLocks.emplace(Addr, std::move(RS)).first->second;
}

SemState &ExecContext::semFor(const void *Addr) {
  auto It = Sems.find(Addr);
  if (It != Sems.end())
    return It->second;
  // Lazy init at count 0 (use before sem_init is undefined; this choice
  // turns it into a visible block instead of garbage).
  SemState SS;
  SS.S = makeObject<rt::Semaphore>(strFormat("psem#%u", Serial[3]++), 0);
  return Sems.emplace(Addr, SS).first->second;
}

OnceState &ExecContext::onceFor(const void *Addr) {
  auto It = Onces.find(Addr);
  if (It != Onces.end())
    return It->second;
  OnceState OS;
  OS.DoneEvent = makeObject<rt::Event>(strFormat("ponce#%u", Serial[4]++),
                                       /*ManualReset=*/true,
                                       /*InitiallySet=*/false);
  return Onces.emplace(Addr, OS).first->second;
}

BarrierState &ExecContext::barrierFor(const void *Addr) {
  auto It = Barriers.find(Addr);
  if (It != Barriers.end())
    return It->second;
  // Lazy state with Count 0: there is no PTHREAD_BARRIER_INITIALIZER, so
  // a wait landing here is misuse and the caller reports EINVAL.
  BarrierState BS;
  BS.M = makeObject<rt::Mutex>(strFormat("pbarrier#%u.m", Serial[5]));
  BS.C = makeObject<rt::CondVar>(strFormat("pbarrier#%u.cv", Serial[5]));
  ++Serial[5];
  return Barriers.emplace(Addr, BS).first->second;
}

SpinState &ExecContext::spinFor(const void *Addr) {
  auto It = Spins.find(Addr);
  if (It != Spins.end())
    return It->second;
  SpinState SS;
  SS.M = makeObject<rt::Mutex>(strFormat("pspin#%u", Serial[6]++));
  return Spins.emplace(Addr, SS).first->second;
}

void ExecContext::initMutex(const void *Addr, int Type) {
  MutexState MS;
  MS.M = makeObject<rt::Mutex>(strFormat("pmutex#%u", Serial[0]++));
  MS.Type = Type;
  Mutexes[Addr] = MS;
}

void ExecContext::initCond(const void *Addr) {
  CondState CS;
  CS.C = makeObject<rt::CondVar>(strFormat("pcond#%u", Serial[1]++));
  Conds[Addr] = CS;
}

void ExecContext::initRw(const void *Addr) {
  RwState RS;
  RS.RW = makeObject<rt::RwLock>(strFormat("prwlock#%u", Serial[2]++));
  RwLocks[Addr] = std::move(RS);
}

void ExecContext::initSem(const void *Addr, unsigned Value) {
  SemState SS;
  SS.S = makeObject<rt::Semaphore>(strFormat("psem#%u", Serial[3]++),
                                   static_cast<int>(Value));
  Sems[Addr] = SS;
}

void ExecContext::initBarrier(const void *Addr, unsigned Count) {
  BarrierState BS;
  BS.M = makeObject<rt::Mutex>(strFormat("pbarrier#%u.m", Serial[5]));
  BS.C = makeObject<rt::CondVar>(strFormat("pbarrier#%u.cv", Serial[5]));
  ++Serial[5];
  BS.Count = Count;
  Barriers[Addr] = BS;
}

void ExecContext::initSpin(const void *Addr) {
  SpinState SS;
  SS.M = makeObject<rt::Mutex>(strFormat("pspin#%u", Serial[6]++));
  Spins[Addr] = SS;
}

void ExecContext::dropMutex(const void *Addr) { Mutexes.erase(Addr); }
void ExecContext::dropCond(const void *Addr) { Conds.erase(Addr); }
void ExecContext::dropRw(const void *Addr) { RwLocks.erase(Addr); }
void ExecContext::dropSem(const void *Addr) { Sems.erase(Addr); }
void ExecContext::dropBarrier(const void *Addr) {
  // Reset in place instead of erasing: threads released by the final
  // generation may still be re-acquiring the barrier mutex and re-reading
  // Gen, so the node must stay valid. Count 0 marks it destroyed; a later
  // *_init replaces the state in the same node.
  auto It = Barriers.find(Addr);
  if (It != Barriers.end()) {
    It->second.Count = 0;
    It->second.Arrived = 0;
  }
}
void ExecContext::dropSpin(const void *Addr) { Spins.erase(Addr); }

void ExecContext::setMutexAttrType(const void *Addr, int Type) {
  MutexAttrs[Addr] = Type;
}

int ExecContext::mutexAttrType(const void *Addr) const {
  auto It = MutexAttrs.find(Addr);
  return It == MutexAttrs.end() ? PTHREAD_MUTEX_DEFAULT : It->second;
}

void ExecContext::setThreadAttrDetached(const void *Addr, bool Detached) {
  ThreadAttrs[Addr] = Detached;
}

bool ExecContext::threadAttrDetached(const void *Addr) const {
  auto It = ThreadAttrs.find(Addr);
  return It != ThreadAttrs.end() && It->second;
}

unsigned long ExecContext::createThread(void *(*Start)(void *), void *Arg,
                                        bool Detached) {
  // rt::Scheduler caps executions at 32 threads (fingerprint width);
  // surface exhaustion as EAGAIN like the real pthread_create.
  if (Threads.size() >= 32)
    return 0;
  unsigned long Handle = Threads.size() + 1;
  auto Rec = std::make_unique<ThreadRec>();
  Rec->Detached = Detached;
  ThreadRec *R = Rec.get();
  Threads.push_back(std::move(Rec));
  rt::ThreadId Tid = Sched->spawnThread(
      [this, R, Start, Arg] {
        void *Ret = nullptr;
        try {
          Ret = Start(Arg);
        } catch (ThreadExit &E) {
          Ret = E.Ret;
        }
        runTlsDestructors(*R);
        R->Ret = Ret;
        R->Finished = true;
      },
      strFormat("pthread#%lu", Handle));
  // The child cannot run before the creating thread's next scheduling
  // point, so publishing its id here is race-free.
  R->Tid = Tid;
  if (HandleOfTid.size() <= Tid)
    HandleOfTid.resize(Tid + 1, 0);
  HandleOfTid[Tid] = Handle;
  return Handle;
}

ThreadRec *ExecContext::threadByHandle(unsigned long Handle) {
  if (Handle == 0 || Handle > Threads.size())
    return nullptr;
  return Threads[Handle - 1].get();
}

unsigned long ExecContext::handleOfSelf() {
  rt::ThreadId Me = Sched->runningThread();
  if (Me < HandleOfTid.size() && HandleOfTid[Me] != 0)
    return HandleOfTid[Me];
  // A thread created outside the shim (mixed rt::Thread + posix tests):
  // register it lazily so pthread_self/TLS work; it is not joinable
  // through the shim and end() skips it (its owner joins it).
  unsigned long Handle = Threads.size() + 1;
  auto Rec = std::make_unique<ThreadRec>();
  Rec->Tid = Me;
  Rec->Detached = true;
  Rec->Joined = true; // Owned elsewhere; end() must not join it.
  Threads.push_back(std::move(Rec));
  if (HandleOfTid.size() <= Me)
    HandleOfTid.resize(Me + 1, 0);
  HandleOfTid[Me] = Handle;
  return Handle;
}

ThreadRec &ExecContext::selfRec() {
  return *Threads[handleOfSelf() - 1];
}

void ExecContext::runTlsDestructors(ThreadRec &R) {
  // POSIX: iterate until clean, bounded by PTHREAD_DESTRUCTOR_ITERATIONS.
  for (int Round = 0; Round < PTHREAD_DESTRUCTOR_ITERATIONS; ++Round) {
    bool Any = false;
    for (size_t K = 0; K < Keys.size() && K < R.Tls.size(); ++K) {
      if (!Keys[K].Alive || !Keys[K].Dtor || !R.Tls[K])
        continue;
      void *Value = R.Tls[K];
      R.Tls[K] = nullptr;
      Keys[K].Dtor(Value);
      Any = true;
    }
    if (!Any)
      break;
  }
}

void ExecContext::sharedAccess(const void *Addr, bool IsWrite,
                               const char *What) {
  auto It = VarCodes.find(Addr);
  uint64_t Code;
  if (It != VarCodes.end()) {
    Code = It->second;
  } else {
    Code = Sched->allocateVarCode();
    VarCodes.emplace(Addr, Code);
  }
  Sched->sharedAccess(Code, IsWrite, What ? What : "shared");
}

rt::TestCase icb::posix::makeTestCase(std::string Name,
                                      std::function<void()> Body) {
  return rt::TestCase{std::move(Name), [Body = std::move(Body)] {
                        ExecContext &C = WorkerContext;
                        C.begin();
                        try {
                          Body();
                        } catch (ThreadExit &) {
                          // pthread_exit from the main thread: the
                          // remaining threads still run to completion
                          // (end() joins them), matching POSIX.
                        }
                        C.end();
                      }};
}
