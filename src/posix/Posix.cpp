//===- posix/Posix.cpp - The pthread-compatible shim surface --------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The icb_* twins of the pthreads/semaphore API (include/icb/posix.h),
/// translating POSIX semantics onto the controlled rt primitives. The
/// translation rules (full table in DESIGN.md §8):
///
///   * defined POSIX errors come back as the documented errno value with
///     no bug report (EBUSY, EDEADLK, EPERM, ETIMEDOUT, EAGAIN, ...);
///   * undefined behavior — unlocking a NORMAL mutex one does not hold,
///     waiting on a condvar without the mutex — ends the execution as a
///     reported bug, which is the whole point of running under a checker;
///   * recursive re-lock/unlock of a RECURSIVE mutex is a pure counter
///     update (no scheduling point: no synchronization happens);
///   * timed waits have no clock — the timeout is one scheduler branch.
///
//===----------------------------------------------------------------------===//

#define ICB_POSIX_NO_RENAME
#include "icb/posix.h"

#include "posix/Runtime.h"
#include "support/Debug.h"
#include <climits>

using namespace icb;
using namespace icb::posix;

namespace {
rt::ThreadId self() { return rt::Scheduler::current()->runningThread(); }

unsigned readDepth(const RwState &R, rt::ThreadId Tid) {
  auto It = R.ReadDepth.find(Tid);
  return It == R.ReadDepth.end() ? 0 : It->second;
}
} // namespace

//===----------------------------------------------------------------------===//
// Threads
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_create(pthread_t *Thread,
                                  const pthread_attr_t *Attr,
                                  void *(*Start)(void *), void *Arg) {
  if (!Thread || !Start)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  bool Detached = Attr && C.threadAttrDetached(Attr);
  unsigned long Handle = C.createThread(Start, Arg, Detached);
  if (Handle == 0)
    return EAGAIN;
  *Thread = static_cast<pthread_t>(Handle);
  return 0;
}

extern "C" int icb_pthread_join(pthread_t Thread, void **Ret) {
  ExecContext &C = ExecContext::current();
  ThreadRec *R = C.threadByHandle(static_cast<unsigned long>(Thread));
  if (!R)
    return ESRCH;
  if (R->Tid == self())
    return EDEADLK;
  if (R->Detached || R->Joined)
    return EINVAL;
  rt::Scheduler::current()->joinThread(R->Tid);
  R->Joined = true;
  if (Ret)
    *Ret = R->Ret;
  return 0;
}

extern "C" int icb_pthread_detach(pthread_t Thread) {
  ExecContext &C = ExecContext::current();
  ThreadRec *R = C.threadByHandle(static_cast<unsigned long>(Thread));
  if (!R)
    return ESRCH;
  if (R->Detached || R->Joined)
    return EINVAL;
  R->Detached = true;
  return 0;
}

extern "C" pthread_t icb_pthread_self(void) {
  return static_cast<pthread_t>(ExecContext::current().handleOfSelf());
}

extern "C" int icb_pthread_equal(pthread_t A, pthread_t B) {
  return A == B ? 1 : 0;
}

extern "C" void icb_pthread_exit(void *Ret) { throw ThreadExit{Ret}; }

extern "C" int icb_pthread_attr_init(pthread_attr_t *Attr) {
  if (!Attr)
    return EINVAL;
  ExecContext::current().setThreadAttrDetached(Attr, false);
  return 0;
}

extern "C" int icb_pthread_attr_destroy(pthread_attr_t *Attr) {
  if (!Attr)
    return EINVAL;
  ExecContext::current().setThreadAttrDetached(Attr, false);
  return 0;
}

extern "C" int icb_pthread_attr_setdetachstate(pthread_attr_t *Attr,
                                               int State) {
  if (!Attr ||
      (State != PTHREAD_CREATE_JOINABLE && State != PTHREAD_CREATE_DETACHED))
    return EINVAL;
  ExecContext::current().setThreadAttrDetached(
      Attr, State == PTHREAD_CREATE_DETACHED);
  return 0;
}

extern "C" int icb_pthread_attr_getdetachstate(const pthread_attr_t *Attr,
                                               int *State) {
  if (!Attr || !State)
    return EINVAL;
  *State = ExecContext::current().threadAttrDetached(Attr)
               ? PTHREAD_CREATE_DETACHED
               : PTHREAD_CREATE_JOINABLE;
  return 0;
}

//===----------------------------------------------------------------------===//
// Mutexes
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_mutex_init(pthread_mutex_t *M,
                                      const pthread_mutexattr_t *A) {
  if (!M)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  C.initMutex(M, A ? C.mutexAttrType(A) : PTHREAD_MUTEX_DEFAULT);
  return 0;
}

extern "C" int icb_pthread_mutex_destroy(pthread_mutex_t *M) {
  if (!M)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  MutexState &MS = C.mutexFor(M);
  if (MS.M->held())
    return EBUSY;
  C.dropMutex(M);
  return 0;
}

extern "C" int icb_pthread_mutex_lock(pthread_mutex_t *M) {
  if (!M)
    return EINVAL;
  MutexState &MS = ExecContext::current().mutexFor(M);
  if (MS.M->heldBy(self())) {
    if (MS.Type == PTHREAD_MUTEX_RECURSIVE) {
      ++MS.Depth;
      return 0;
    }
    if (MS.Type == PTHREAD_MUTEX_ERRORCHECK)
      return EDEADLK;
    // NORMAL self-relock blocks forever like the real primitive; the
    // scheduler reports the resulting deadlock.
  }
  MS.M->lock();
  MS.Depth = 1;
  return 0;
}

extern "C" int icb_pthread_mutex_trylock(pthread_mutex_t *M) {
  if (!M)
    return EINVAL;
  MutexState &MS = ExecContext::current().mutexFor(M);
  if (MS.Type == PTHREAD_MUTEX_RECURSIVE && MS.M->heldBy(self())) {
    ++MS.Depth;
    return 0;
  }
  if (!MS.M->tryLock())
    return EBUSY;
  MS.Depth = 1;
  return 0;
}

extern "C" int icb_pthread_mutex_unlock(pthread_mutex_t *M) {
  if (!M)
    return EINVAL;
  MutexState &MS = ExecContext::current().mutexFor(M);
  if (!MS.M->heldBy(self())) {
    if (MS.Type == PTHREAD_MUTEX_ERRORCHECK ||
        MS.Type == PTHREAD_MUTEX_RECURSIVE)
      return EPERM;
    // NORMAL: undefined by POSIX — reported as a bug by rt::Mutex.
    MS.M->unlock();
    return 0;
  }
  if (MS.Depth > 1) {
    --MS.Depth;
    return 0;
  }
  MS.Depth = 0;
  MS.M->unlock();
  return 0;
}

extern "C" int icb_pthread_mutexattr_init(pthread_mutexattr_t *A) {
  if (!A)
    return EINVAL;
  ExecContext::current().setMutexAttrType(A, PTHREAD_MUTEX_DEFAULT);
  return 0;
}

extern "C" int icb_pthread_mutexattr_destroy(pthread_mutexattr_t *A) {
  if (!A)
    return EINVAL;
  ExecContext::current().setMutexAttrType(A, PTHREAD_MUTEX_DEFAULT);
  return 0;
}

extern "C" int icb_pthread_mutexattr_settype(pthread_mutexattr_t *A,
                                             int Type) {
  if (!A || (Type != PTHREAD_MUTEX_NORMAL && Type != PTHREAD_MUTEX_RECURSIVE &&
             Type != PTHREAD_MUTEX_ERRORCHECK &&
             Type != PTHREAD_MUTEX_DEFAULT))
    return EINVAL;
  ExecContext::current().setMutexAttrType(A, Type);
  return 0;
}

extern "C" int icb_pthread_mutexattr_gettype(const pthread_mutexattr_t *A,
                                             int *Type) {
  if (!A || !Type)
    return EINVAL;
  *Type = ExecContext::current().mutexAttrType(A);
  return 0;
}

//===----------------------------------------------------------------------===//
// Condition variables
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_cond_init(pthread_cond_t *Cond,
                                     const pthread_condattr_t *A) {
  (void)A; // No supported condvar attributes (clock choice is moot).
  if (!Cond)
    return EINVAL;
  ExecContext::current().initCond(Cond);
  return 0;
}

extern "C" int icb_pthread_cond_destroy(pthread_cond_t *Cond) {
  if (!Cond)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  CondState &CS = C.condFor(Cond);
  if (CS.C->waiterCount() != 0)
    return EBUSY;
  C.dropCond(Cond);
  return 0;
}

extern "C" int icb_pthread_cond_wait(pthread_cond_t *Cond,
                                     pthread_mutex_t *M) {
  if (!Cond || !M)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  CondState &CS = C.condFor(Cond);
  MutexState &MS = C.mutexFor(M);
  if (MS.Type == PTHREAD_MUTEX_ERRORCHECK && !MS.M->heldBy(self()))
    return EPERM;
  if (MS.Depth > 1)
    return EINVAL; // Waiting with a recursively-held mutex.
  // Unheld NORMAL mutex is undefined: rt::CondVar reports it as a bug.
  CS.C->wait(*MS.M);
  return 0;
}

extern "C" int icb_pthread_cond_timedwait(pthread_cond_t *Cond,
                                          pthread_mutex_t *M,
                                          const struct timespec *AbsTime) {
  if (!Cond || !M || !AbsTime)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  CondState &CS = C.condFor(Cond);
  MutexState &MS = C.mutexFor(M);
  if (MS.Type == PTHREAD_MUTEX_ERRORCHECK && !MS.M->heldBy(self()))
    return EPERM;
  if (MS.Depth > 1)
    return EINVAL;
  // The deadline value is irrelevant: the timeout is a scheduler branch
  // (the waiter stays enabled; waking unsignaled IS the expiry), so the
  // search explores both sides of every signal/timeout race.
  return CS.C->timedWait(*MS.M) ? 0 : ETIMEDOUT;
}

extern "C" int icb_pthread_cond_signal(pthread_cond_t *Cond) {
  if (!Cond)
    return EINVAL;
  ExecContext::current().condFor(Cond).C->signal();
  return 0;
}

extern "C" int icb_pthread_cond_broadcast(pthread_cond_t *Cond) {
  if (!Cond)
    return EINVAL;
  ExecContext::current().condFor(Cond).C->broadcast();
  return 0;
}

//===----------------------------------------------------------------------===//
// Reader-writer locks
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_rwlock_init(pthread_rwlock_t *RW,
                                       const pthread_rwlockattr_t *A) {
  (void)A; // Fairness attributes are moot: every admission order is
           // explored as a schedule anyway.
  if (!RW)
    return EINVAL;
  ExecContext::current().initRw(RW);
  return 0;
}

extern "C" int icb_pthread_rwlock_destroy(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  RwState &R = C.rwFor(RW);
  if (R.RW->writerHeld() || R.RW->readerCount() != 0)
    return EBUSY;
  C.dropRw(RW);
  return 0;
}

extern "C" int icb_pthread_rwlock_rdlock(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  RwState &R = ExecContext::current().rwFor(RW);
  if (R.Writer == self())
    return EDEADLK; // glibc detects read-after-own-write-lock.
  R.RW->lockShared();
  ++R.ReadDepth[self()];
  return 0;
}

extern "C" int icb_pthread_rwlock_tryrdlock(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  RwState &R = ExecContext::current().rwFor(RW);
  if (!R.RW->tryLockShared())
    return EBUSY;
  ++R.ReadDepth[self()];
  return 0;
}

extern "C" int icb_pthread_rwlock_wrlock(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  RwState &R = ExecContext::current().rwFor(RW);
  if (R.Writer == self() || readDepth(R, self()) != 0)
    return EDEADLK; // Write-after-own-lock can never succeed.
  R.RW->lockExclusive();
  R.Writer = self();
  return 0;
}

extern "C" int icb_pthread_rwlock_trywrlock(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  RwState &R = ExecContext::current().rwFor(RW);
  if (!R.RW->tryLockExclusive())
    return EBUSY;
  R.Writer = self();
  return 0;
}

extern "C" int icb_pthread_rwlock_unlock(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  RwState &R = ExecContext::current().rwFor(RW);
  rt::ThreadId Me = self();
  if (R.Writer == Me) {
    R.Writer = rt::InvalidThread;
    R.RW->unlockExclusive();
    return 0;
  }
  if (readDepth(R, Me) != 0) {
    --R.ReadDepth[Me];
    R.RW->unlockShared();
    return 0;
  }
  return EPERM;
}

//===----------------------------------------------------------------------===//
// Semaphores (sem_* family: -1/errno on failure)
//===----------------------------------------------------------------------===//

extern "C" int icb_sem_init(sem_t *S, int PShared, unsigned Value) {
  (void)PShared; // In-process checking: process-shared is accepted and
                 // behaves identically.
  if (!S || Value > static_cast<unsigned>(INT_MAX)) {
    errno = EINVAL;
    return -1;
  }
  ExecContext::current().initSem(S, Value);
  return 0;
}

extern "C" int icb_sem_destroy(sem_t *S) {
  if (!S) {
    errno = EINVAL;
    return -1;
  }
  ExecContext::current().dropSem(S);
  return 0;
}

extern "C" int icb_sem_wait(sem_t *S) {
  if (!S) {
    errno = EINVAL;
    return -1;
  }
  ExecContext::current().semFor(S).S->acquire();
  return 0;
}

extern "C" int icb_sem_trywait(sem_t *S) {
  if (!S) {
    errno = EINVAL;
    return -1;
  }
  if (!ExecContext::current().semFor(S).S->tryAcquire()) {
    errno = EAGAIN;
    return -1;
  }
  return 0;
}

extern "C" int icb_sem_post(sem_t *S) {
  if (!S) {
    errno = EINVAL;
    return -1;
  }
  ExecContext::current().semFor(S).S->release();
  return 0;
}

extern "C" int icb_sem_getvalue(sem_t *S, int *Out) {
  if (!S || !Out) {
    errno = EINVAL;
    return -1;
  }
  *Out = ExecContext::current().semFor(S).S->count();
  return 0;
}

//===----------------------------------------------------------------------===//
// Once + TLS keys
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_once(pthread_once_t *Control,
                                void (*Routine)(void)) {
  if (!Control || !Routine)
    return EINVAL;
  OnceState &O = ExecContext::current().onceFor(Control);
  switch (O.Phase) {
  case OnceState::NotRun:
    O.Phase = OnceState::Running;
    Routine();
    O.Phase = OnceState::Done;
    O.DoneEvent->set();
    return 0;
  case OnceState::Running:
  case OnceState::Done:
    // Parks until the initializer finishes; once it has, the manual-reset
    // event stays set and the wait is a non-blocking scheduling point that
    // also carries the happens-before edge from the initializer.
    O.DoneEvent->wait();
    return 0;
  }
  return 0;
}

extern "C" int icb_pthread_key_create(pthread_key_t *Key,
                                      void (*Dtor)(void *)) {
  if (!Key)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  C.Keys.push_back(KeyRec{true, Dtor});
  *Key = static_cast<pthread_key_t>(C.Keys.size() - 1);
  return 0;
}

extern "C" int icb_pthread_key_delete(pthread_key_t Key) {
  ExecContext &C = ExecContext::current();
  size_t K = static_cast<size_t>(Key);
  if (K >= C.Keys.size() || !C.Keys[K].Alive)
    return EINVAL;
  C.Keys[K].Alive = false;
  return 0;
}

extern "C" int icb_pthread_setspecific(pthread_key_t Key, const void *Value) {
  ExecContext &C = ExecContext::current();
  size_t K = static_cast<size_t>(Key);
  if (K >= C.Keys.size() || !C.Keys[K].Alive)
    return EINVAL;
  ThreadRec &R = C.selfRec();
  if (R.Tls.size() <= K)
    R.Tls.resize(K + 1, nullptr);
  R.Tls[K] = const_cast<void *>(Value);
  return 0;
}

extern "C" void *icb_pthread_getspecific(pthread_key_t Key) {
  ExecContext &C = ExecContext::current();
  size_t K = static_cast<size_t>(Key);
  if (K >= C.Keys.size() || !C.Keys[K].Alive)
    return nullptr;
  ThreadRec &R = C.selfRec();
  return K < R.Tls.size() ? R.Tls[K] : nullptr;
}

//===----------------------------------------------------------------------===//
// Yield points
//===----------------------------------------------------------------------===//

extern "C" int icb_sched_yield(void) {
  rt::yield();
  return 0;
}

extern "C" int icb_usleep(unsigned Usec) {
  (void)Usec; // Durations are meaningless under the model clock.
  rt::yield();
  return 0;
}

extern "C" unsigned icb_sleep(unsigned Seconds) {
  (void)Seconds;
  rt::yield();
  return 0;
}

extern "C" int icb_nanosleep(const struct timespec *Req,
                             struct timespec *Rem) {
  if (!Req) {
    errno = EINVAL;
    return -1;
  }
  rt::yield();
  if (Rem)
    *Rem = timespec{0, 0};
  return 0;
}

//===----------------------------------------------------------------------===//
// Checker surface
//===----------------------------------------------------------------------===//

extern "C" void icb_posix_shared_read(const void *Addr, const char *What) {
  ExecContext::current().sharedAccess(Addr, /*IsWrite=*/false, What);
}

extern "C" void icb_posix_shared_write(void *Addr, const char *What) {
  ExecContext::current().sharedAccess(Addr, /*IsWrite=*/true, What);
}

extern "C" void icb_posix_assert(int Cond, const char *What) {
  rt::testAssert(Cond != 0, What ? What : "icb_posix_assert");
}
