//===- posix/Posix.cpp - The pthread-compatible shim surface --------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The icb_* twins of the pthreads/semaphore API (include/icb/posix.h),
/// translating POSIX semantics onto the controlled rt primitives. The
/// translation rules (full table in DESIGN.md §8):
///
///   * defined POSIX errors come back as the documented errno value with
///     no bug report (EBUSY, EDEADLK, EPERM, ETIMEDOUT, EAGAIN, ...);
///   * undefined behavior — unlocking a NORMAL mutex one does not hold,
///     waiting on a condvar without the mutex — ends the execution as a
///     reported bug, which is the whole point of running under a checker;
///   * recursive re-lock/unlock of a RECURSIVE mutex is a pure counter
///     update (no scheduling point: no synchronization happens);
///   * timed waits have no clock — the timeout is one scheduler branch.
///
//===----------------------------------------------------------------------===//

#define ICB_POSIX_NO_RENAME
#include "icb/posix.h"

#include "posix/Runtime.h"
#include "support/Debug.h"
#include <climits>
#include <cstdint>

using namespace icb;
using namespace icb::posix;

namespace {
rt::ThreadId self() { return rt::Scheduler::current()->runningThread(); }

unsigned readDepth(const RwState &R, rt::ThreadId Tid) {
  auto It = R.ReadDepth.find(Tid);
  return It == R.ReadDepth.end() ? 0 : It->second;
}
} // namespace

//===----------------------------------------------------------------------===//
// Threads
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_create(pthread_t *Thread,
                                  const pthread_attr_t *Attr,
                                  void *(*Start)(void *), void *Arg) {
  if (!Thread || !Start)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  bool Detached = Attr && C.threadAttrDetached(Attr);
  unsigned long Handle = C.createThread(Start, Arg, Detached);
  if (Handle == 0)
    return EAGAIN;
  *Thread = static_cast<pthread_t>(Handle);
  return 0;
}

extern "C" int icb_pthread_join(pthread_t Thread, void **Ret) {
  ExecContext &C = ExecContext::current();
  ThreadRec *R = C.threadByHandle(static_cast<unsigned long>(Thread));
  if (!R)
    return ESRCH;
  if (R->Tid == self())
    return EDEADLK;
  if (R->Detached || R->Joined)
    return EINVAL;
  rt::Scheduler::current()->joinThread(R->Tid);
  R->Joined = true;
  if (Ret)
    *Ret = R->Ret;
  return 0;
}

extern "C" int icb_pthread_detach(pthread_t Thread) {
  ExecContext &C = ExecContext::current();
  ThreadRec *R = C.threadByHandle(static_cast<unsigned long>(Thread));
  if (!R)
    return ESRCH;
  if (R->Detached || R->Joined)
    return EINVAL;
  R->Detached = true;
  return 0;
}

extern "C" pthread_t icb_pthread_self(void) {
  return static_cast<pthread_t>(ExecContext::current().handleOfSelf());
}

extern "C" int icb_pthread_equal(pthread_t A, pthread_t B) {
  return A == B ? 1 : 0;
}

extern "C" void icb_pthread_exit(void *Ret) { throw ThreadExit{Ret}; }

extern "C" int icb_pthread_attr_init(pthread_attr_t *Attr) {
  if (!Attr)
    return EINVAL;
  ExecContext::current().setThreadAttrDetached(Attr, false);
  return 0;
}

extern "C" int icb_pthread_attr_destroy(pthread_attr_t *Attr) {
  if (!Attr)
    return EINVAL;
  ExecContext::current().setThreadAttrDetached(Attr, false);
  return 0;
}

extern "C" int icb_pthread_attr_setdetachstate(pthread_attr_t *Attr,
                                               int State) {
  if (!Attr ||
      (State != PTHREAD_CREATE_JOINABLE && State != PTHREAD_CREATE_DETACHED))
    return EINVAL;
  ExecContext::current().setThreadAttrDetached(
      Attr, State == PTHREAD_CREATE_DETACHED);
  return 0;
}

extern "C" int icb_pthread_attr_getdetachstate(const pthread_attr_t *Attr,
                                               int *State) {
  if (!Attr || !State)
    return EINVAL;
  *State = ExecContext::current().threadAttrDetached(Attr)
               ? PTHREAD_CREATE_DETACHED
               : PTHREAD_CREATE_JOINABLE;
  return 0;
}

//===----------------------------------------------------------------------===//
// Mutexes
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_mutex_init(pthread_mutex_t *M,
                                      const pthread_mutexattr_t *A) {
  if (!M)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  C.initMutex(M, A ? C.mutexAttrType(A) : PTHREAD_MUTEX_DEFAULT);
  return 0;
}

extern "C" int icb_pthread_mutex_destroy(pthread_mutex_t *M) {
  if (!M)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  MutexState &MS = C.mutexFor(M);
  if (MS.M->held())
    return EBUSY;
  C.dropMutex(M);
  return 0;
}

extern "C" int icb_pthread_mutex_lock(pthread_mutex_t *M) {
  if (!M)
    return EINVAL;
  MutexState &MS = ExecContext::current().mutexFor(M);
  if (MS.M->heldBy(self())) {
    if (MS.Type == PTHREAD_MUTEX_RECURSIVE) {
      ++MS.Depth;
      return 0;
    }
    if (MS.Type == PTHREAD_MUTEX_ERRORCHECK)
      return EDEADLK;
    // NORMAL self-relock blocks forever like the real primitive; the
    // scheduler reports the resulting deadlock.
  }
  MS.M->lock();
  MS.Depth = 1;
  return 0;
}

extern "C" int icb_pthread_mutex_timedlock(pthread_mutex_t *M,
                                           const struct timespec *AbsTime) {
  if (!M || !AbsTime)
    return EINVAL;
  // glibc validates the deadline before anything else.
  if (AbsTime->tv_nsec < 0 || AbsTime->tv_nsec >= 1000000000L)
    return EINVAL;
  MutexState &MS = ExecContext::current().mutexFor(M);
  if (MS.M->heldBy(self())) {
    if (MS.Type == PTHREAD_MUTEX_RECURSIVE) {
      ++MS.Depth;
      return 0;
    }
    if (MS.Type == PTHREAD_MUTEX_ERRORCHECK)
      return EDEADLK;
    // NORMAL self-relock can never be granted; the modeled expiry below
    // is the only outcome, matching glibc once the deadline passes.
  }
  // The deadline value is irrelevant beyond validation: the timeout is a
  // scheduler branch (the thread stays enabled; being scheduled while
  // the mutex is held IS the expiry), so the search explores both the
  // granted and the timed-out side of every race.
  if (!MS.M->timedLock())
    return ETIMEDOUT;
  MS.Depth = 1;
  return 0;
}

extern "C" int icb_pthread_mutex_trylock(pthread_mutex_t *M) {
  if (!M)
    return EINVAL;
  MutexState &MS = ExecContext::current().mutexFor(M);
  if (MS.Type == PTHREAD_MUTEX_RECURSIVE && MS.M->heldBy(self())) {
    ++MS.Depth;
    return 0;
  }
  if (!MS.M->tryLock())
    return EBUSY;
  MS.Depth = 1;
  return 0;
}

extern "C" int icb_pthread_mutex_unlock(pthread_mutex_t *M) {
  if (!M)
    return EINVAL;
  MutexState &MS = ExecContext::current().mutexFor(M);
  if (!MS.M->heldBy(self())) {
    if (MS.Type == PTHREAD_MUTEX_ERRORCHECK ||
        MS.Type == PTHREAD_MUTEX_RECURSIVE)
      return EPERM;
    // NORMAL: undefined by POSIX — reported as a bug by rt::Mutex.
    MS.M->unlock();
    return 0;
  }
  if (MS.Depth > 1) {
    --MS.Depth;
    return 0;
  }
  MS.Depth = 0;
  MS.M->unlock();
  return 0;
}

extern "C" int icb_pthread_mutexattr_init(pthread_mutexattr_t *A) {
  if (!A)
    return EINVAL;
  ExecContext::current().setMutexAttrType(A, PTHREAD_MUTEX_DEFAULT);
  return 0;
}

extern "C" int icb_pthread_mutexattr_destroy(pthread_mutexattr_t *A) {
  if (!A)
    return EINVAL;
  ExecContext::current().setMutexAttrType(A, PTHREAD_MUTEX_DEFAULT);
  return 0;
}

extern "C" int icb_pthread_mutexattr_settype(pthread_mutexattr_t *A,
                                             int Type) {
  if (!A || (Type != PTHREAD_MUTEX_NORMAL && Type != PTHREAD_MUTEX_RECURSIVE &&
             Type != PTHREAD_MUTEX_ERRORCHECK &&
             Type != PTHREAD_MUTEX_DEFAULT))
    return EINVAL;
  ExecContext::current().setMutexAttrType(A, Type);
  return 0;
}

extern "C" int icb_pthread_mutexattr_gettype(const pthread_mutexattr_t *A,
                                             int *Type) {
  if (!A || !Type)
    return EINVAL;
  *Type = ExecContext::current().mutexAttrType(A);
  return 0;
}

//===----------------------------------------------------------------------===//
// Condition variables
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_cond_init(pthread_cond_t *Cond,
                                     const pthread_condattr_t *A) {
  (void)A; // No supported condvar attributes (clock choice is moot).
  if (!Cond)
    return EINVAL;
  ExecContext::current().initCond(Cond);
  return 0;
}

extern "C" int icb_pthread_cond_destroy(pthread_cond_t *Cond) {
  if (!Cond)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  CondState &CS = C.condFor(Cond);
  if (CS.C->waiterCount() != 0)
    return EBUSY;
  C.dropCond(Cond);
  return 0;
}

extern "C" int icb_pthread_cond_wait(pthread_cond_t *Cond,
                                     pthread_mutex_t *M) {
  if (!Cond || !M)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  CondState &CS = C.condFor(Cond);
  MutexState &MS = C.mutexFor(M);
  if (MS.Type == PTHREAD_MUTEX_ERRORCHECK && !MS.M->heldBy(self()))
    return EPERM;
  if (MS.Depth > 1)
    return EINVAL; // Waiting with a recursively-held mutex.
  // Unheld NORMAL mutex is undefined: rt::CondVar reports it as a bug.
  CS.C->wait(*MS.M);
  return 0;
}

extern "C" int icb_pthread_cond_timedwait(pthread_cond_t *Cond,
                                          pthread_mutex_t *M,
                                          const struct timespec *AbsTime) {
  if (!Cond || !M || !AbsTime)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  CondState &CS = C.condFor(Cond);
  MutexState &MS = C.mutexFor(M);
  if (MS.Type == PTHREAD_MUTEX_ERRORCHECK && !MS.M->heldBy(self()))
    return EPERM;
  if (MS.Depth > 1)
    return EINVAL;
  // The deadline value is irrelevant: the timeout is a scheduler branch
  // (the waiter stays enabled; waking unsignaled IS the expiry), so the
  // search explores both sides of every signal/timeout race.
  return CS.C->timedWait(*MS.M) ? 0 : ETIMEDOUT;
}

extern "C" int icb_pthread_cond_signal(pthread_cond_t *Cond) {
  if (!Cond)
    return EINVAL;
  ExecContext::current().condFor(Cond).C->signal();
  return 0;
}

extern "C" int icb_pthread_cond_broadcast(pthread_cond_t *Cond) {
  if (!Cond)
    return EINVAL;
  ExecContext::current().condFor(Cond).C->broadcast();
  return 0;
}

//===----------------------------------------------------------------------===//
// Reader-writer locks
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_rwlock_init(pthread_rwlock_t *RW,
                                       const pthread_rwlockattr_t *A) {
  (void)A; // Fairness attributes are moot: every admission order is
           // explored as a schedule anyway.
  if (!RW)
    return EINVAL;
  ExecContext::current().initRw(RW);
  return 0;
}

extern "C" int icb_pthread_rwlock_destroy(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  RwState &R = C.rwFor(RW);
  if (R.RW->writerHeld() || R.RW->readerCount() != 0)
    return EBUSY;
  C.dropRw(RW);
  return 0;
}

extern "C" int icb_pthread_rwlock_rdlock(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  RwState &R = ExecContext::current().rwFor(RW);
  if (R.Writer == self())
    return EDEADLK; // glibc detects read-after-own-write-lock.
  R.RW->lockShared();
  ++R.ReadDepth[self()];
  return 0;
}

extern "C" int icb_pthread_rwlock_tryrdlock(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  RwState &R = ExecContext::current().rwFor(RW);
  if (!R.RW->tryLockShared())
    return EBUSY;
  ++R.ReadDepth[self()];
  return 0;
}

extern "C" int icb_pthread_rwlock_wrlock(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  RwState &R = ExecContext::current().rwFor(RW);
  if (R.Writer == self() || readDepth(R, self()) != 0)
    return EDEADLK; // Write-after-own-lock can never succeed.
  R.RW->lockExclusive();
  R.Writer = self();
  return 0;
}

extern "C" int icb_pthread_rwlock_trywrlock(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  RwState &R = ExecContext::current().rwFor(RW);
  if (!R.RW->tryLockExclusive())
    return EBUSY;
  R.Writer = self();
  return 0;
}

extern "C" int icb_pthread_rwlock_unlock(pthread_rwlock_t *RW) {
  if (!RW)
    return EINVAL;
  RwState &R = ExecContext::current().rwFor(RW);
  rt::ThreadId Me = self();
  if (R.Writer == Me) {
    R.Writer = rt::InvalidThread;
    R.RW->unlockExclusive();
    return 0;
  }
  if (readDepth(R, Me) != 0) {
    --R.ReadDepth[Me];
    R.RW->unlockShared();
    return 0;
  }
  return EPERM;
}

//===----------------------------------------------------------------------===//
// Barriers
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_barrier_init(pthread_barrier_t *B,
                                        const pthread_barrierattr_t *A,
                                        unsigned Count) {
  (void)A; // Process-shared is moot for in-process checking.
  if (!B || Count == 0)
    return EINVAL;
  ExecContext::current().initBarrier(B, Count);
  return 0;
}

extern "C" int icb_pthread_barrier_destroy(pthread_barrier_t *B) {
  if (!B)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  BarrierState &BS = C.barrierFor(B);
  if (BS.Arrived != 0)
    return EBUSY; // Threads are parked inside the current generation.
  C.dropBarrier(B);
  return 0;
}

extern "C" int icb_pthread_barrier_wait(pthread_barrier_t *B) {
  if (!B)
    return EINVAL;
  BarrierState &BS = ExecContext::current().barrierFor(B);
  if (BS.Count == 0)
    return EINVAL; // Never initialized (POSIX: undefined; be kind).
  BS.M->lock();
  unsigned Gen = BS.Gen;
  if (++BS.Arrived == BS.Count) {
    // Last arrival releases the generation and plays the serial thread.
    BS.Arrived = 0;
    ++BS.Gen;
    BS.C->broadcast();
    BS.M->unlock();
    return PTHREAD_BARRIER_SERIAL_THREAD;
  }
  while (BS.Gen == Gen)
    BS.C->wait(*BS.M);
  BS.M->unlock();
  return 0;
}

extern "C" int icb_pthread_barrierattr_init(pthread_barrierattr_t *A) {
  return A ? 0 : EINVAL;
}

extern "C" int icb_pthread_barrierattr_destroy(pthread_barrierattr_t *A) {
  return A ? 0 : EINVAL;
}

//===----------------------------------------------------------------------===//
// Spinlocks
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_spin_init(pthread_spinlock_t *S, int PShared) {
  (void)PShared; // Accepted; identical in-process.
  if (!S)
    return EINVAL;
  // pthread_spinlock_t is volatile; only the address is used as a key.
  ExecContext::current().initSpin(const_cast<int *>(S));
  return 0;
}

extern "C" int icb_pthread_spin_destroy(pthread_spinlock_t *S) {
  if (!S)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  if (C.spinFor(const_cast<int *>(S)).M->held())
    return EBUSY;
  C.dropSpin(const_cast<int *>(S));
  return 0;
}

extern "C" int icb_pthread_spin_lock(pthread_spinlock_t *S) {
  if (!S)
    return EINVAL;
  // A self-relock spins forever on the real primitive; here the scheduler
  // never enables the spinner again and reports the deadlock.
  ExecContext::current().spinFor(const_cast<int *>(S)).M->lock();
  return 0;
}

extern "C" int icb_pthread_spin_trylock(pthread_spinlock_t *S) {
  if (!S)
    return EINVAL;
  return ExecContext::current().spinFor(const_cast<int *>(S)).M->tryLock()
             ? 0
             : EBUSY;
}

extern "C" int icb_pthread_spin_unlock(pthread_spinlock_t *S) {
  if (!S)
    return EINVAL;
  // Unlock of an unheld spinlock is undefined; rt::Mutex reports it.
  ExecContext::current().spinFor(const_cast<int *>(S)).M->unlock();
  return 0;
}

//===----------------------------------------------------------------------===//
// Semaphores (sem_* family: -1/errno on failure)
//===----------------------------------------------------------------------===//

extern "C" int icb_sem_init(sem_t *S, int PShared, unsigned Value) {
  (void)PShared; // In-process checking: process-shared is accepted and
                 // behaves identically.
  if (!S || Value > static_cast<unsigned>(INT_MAX)) {
    errno = EINVAL;
    return -1;
  }
  ExecContext::current().initSem(S, Value);
  return 0;
}

extern "C" int icb_sem_destroy(sem_t *S) {
  if (!S) {
    errno = EINVAL;
    return -1;
  }
  ExecContext::current().dropSem(S);
  return 0;
}

extern "C" int icb_sem_wait(sem_t *S) {
  if (!S) {
    errno = EINVAL;
    return -1;
  }
  ExecContext::current().semFor(S).S->acquire();
  return 0;
}

extern "C" int icb_sem_trywait(sem_t *S) {
  if (!S) {
    errno = EINVAL;
    return -1;
  }
  if (!ExecContext::current().semFor(S).S->tryAcquire()) {
    errno = EAGAIN;
    return -1;
  }
  return 0;
}

extern "C" int icb_sem_timedwait(sem_t *S, const struct timespec *AbsTime) {
  if (!S || !AbsTime) {
    errno = EINVAL;
    return -1;
  }
  if (AbsTime->tv_nsec < 0 || AbsTime->tv_nsec >= 1000000000L) {
    errno = EINVAL;
    return -1;
  }
  // Modeled timeout: being scheduled at count zero is the expiry branch
  // (see icb_pthread_mutex_timedlock).
  if (!ExecContext::current().semFor(S).S->timedAcquire()) {
    errno = ETIMEDOUT;
    return -1;
  }
  return 0;
}

extern "C" int icb_sem_post(sem_t *S) {
  if (!S) {
    errno = EINVAL;
    return -1;
  }
  ExecContext::current().semFor(S).S->release();
  return 0;
}

extern "C" int icb_sem_getvalue(sem_t *S, int *Out) {
  if (!S || !Out) {
    errno = EINVAL;
    return -1;
  }
  *Out = ExecContext::current().semFor(S).S->count();
  return 0;
}

//===----------------------------------------------------------------------===//
// Once + TLS keys
//===----------------------------------------------------------------------===//

extern "C" int icb_pthread_once(pthread_once_t *Control,
                                void (*Routine)(void)) {
  if (!Control || !Routine)
    return EINVAL;
  OnceState &O = ExecContext::current().onceFor(Control);
  switch (O.Phase) {
  case OnceState::NotRun:
    O.Phase = OnceState::Running;
    Routine();
    O.Phase = OnceState::Done;
    O.DoneEvent->set();
    return 0;
  case OnceState::Running:
  case OnceState::Done:
    // Parks until the initializer finishes; once it has, the manual-reset
    // event stays set and the wait is a non-blocking scheduling point that
    // also carries the happens-before edge from the initializer.
    O.DoneEvent->wait();
    return 0;
  }
  return 0;
}

extern "C" int icb_pthread_key_create(pthread_key_t *Key,
                                      void (*Dtor)(void *)) {
  if (!Key)
    return EINVAL;
  ExecContext &C = ExecContext::current();
  C.Keys.push_back(KeyRec{true, Dtor});
  *Key = static_cast<pthread_key_t>(C.Keys.size() - 1);
  return 0;
}

extern "C" int icb_pthread_key_delete(pthread_key_t Key) {
  ExecContext &C = ExecContext::current();
  size_t K = static_cast<size_t>(Key);
  if (K >= C.Keys.size() || !C.Keys[K].Alive)
    return EINVAL;
  C.Keys[K].Alive = false;
  return 0;
}

extern "C" int icb_pthread_setspecific(pthread_key_t Key, const void *Value) {
  ExecContext &C = ExecContext::current();
  size_t K = static_cast<size_t>(Key);
  if (K >= C.Keys.size() || !C.Keys[K].Alive)
    return EINVAL;
  ThreadRec &R = C.selfRec();
  if (R.Tls.size() <= K)
    R.Tls.resize(K + 1, nullptr);
  R.Tls[K] = const_cast<void *>(Value);
  return 0;
}

extern "C" void *icb_pthread_getspecific(pthread_key_t Key) {
  ExecContext &C = ExecContext::current();
  size_t K = static_cast<size_t>(Key);
  if (K >= C.Keys.size() || !C.Keys[K].Alive)
    return nullptr;
  ThreadRec &R = C.selfRec();
  return K < R.Tls.size() ? R.Tls[K] : nullptr;
}

//===----------------------------------------------------------------------===//
// Yield points
//===----------------------------------------------------------------------===//

extern "C" int icb_sched_yield(void) {
  rt::yield();
  return 0;
}

extern "C" int icb_usleep(unsigned Usec) {
  (void)Usec; // Durations are meaningless under the model clock.
  rt::yield();
  return 0;
}

extern "C" unsigned icb_sleep(unsigned Seconds) {
  (void)Seconds;
  rt::yield();
  return 0;
}

extern "C" int icb_nanosleep(const struct timespec *Req,
                             struct timespec *Rem) {
  if (!Req) {
    errno = EINVAL;
    return -1;
  }
  rt::yield();
  if (Rem)
    *Rem = timespec{0, 0};
  return 0;
}

//===----------------------------------------------------------------------===//
// C11 threads (thin aliases over the pthread translation; all C11 types
// are opaque address keys, so the pthread entry points can be reused
// directly — only signatures and result codes differ)
//===----------------------------------------------------------------------===//

#ifdef ICB_POSIX_HAS_THREADS_H

namespace {

/// errno-style result -> C11 thrd_* result code.
int c11Result(int Err) {
  switch (Err) {
  case 0:
    return thrd_success;
  case EBUSY:
    return thrd_busy;
  case ETIMEDOUT:
    return thrd_timedout;
  case ENOMEM:
  case EAGAIN:
    return thrd_nomem;
  default:
    return thrd_error;
  }
}

/// Adapter record for thrd_create's int-returning start routine.
struct ThrdStart {
  thrd_start_t Fn;
  void *Arg;
};

void *thrdTrampoline(void *P) {
  ThrdStart Rec = *static_cast<ThrdStart *>(P);
  delete static_cast<ThrdStart *>(P);
  int Res = Rec.Fn(Rec.Arg);
  return reinterpret_cast<void *>(static_cast<intptr_t>(Res));
}

} // namespace

extern "C" int icb_thrd_create(thrd_t *Thr, thrd_start_t Fn, void *Arg) {
  if (!Thr || !Fn)
    return thrd_error;
  auto *Rec = new ThrdStart{Fn, Arg};
  unsigned long Handle =
      ExecContext::current().createThread(thrdTrampoline, Rec,
                                          /*Detached=*/false);
  if (Handle == 0) {
    delete Rec;
    return thrd_nomem;
  }
  *Thr = static_cast<thrd_t>(Handle);
  return thrd_success;
}

extern "C" int icb_thrd_join(thrd_t Thr, int *Res) {
  void *Ret = nullptr;
  int Err = icb_pthread_join(static_cast<pthread_t>(Thr), &Ret);
  if (Err != 0)
    return thrd_error;
  if (Res)
    *Res = static_cast<int>(reinterpret_cast<intptr_t>(Ret));
  return thrd_success;
}

extern "C" int icb_thrd_detach(thrd_t Thr) {
  return icb_pthread_detach(static_cast<pthread_t>(Thr)) == 0 ? thrd_success
                                                              : thrd_error;
}

extern "C" thrd_t icb_thrd_current(void) {
  return static_cast<thrd_t>(icb_pthread_self());
}

extern "C" int icb_thrd_equal(thrd_t A, thrd_t B) { return A == B ? 1 : 0; }

extern "C" void icb_thrd_exit(int Res) {
  throw ThreadExit{reinterpret_cast<void *>(static_cast<intptr_t>(Res))};
}

extern "C" void icb_thrd_yield(void) { rt::yield(); }

extern "C" int icb_thrd_sleep(const struct timespec *Dur,
                              struct timespec *Rem) {
  if (!Dur)
    return -1;
  rt::yield();
  if (Rem)
    *Rem = timespec{0, 0};
  return 0;
}

extern "C" int icb_mtx_init(mtx_t *M, int Type) {
  if (!M || (Type & ~(mtx_plain | mtx_timed | mtx_recursive)) != 0)
    return thrd_error;
  // C11 mutexes are not errorcheck: misuse is undefined, which NORMAL's
  // translation already reports as a bug or deadlock.
  ExecContext::current().initMutex(M, (Type & mtx_recursive)
                                          ? PTHREAD_MUTEX_RECURSIVE
                                          : PTHREAD_MUTEX_NORMAL);
  return thrd_success;
}

extern "C" void icb_mtx_destroy(mtx_t *M) {
  if (M)
    icb_pthread_mutex_destroy(reinterpret_cast<pthread_mutex_t *>(M));
}

extern "C" int icb_mtx_lock(mtx_t *M) {
  if (!M)
    return thrd_error;
  return c11Result(
      icb_pthread_mutex_lock(reinterpret_cast<pthread_mutex_t *>(M)));
}

extern "C" int icb_mtx_timedlock(mtx_t *M, const struct timespec *Deadline) {
  if (!M || !Deadline)
    return thrd_error;
  // Modeled both-outcome timeout (see icb_pthread_mutex_timedlock);
  // c11Result maps ETIMEDOUT to thrd_timedout.
  return c11Result(icb_pthread_mutex_timedlock(
      reinterpret_cast<pthread_mutex_t *>(M), Deadline));
}

extern "C" int icb_mtx_trylock(mtx_t *M) {
  if (!M)
    return thrd_error;
  return c11Result(
      icb_pthread_mutex_trylock(reinterpret_cast<pthread_mutex_t *>(M)));
}

extern "C" int icb_mtx_unlock(mtx_t *M) {
  if (!M)
    return thrd_error;
  return c11Result(
      icb_pthread_mutex_unlock(reinterpret_cast<pthread_mutex_t *>(M)));
}

extern "C" int icb_cnd_init(cnd_t *C) {
  if (!C)
    return thrd_error;
  ExecContext::current().initCond(C);
  return thrd_success;
}

extern "C" void icb_cnd_destroy(cnd_t *C) {
  if (C)
    icb_pthread_cond_destroy(reinterpret_cast<pthread_cond_t *>(C));
}

extern "C" int icb_cnd_wait(cnd_t *C, mtx_t *M) {
  if (!C || !M)
    return thrd_error;
  return c11Result(
      icb_pthread_cond_wait(reinterpret_cast<pthread_cond_t *>(C),
                            reinterpret_cast<pthread_mutex_t *>(M)));
}

extern "C" int icb_cnd_timedwait(cnd_t *C, mtx_t *M,
                                 const struct timespec *Deadline) {
  if (!C || !M || !Deadline)
    return thrd_error;
  struct timespec Dummy = *Deadline;
  return c11Result(
      icb_pthread_cond_timedwait(reinterpret_cast<pthread_cond_t *>(C),
                                 reinterpret_cast<pthread_mutex_t *>(M),
                                 &Dummy));
}

extern "C" int icb_cnd_signal(cnd_t *C) {
  if (!C)
    return thrd_error;
  return c11Result(
      icb_pthread_cond_signal(reinterpret_cast<pthread_cond_t *>(C)));
}

extern "C" int icb_cnd_broadcast(cnd_t *C) {
  if (!C)
    return thrd_error;
  return c11Result(
      icb_pthread_cond_broadcast(reinterpret_cast<pthread_cond_t *>(C)));
}

extern "C" void icb_call_once(once_flag *Flag, void (*Fn)(void)) {
  if (!Flag || !Fn)
    return;
  icb_pthread_once(reinterpret_cast<pthread_once_t *>(Flag), Fn);
}

extern "C" int icb_tss_create(tss_t *Key, tss_dtor_t Dtor) {
  if (!Key)
    return thrd_error;
  pthread_key_t K = 0;
  if (icb_pthread_key_create(&K, Dtor) != 0)
    return thrd_error;
  *Key = static_cast<tss_t>(K);
  return thrd_success;
}

extern "C" void icb_tss_delete(tss_t Key) {
  icb_pthread_key_delete(static_cast<pthread_key_t>(Key));
}

extern "C" int icb_tss_set(tss_t Key, void *Value) {
  return icb_pthread_setspecific(static_cast<pthread_key_t>(Key), Value) == 0
             ? thrd_success
             : thrd_error;
}

extern "C" void *icb_tss_get(tss_t Key) {
  return icb_pthread_getspecific(static_cast<pthread_key_t>(Key));
}

#endif // ICB_POSIX_HAS_THREADS_H

//===----------------------------------------------------------------------===//
// Checker surface
//===----------------------------------------------------------------------===//

extern "C" void icb_posix_shared_read(const void *Addr, const char *What) {
  ExecContext::current().sharedAccess(Addr, /*IsWrite=*/false, What);
}

extern "C" void icb_posix_shared_write(void *Addr, const char *What) {
  ExecContext::current().sharedAccess(Addr, /*IsWrite=*/true, What);
}

extern "C" void icb_posix_assert(int Cond, const char *What) {
  rt::testAssert(Cond != 0, What ? What : "icb_posix_assert");
}
