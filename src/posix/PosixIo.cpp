//===- posix/PosixIo.cpp - Modeled io + managed heap entry points ---------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The icb_* twins of the fd-facing POSIX surface (pipe/socketpair/
/// eventfd, read/write/close/fcntl, poll/select/epoll) and of the malloc
/// family, routing into io::IoContext / io::ManagedHeap while a
/// controlled execution is live and to the real libc otherwise.
///
/// Routing rules (full table in DESIGN.md §11):
///
///   * creation calls (pipe2, socketpair, eventfd, epoll_create*) are
///     modeled whenever an execution is live — modeled fds are numbered
///     from io::kFdBase so they never collide with real kernel fds;
///   * data-plane calls route per fd: fd >= kFdBase goes to the model,
///     anything below (stdio, files the harness opened) to the real
///     syscall — so printf-debugging keeps working under test;
///   * poll/select are modeled when any member fd is modeled; mixing
///     modeled and real fds in one set is unsupported (the real ones
///     report POLLNVAL / EBADF);
///   * malloc/free/calloc/realloc use the quarantine-and-poison arena
///     while live; pointers from outside the execution (module global
///     ctors, libc internals) pass through untouched.
///
//===----------------------------------------------------------------------===//

#define ICB_POSIX_NO_RENAME
#include "icb/posix.h"

#include "io/IoContext.h"
#include "io/ManagedHeap.h"
#include "rt/Scheduler.h"
#include <cerrno>
#include <cstdarg>
#include <cstdlib>
#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace icb;

namespace {

bool ioLive() {
  return rt::Scheduler::current() != nullptr && io::IoContext::current().live();
}

bool heapLive() {
  return rt::Scheduler::current() != nullptr &&
         io::ManagedHeap::current().live();
}

bool modeledFd(int Fd) { return ioLive() && Fd >= io::kFdBase; }

/// Converts the model's -errno convention to -1-and-errno.
long finish(long R) {
  if (R < 0) {
    errno = static_cast<int>(-R);
    return -1;
  }
  return R;
}

int finishInt(int R) { return static_cast<int>(finish(R)); }

} // namespace

//===----------------------------------------------------------------------===//
// Creation
//===----------------------------------------------------------------------===//

extern "C" int icb_pipe(int Fds[2]) {
  if (!ioLive())
    return ::pipe(Fds);
  if (!Fds) {
    errno = EFAULT;
    return -1;
  }
  return finishInt(io::IoContext::current().pipe2(Fds, 0));
}

extern "C" int icb_pipe2(int Fds[2], int Flags) {
  if (!ioLive())
    return ::pipe2(Fds, Flags);
  if (!Fds) {
    errno = EFAULT;
    return -1;
  }
  return finishInt(io::IoContext::current().pipe2(Fds, Flags));
}

extern "C" int icb_socketpair(int Domain, int Type, int Protocol, int Fds[2]) {
  if (!ioLive())
    return ::socketpair(Domain, Type, Protocol, Fds);
  if (!Fds) {
    errno = EFAULT;
    return -1;
  }
  return finishInt(
      io::IoContext::current().socketpair(Domain, Type, Protocol, Fds));
}

extern "C" int icb_eventfd(unsigned Initial, int Flags) {
  if (!ioLive())
    return ::eventfd(Initial, Flags);
  return finishInt(io::IoContext::current().eventfd(Initial, Flags));
}

extern "C" int icb_epoll_create1(int Flags) {
  if (!ioLive())
    return ::epoll_create1(Flags);
  if (Flags & ~EPOLL_CLOEXEC) {
    errno = EINVAL;
    return -1;
  }
  return finishInt(io::IoContext::current().epollCreate());
}

extern "C" int icb_epoll_create(int Size) {
  if (!ioLive())
    return ::epoll_create(Size);
  if (Size <= 0) {
    errno = EINVAL;
    return -1;
  }
  return finishInt(io::IoContext::current().epollCreate());
}

//===----------------------------------------------------------------------===//
// Data plane
//===----------------------------------------------------------------------===//

extern "C" ssize_t icb_read(int Fd, void *Buf, size_t N) {
  if (!modeledFd(Fd))
    return ::read(Fd, Buf, N);
  return finish(io::IoContext::current().read(Fd, Buf, N));
}

extern "C" ssize_t icb_write(int Fd, const void *Buf, size_t N) {
  if (!modeledFd(Fd))
    return ::write(Fd, Buf, N);
  return finish(io::IoContext::current().write(Fd, Buf, N));
}

extern "C" int icb_close(int Fd) {
  if (!modeledFd(Fd))
    return ::close(Fd);
  return finishInt(io::IoContext::current().close(Fd));
}

extern "C" int icb_fcntl(int Fd, int Cmd, ...) {
  va_list Ap;
  va_start(Ap, Cmd);
  // Every command the model understands carries an int argument (or
  // none); reading one unconditionally is the glibc-compatible move.
  int Arg = 0;
  if (Cmd == F_SETFL || Cmd == F_SETFD || Cmd == F_DUPFD ||
      Cmd == F_DUPFD_CLOEXEC)
    Arg = va_arg(Ap, int);
  va_end(Ap);
  if (!modeledFd(Fd))
    return ::fcntl(Fd, Cmd, Arg);
  return finishInt(io::IoContext::current().fcntl(Fd, Cmd, Arg));
}

//===----------------------------------------------------------------------===//
// Readiness multiplexing
//===----------------------------------------------------------------------===//

extern "C" int icb_poll(struct pollfd *Fds, nfds_t N, int TimeoutMs) {
  bool AnyModeled = false;
  if (ioLive() && Fds)
    for (nfds_t I = 0; I != N; ++I)
      AnyModeled |= Fds[I].fd >= io::kFdBase;
  if (!AnyModeled)
    return ::poll(Fds, N, TimeoutMs);
  return finishInt(io::IoContext::current().poll(Fds, N, TimeoutMs));
}

extern "C" int icb_select(int Nfds, fd_set *R, fd_set *W, fd_set *X,
                          struct timeval *T) {
  bool AnyModeled = false;
  if (ioLive())
    for (int Fd = io::kFdBase; Fd < Nfds && Fd < FD_SETSIZE; ++Fd)
      AnyModeled |= (R && FD_ISSET(Fd, R)) || (W && FD_ISSET(Fd, W)) ||
                    (X && FD_ISSET(Fd, X));
  if (!AnyModeled)
    return ::select(Nfds, R, W, X, T);
  return finishInt(io::IoContext::current().select(Nfds, R, W, X, T));
}

extern "C" int icb_epoll_ctl(int Ep, int Op, int Fd, struct epoll_event *Ev) {
  if (!modeledFd(Ep))
    return ::epoll_ctl(Ep, Op, Fd, Ev);
  return finishInt(io::IoContext::current().epollCtl(Ep, Op, Fd, Ev));
}

extern "C" int icb_epoll_wait(int Ep, struct epoll_event *Evs, int MaxEvents,
                              int TimeoutMs) {
  if (!modeledFd(Ep))
    return ::epoll_wait(Ep, Evs, MaxEvents, TimeoutMs);
  return finishInt(
      io::IoContext::current().epollWait(Ep, Evs, MaxEvents, TimeoutMs));
}

//===----------------------------------------------------------------------===//
// Managed heap
//===----------------------------------------------------------------------===//

extern "C" void *icb_malloc(size_t N) {
  if (!heapLive())
    return std::malloc(N);
  return io::ManagedHeap::current().allocate(N);
}

extern "C" void *icb_calloc(size_t Count, size_t Size) {
  if (!heapLive())
    return std::calloc(Count, Size);
  return io::ManagedHeap::current().callocate(Count, Size);
}

extern "C" void *icb_realloc(void *P, size_t N) {
  if (!heapLive())
    return std::realloc(P, N);
  return io::ManagedHeap::current().reallocate(P, N);
}

extern "C" void icb_free(void *P) {
  if (!heapLive()) {
    std::free(P);
    return;
  }
  io::ManagedHeap::current().release(P);
}
