//===- posix/Wrap.cpp - Linker --wrap forwarders for the POSIX shim -------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second delivery mechanism of the frontend: a test module compiled
/// from completely unmodified pthreads sources is linked against the
/// icb_posix_wrap target, whose `-Wl,--wrap,pthread_create ...` options
/// rewrite the module's undefined references to `__wrap_<fn>` and whose
/// objects (this file) provide the forwarders — so no icb header ever
/// touches the test's translation units. The forwarders are compiled into
/// the module itself, not resolved against the executable: libgcc.a
/// defines its own __wrap_pthread_create (split-stack support), and an
/// unresolved reference would pull that member and silently hand
/// pthread_create back to glibc. Only the icb_* twins the forwarders call
/// resolve at dlopen time against the icb_run executable.
///
//===----------------------------------------------------------------------===//

#define ICB_POSIX_NO_RENAME
#include "icb/posix.h"

extern "C" {

int __wrap_pthread_create(pthread_t *Thread, const pthread_attr_t *Attr,
                          void *(*Start)(void *), void *Arg) {
  return icb_pthread_create(Thread, Attr, Start, Arg);
}
int __wrap_pthread_join(pthread_t Thread, void **Ret) {
  return icb_pthread_join(Thread, Ret);
}
int __wrap_pthread_detach(pthread_t Thread) {
  return icb_pthread_detach(Thread);
}
pthread_t __wrap_pthread_self(void) { return icb_pthread_self(); }
int __wrap_pthread_equal(pthread_t A, pthread_t B) {
  return icb_pthread_equal(A, B);
}
void __wrap_pthread_exit(void *Ret) { icb_pthread_exit(Ret); }

int __wrap_pthread_attr_init(pthread_attr_t *Attr) {
  return icb_pthread_attr_init(Attr);
}
int __wrap_pthread_attr_destroy(pthread_attr_t *Attr) {
  return icb_pthread_attr_destroy(Attr);
}
int __wrap_pthread_attr_setdetachstate(pthread_attr_t *Attr, int State) {
  return icb_pthread_attr_setdetachstate(Attr, State);
}
int __wrap_pthread_attr_getdetachstate(const pthread_attr_t *Attr,
                                       int *State) {
  return icb_pthread_attr_getdetachstate(Attr, State);
}

int __wrap_pthread_mutex_init(pthread_mutex_t *M,
                              const pthread_mutexattr_t *A) {
  return icb_pthread_mutex_init(M, A);
}
int __wrap_pthread_mutex_destroy(pthread_mutex_t *M) {
  return icb_pthread_mutex_destroy(M);
}
int __wrap_pthread_mutex_lock(pthread_mutex_t *M) {
  return icb_pthread_mutex_lock(M);
}
int __wrap_pthread_mutex_timedlock(pthread_mutex_t *M,
                                   const struct timespec *AbsTime) {
  return icb_pthread_mutex_timedlock(M, AbsTime);
}
int __wrap_pthread_mutex_trylock(pthread_mutex_t *M) {
  return icb_pthread_mutex_trylock(M);
}
int __wrap_pthread_mutex_unlock(pthread_mutex_t *M) {
  return icb_pthread_mutex_unlock(M);
}

int __wrap_pthread_mutexattr_init(pthread_mutexattr_t *A) {
  return icb_pthread_mutexattr_init(A);
}
int __wrap_pthread_mutexattr_destroy(pthread_mutexattr_t *A) {
  return icb_pthread_mutexattr_destroy(A);
}
int __wrap_pthread_mutexattr_settype(pthread_mutexattr_t *A, int Type) {
  return icb_pthread_mutexattr_settype(A, Type);
}
int __wrap_pthread_mutexattr_gettype(const pthread_mutexattr_t *A,
                                     int *Type) {
  return icb_pthread_mutexattr_gettype(A, Type);
}

int __wrap_pthread_cond_init(pthread_cond_t *C, const pthread_condattr_t *A) {
  return icb_pthread_cond_init(C, A);
}
int __wrap_pthread_cond_destroy(pthread_cond_t *C) {
  return icb_pthread_cond_destroy(C);
}
int __wrap_pthread_cond_wait(pthread_cond_t *C, pthread_mutex_t *M) {
  return icb_pthread_cond_wait(C, M);
}
int __wrap_pthread_cond_timedwait(pthread_cond_t *C, pthread_mutex_t *M,
                                  const struct timespec *AbsTime) {
  return icb_pthread_cond_timedwait(C, M, AbsTime);
}
int __wrap_pthread_cond_signal(pthread_cond_t *C) {
  return icb_pthread_cond_signal(C);
}
int __wrap_pthread_cond_broadcast(pthread_cond_t *C) {
  return icb_pthread_cond_broadcast(C);
}

int __wrap_pthread_rwlock_init(pthread_rwlock_t *RW,
                               const pthread_rwlockattr_t *A) {
  return icb_pthread_rwlock_init(RW, A);
}
int __wrap_pthread_rwlock_destroy(pthread_rwlock_t *RW) {
  return icb_pthread_rwlock_destroy(RW);
}
int __wrap_pthread_rwlock_rdlock(pthread_rwlock_t *RW) {
  return icb_pthread_rwlock_rdlock(RW);
}
int __wrap_pthread_rwlock_tryrdlock(pthread_rwlock_t *RW) {
  return icb_pthread_rwlock_tryrdlock(RW);
}
int __wrap_pthread_rwlock_wrlock(pthread_rwlock_t *RW) {
  return icb_pthread_rwlock_wrlock(RW);
}
int __wrap_pthread_rwlock_trywrlock(pthread_rwlock_t *RW) {
  return icb_pthread_rwlock_trywrlock(RW);
}
int __wrap_pthread_rwlock_unlock(pthread_rwlock_t *RW) {
  return icb_pthread_rwlock_unlock(RW);
}

int __wrap_pthread_barrier_init(pthread_barrier_t *B,
                                const pthread_barrierattr_t *A,
                                unsigned Count) {
  return icb_pthread_barrier_init(B, A, Count);
}
int __wrap_pthread_barrier_destroy(pthread_barrier_t *B) {
  return icb_pthread_barrier_destroy(B);
}
int __wrap_pthread_barrier_wait(pthread_barrier_t *B) {
  return icb_pthread_barrier_wait(B);
}
int __wrap_pthread_barrierattr_init(pthread_barrierattr_t *A) {
  return icb_pthread_barrierattr_init(A);
}
int __wrap_pthread_barrierattr_destroy(pthread_barrierattr_t *A) {
  return icb_pthread_barrierattr_destroy(A);
}

int __wrap_pthread_spin_init(pthread_spinlock_t *S, int PShared) {
  return icb_pthread_spin_init(S, PShared);
}
int __wrap_pthread_spin_destroy(pthread_spinlock_t *S) {
  return icb_pthread_spin_destroy(S);
}
int __wrap_pthread_spin_lock(pthread_spinlock_t *S) {
  return icb_pthread_spin_lock(S);
}
int __wrap_pthread_spin_trylock(pthread_spinlock_t *S) {
  return icb_pthread_spin_trylock(S);
}
int __wrap_pthread_spin_unlock(pthread_spinlock_t *S) {
  return icb_pthread_spin_unlock(S);
}

int __wrap_sem_init(sem_t *S, int PShared, unsigned Value) {
  return icb_sem_init(S, PShared, Value);
}
int __wrap_sem_destroy(sem_t *S) { return icb_sem_destroy(S); }
int __wrap_sem_wait(sem_t *S) { return icb_sem_wait(S); }
int __wrap_sem_timedwait(sem_t *S, const struct timespec *AbsTime) {
  return icb_sem_timedwait(S, AbsTime);
}
int __wrap_sem_trywait(sem_t *S) { return icb_sem_trywait(S); }
int __wrap_sem_post(sem_t *S) { return icb_sem_post(S); }
int __wrap_sem_getvalue(sem_t *S, int *Out) { return icb_sem_getvalue(S, Out); }

int __wrap_pthread_once(pthread_once_t *Control, void (*Routine)(void)) {
  return icb_pthread_once(Control, Routine);
}

int __wrap_pthread_key_create(pthread_key_t *Key, void (*Dtor)(void *)) {
  return icb_pthread_key_create(Key, Dtor);
}
int __wrap_pthread_key_delete(pthread_key_t Key) {
  return icb_pthread_key_delete(Key);
}
int __wrap_pthread_setspecific(pthread_key_t Key, const void *Value) {
  return icb_pthread_setspecific(Key, Value);
}
void *__wrap_pthread_getspecific(pthread_key_t Key) {
  return icb_pthread_getspecific(Key);
}

int __wrap_sched_yield(void) { return icb_sched_yield(); }
int __wrap_usleep(unsigned Usec) { return icb_usleep(Usec); }
unsigned __wrap_sleep(unsigned Seconds) { return icb_sleep(Seconds); }
int __wrap_nanosleep(const struct timespec *Req, struct timespec *Rem) {
  return icb_nanosleep(Req, Rem);
}

/* Modeled io. glibc declares eventfd/epoll_wait with slightly different
 * spellings across versions, so the forwarders use the icb signatures;
 * the calling conventions are identical. */
int __wrap_pipe(int Fds[2]) { return icb_pipe(Fds); }
int __wrap_pipe2(int Fds[2], int Flags) { return icb_pipe2(Fds, Flags); }
int __wrap_socketpair(int Domain, int Type, int Protocol, int Fds[2]) {
  return icb_socketpair(Domain, Type, Protocol, Fds);
}
int __wrap_eventfd(unsigned Initial, int Flags) {
  return icb_eventfd(Initial, Flags);
}
int __wrap_epoll_create(int Size) { return icb_epoll_create(Size); }
int __wrap_epoll_create1(int Flags) { return icb_epoll_create1(Flags); }
int __wrap_epoll_ctl(int Ep, int Op, int Fd, struct epoll_event *Ev) {
  return icb_epoll_ctl(Ep, Op, Fd, Ev);
}
int __wrap_epoll_wait(int Ep, struct epoll_event *Evs, int MaxEvents,
                      int TimeoutMs) {
  return icb_epoll_wait(Ep, Evs, MaxEvents, TimeoutMs);
}
ssize_t __wrap_read(int Fd, void *Buf, size_t N) {
  return icb_read(Fd, Buf, N);
}
ssize_t __wrap_write(int Fd, const void *Buf, size_t N) {
  return icb_write(Fd, Buf, N);
}
int __wrap_close(int Fd) { return icb_close(Fd); }
int __wrap_fcntl(int Fd, int Cmd, long Arg) {
  return icb_fcntl(Fd, Cmd, Arg);
}
int __wrap_poll(struct pollfd *Fds, nfds_t N, int TimeoutMs) {
  return icb_poll(Fds, N, TimeoutMs);
}
int __wrap_select(int Nfds, fd_set *R, fd_set *W, fd_set *X,
                  struct timeval *T) {
  return icb_select(Nfds, R, W, X, T);
}

/* Managed heap. */
void *__wrap_malloc(size_t N) { return icb_malloc(N); }
void *__wrap_calloc(size_t Count, size_t Size) {
  return icb_calloc(Count, Size);
}
void *__wrap_realloc(void *P, size_t N) { return icb_realloc(P, N); }
void __wrap_free(void *P) { icb_free(P); }

#ifdef ICB_POSIX_HAS_THREADS_H

int __wrap_thrd_create(thrd_t *Thr, thrd_start_t Fn, void *Arg) {
  return icb_thrd_create(Thr, Fn, Arg);
}
int __wrap_thrd_join(thrd_t Thr, int *Res) { return icb_thrd_join(Thr, Res); }
int __wrap_thrd_detach(thrd_t Thr) { return icb_thrd_detach(Thr); }
thrd_t __wrap_thrd_current(void) { return icb_thrd_current(); }
int __wrap_thrd_equal(thrd_t A, thrd_t B) { return icb_thrd_equal(A, B); }
void __wrap_thrd_exit(int Res) { icb_thrd_exit(Res); }
void __wrap_thrd_yield(void) { icb_thrd_yield(); }
int __wrap_thrd_sleep(const struct timespec *Dur, struct timespec *Rem) {
  return icb_thrd_sleep(Dur, Rem);
}

int __wrap_mtx_init(mtx_t *M, int Type) { return icb_mtx_init(M, Type); }
void __wrap_mtx_destroy(mtx_t *M) { icb_mtx_destroy(M); }
int __wrap_mtx_lock(mtx_t *M) { return icb_mtx_lock(M); }
int __wrap_mtx_timedlock(mtx_t *M, const struct timespec *Deadline) {
  return icb_mtx_timedlock(M, Deadline);
}
int __wrap_mtx_trylock(mtx_t *M) { return icb_mtx_trylock(M); }
int __wrap_mtx_unlock(mtx_t *M) { return icb_mtx_unlock(M); }

int __wrap_cnd_init(cnd_t *C) { return icb_cnd_init(C); }
void __wrap_cnd_destroy(cnd_t *C) { icb_cnd_destroy(C); }
int __wrap_cnd_wait(cnd_t *C, mtx_t *M) { return icb_cnd_wait(C, M); }
int __wrap_cnd_timedwait(cnd_t *C, mtx_t *M,
                         const struct timespec *Deadline) {
  return icb_cnd_timedwait(C, M, Deadline);
}
int __wrap_cnd_signal(cnd_t *C) { return icb_cnd_signal(C); }
int __wrap_cnd_broadcast(cnd_t *C) { return icb_cnd_broadcast(C); }

void __wrap_call_once(once_flag *Flag, void (*Fn)(void)) {
  icb_call_once(Flag, Fn);
}

int __wrap_tss_create(tss_t *Key, tss_dtor_t Dtor) {
  return icb_tss_create(Key, Dtor);
}
void __wrap_tss_delete(tss_t Key) { icb_tss_delete(Key); }
int __wrap_tss_set(tss_t Key, void *Value) { return icb_tss_set(Key, Value); }
void *__wrap_tss_get(tss_t Key) { return icb_tss_get(Key); }

#endif /* ICB_POSIX_HAS_THREADS_H */

} // extern "C"
