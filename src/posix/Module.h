//===- posix/Module.h - dlopen convention for posix test modules -*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dlopen entry-point convention of the POSIX frontend: a test is a
/// shared object exporting
///
///     extern "C" void icb_test_main(void);       // required
///     extern "C" const char *icb_test_name(void); // optional
///
/// The module leaves its icb_* references undefined (the --wrap delivery
/// compiles __wrap_* forwarders into the module, which call icb_*); they
/// resolve at dlopen time against the loading executable, which must be
/// linked with ENABLE_EXPORTS (tools/icb_run is). Resolving against the
/// executable — instead of linking the runtime into each module — keeps
/// exactly one copy of the scheduler state per process, which the
/// `--jobs N` worker model depends on.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_POSIX_MODULE_H
#define ICB_POSIX_MODULE_H

#include "rt/Scheduler.h"
#include <string>

namespace icb::posix {

/// A loaded test shared object.
struct TestModule {
  std::string Path;
  std::string Name; ///< icb_test_name() if exported, else the file stem.
  void *Handle = nullptr;
  void (*Entry)() = nullptr;
};

/// Loads \p Path with dlopen and resolves the entry points. Returns false
/// with a human-readable \p Err on failure (unreadable file, missing
/// icb_test_main, ...).
bool loadTestModule(const std::string &Path, TestModule &Out,
                    std::string &Err);

/// Wraps the module's entry point into an engine-ready TestCase (body
/// bracketed by the per-execution ExecContext).
rt::TestCase moduleTestCase(const TestModule &M);

} // namespace icb::posix

#endif // ICB_POSIX_MODULE_H
