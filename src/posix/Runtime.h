//===- posix/Runtime.h - Per-execution state of the POSIX shim --*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bookkeeping behind include/icb/posix.h: one ExecContext per worker
/// OS thread (thread_local, matching the one-Scheduler-per-worker model of
/// rt::ReplayExecutor), fully reset at the start of every controlled
/// execution.
///
/// Native POSIX objects (pthread_mutex_t, sem_t, ...) are used purely as
/// opaque address keys into per-kind side tables; their storage is never
/// read or written. That gives PTHREAD_*_INITIALIZER static init for free,
/// keeps objects with storage smaller than a handle (pthread_once_t is an
/// int) working, and — crucially — means `--jobs N` workers concurrently
/// replaying a test that uses global objects never race on the globals:
/// each worker's state lives in its own thread_local tables.
///
/// First use of an uninitialized-but-zero object lazily creates default
/// state (semaphores start at 0), so both explicit *_init calls and static
/// initializers funnel into the same path. The backing rt::SyncObjects are
/// destroyed in reverse creation order at the end of the execution, after
/// joining every still-unjoined thread — both orders are deterministic, so
/// replay is exact.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_POSIX_RUNTIME_H
#define ICB_POSIX_RUNTIME_H

#include "rt/CondVar.h"
#include "rt/RwLock.h"
#include "rt/Scheduler.h"
#include "rt/Sync.h"
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace icb::posix {

/// Thrown by icb_pthread_exit; unwinds to the thread wrapper (or the test
/// body wrapper for the main thread) carrying the return value.
struct ThreadExit {
  void *Ret;
};

struct MutexState {
  rt::Mutex *M = nullptr;
  int Type = 0;       ///< PTHREAD_MUTEX_{NORMAL,ERRORCHECK,RECURSIVE}.
  unsigned Depth = 0; ///< Recursion depth while held.
};

struct CondState {
  rt::CondVar *C = nullptr;
};

struct RwState {
  rt::RwLock *RW = nullptr;
  rt::ThreadId Writer = rt::InvalidThread;
  /// Per-thread shared-hold counts (rt::RwLock tracks only a total).
  std::unordered_map<rt::ThreadId, unsigned> ReadDepth;
};

struct SemState {
  rt::Semaphore *S = nullptr;
};

/// Classic generation-counted barrier over a controlled mutex + condvar.
/// The mutex hand-off gives the all-to-all happens-before edge a barrier
/// implies; Count == 0 marks a never-initialized barrier (POSIX has no
/// static initializer for barriers, so lazy first use is misuse).
struct BarrierState {
  rt::Mutex *M = nullptr;
  rt::CondVar *C = nullptr;
  unsigned Count = 0;   ///< Required arrivals; 0 = uninitialized.
  unsigned Arrived = 0; ///< Arrivals in the current generation.
  unsigned Gen = 0;     ///< Bumped when a generation releases.
};

struct SpinState {
  rt::Mutex *M = nullptr;
};

struct OnceState {
  enum { NotRun, Running, Done } Phase = NotRun;
  rt::Event *DoneEvent = nullptr; ///< Manual-reset; set when Routine ends.
};

struct KeyRec {
  bool Alive = false;
  void (*Dtor)(void *) = nullptr;
};

/// One simulated pthread. Handles are 1-based indices into the context's
/// thread table (handle 1 is the main thread); records are never removed
/// within an execution, so joined/finished threads stay resolvable.
struct ThreadRec {
  rt::ThreadId Tid = rt::InvalidThread;
  void *Ret = nullptr;
  bool Detached = false;
  bool Finished = false;
  bool Joined = false;
  std::vector<void *> Tls; ///< Indexed by key id.
};

/// All POSIX-shim state of the execution currently running on this worker.
class ExecContext {
public:
  /// The worker's context. Asserts a controlled execution is live.
  static ExecContext &current();

  /// Reset for a fresh execution and register the main thread. Leftover
  /// state from a previous execution that ended via failExecution (which
  /// never reaches end()) is discarded here.
  void begin();

  /// Orderly end of the test body: joins every unjoined thread in creation
  /// order, then destroys the rt objects in reverse creation order.
  void end();

  // --- Object lookup (lazily default-initializing) ----------------------
  MutexState &mutexFor(const void *Addr);
  CondState &condFor(const void *Addr);
  RwState &rwFor(const void *Addr);
  SemState &semFor(const void *Addr);
  OnceState &onceFor(const void *Addr);
  BarrierState &barrierFor(const void *Addr);
  SpinState &spinFor(const void *Addr);

  // --- Explicit (re-)initialization and destruction ---------------------
  void initMutex(const void *Addr, int Type);
  void initCond(const void *Addr);
  void initRw(const void *Addr);
  void initSem(const void *Addr, unsigned Value);
  void initBarrier(const void *Addr, unsigned Count);
  void initSpin(const void *Addr);
  /// Forget the state keyed at \p Addr so a later *_init (or lazy first
  /// use) starts fresh; the backing rt object lives until end().
  void dropMutex(const void *Addr);
  void dropCond(const void *Addr);
  void dropRw(const void *Addr);
  void dropSem(const void *Addr);
  void dropBarrier(const void *Addr);
  void dropSpin(const void *Addr);

  // --- Mutex attributes (address-keyed, like the objects) ---------------
  void setMutexAttrType(const void *Addr, int Type);
  int mutexAttrType(const void *Addr) const; ///< Default when unknown.
  void setThreadAttrDetached(const void *Addr, bool Detached);
  bool threadAttrDetached(const void *Addr) const;

  // --- Threads ----------------------------------------------------------
  /// Spawns a simulated pthread; returns its 1-based handle.
  unsigned long createThread(void *(*Start)(void *), void *Arg,
                             bool Detached);
  ThreadRec *threadByHandle(unsigned long Handle);
  unsigned long handleOfSelf();

  // --- TLS keys ---------------------------------------------------------
  std::vector<KeyRec> Keys;
  ThreadRec &selfRec();

  // --- Race annotations -------------------------------------------------
  void sharedAccess(const void *Addr, bool IsWrite, const char *What);

private:
  template <typename T, typename... A>
  T *makeObject(std::string Name, A &&...Args);
  void runTlsDestructors(ThreadRec &R);
  void reset();

  rt::Scheduler *Sched = nullptr; ///< The scheduler of the live execution.
  bool Live = false;

  std::unordered_map<const void *, MutexState> Mutexes;
  std::unordered_map<const void *, CondState> Conds;
  std::unordered_map<const void *, RwState> RwLocks;
  std::unordered_map<const void *, SemState> Sems;
  std::unordered_map<const void *, OnceState> Onces;
  std::unordered_map<const void *, BarrierState> Barriers;
  std::unordered_map<const void *, SpinState> Spins;
  std::unordered_map<const void *, int> MutexAttrs;
  std::unordered_map<const void *, bool> ThreadAttrs;
  std::unordered_map<const void *, uint64_t> VarCodes;

  /// Backing rt objects in creation order (destroyed in reverse).
  std::vector<std::unique_ptr<rt::SyncObject>> Arena;
  /// Per-kind counters for deterministic object names in traces.
  unsigned Serial[7] = {0, 0, 0, 0, 0, 0, 0};

  std::vector<std::unique_ptr<ThreadRec>> Threads; ///< Handle-1 indexed.
  /// rt thread id -> handle (0 = unknown), for pthread_self.
  std::vector<unsigned long> HandleOfTid;
};

/// Wraps a test entry point into an rt::TestCase whose body runs inside a
/// fresh ExecContext (begin/end bracketing, pthread_exit-from-main
/// support). This is the seam between the POSIX world and the engine:
/// everything above it is plain pthreads code, everything below is the
/// stock rt/search machinery.
rt::TestCase makeTestCase(std::string Name, std::function<void()> Body);

} // namespace icb::posix

#endif // ICB_POSIX_RUNTIME_H
