//===- posix/Module.cpp - dlopen convention for posix test modules --------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "posix/Module.h"
#include "posix/Runtime.h"
#include "support/Format.h"
#include <dlfcn.h>

using namespace icb;
using namespace icb::posix;

static std::string fileStem(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Base = Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  size_t Dot = Base.find_last_of('.');
  if (Dot != std::string::npos && Dot != 0)
    Base = Base.substr(0, Dot);
  // Strip a conventional "lib" prefix so artifact names stay tidy.
  if (Base.rfind("lib", 0) == 0 && Base.size() > 3)
    Base = Base.substr(3);
  return Base.empty() ? "posix_test" : Base;
}

bool icb::posix::loadTestModule(const std::string &Path, TestModule &Out,
                                std::string &Err) {
  // RTLD_NOW: fail here, with a useful message, rather than mid-execution;
  // RTLD_LOCAL keeps one module's symbols from leaking into the next.
  void *Handle = dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *D = dlerror();
    Err = strFormat("cannot load test module '%s': %s", Path.c_str(),
                    D ? D : "unknown dlopen error");
    return false;
  }
  dlerror(); // Clear any stale error so the dlsym diagnosis below is ours.
  void *Entry = dlsym(Handle, "icb_test_main");
  if (!Entry) {
    // Spell out the exact missing symbol and carry the dlerror text: the
    // usual causes (entry point declared static, C++ name mangling from a
    // missing extern "C", stripped dynamic symbol table) are all visible
    // from that pair.
    const char *D = dlerror();
    Err = strFormat("test module '%s' does not export the required entry "
                    "point 'icb_test_main' (declare it: extern \"C\" void "
                    "icb_test_main(void)): %s",
                    Path.c_str(), D ? D : "symbol not found");
    dlclose(Handle);
    return false;
  }
  Out.Path = Path;
  Out.Handle = Handle;
  Out.Entry = reinterpret_cast<void (*)()>(Entry);
  Out.Name = fileStem(Path);
  if (void *NameFn = dlsym(Handle, "icb_test_name")) {
    const char *N = reinterpret_cast<const char *(*)()>(NameFn)();
    if (N && *N)
      Out.Name = N;
  }
  return true;
}

rt::TestCase icb::posix::moduleTestCase(const TestModule &M) {
  void (*Entry)() = M.Entry;
  return makeTestCase(M.Name, [Entry] { Entry(); });
}
