file(REMOVE_RECURSE
  "CMakeFiles/icb_testutil.dir/testutil/TestPrograms.cpp.o"
  "CMakeFiles/icb_testutil.dir/testutil/TestPrograms.cpp.o.d"
  "libicb_testutil.a"
  "libicb_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icb_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
