file(REMOVE_RECURSE
  "libicb_testutil.a"
)
