# Empty dependencies file for icb_testutil.
# This may be replaced when dependencies are built.
