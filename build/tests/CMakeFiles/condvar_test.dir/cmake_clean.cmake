file(REMOVE_RECURSE
  "CMakeFiles/condvar_test.dir/condvar_test.cpp.o"
  "CMakeFiles/condvar_test.dir/condvar_test.cpp.o.d"
  "condvar_test"
  "condvar_test.pdb"
  "condvar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condvar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
