# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/race_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/benchmarks_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/condvar_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_gaps_test[1]_include.cmake")
