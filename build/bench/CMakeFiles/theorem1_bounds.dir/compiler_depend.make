# Empty compiler generated dependencies file for theorem1_bounds.
# This may be replaced when dependencies are built.
