file(REMOVE_RECURSE
  "CMakeFiles/theorem1_bounds.dir/theorem1_bounds.cpp.o"
  "CMakeFiles/theorem1_bounds.dir/theorem1_bounds.cpp.o.d"
  "theorem1_bounds"
  "theorem1_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
