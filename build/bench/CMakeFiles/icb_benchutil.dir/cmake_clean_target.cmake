file(REMOVE_RECURSE
  "libicb_benchutil.a"
)
