file(REMOVE_RECURSE
  "CMakeFiles/icb_benchutil.dir/BenchUtil.cpp.o"
  "CMakeFiles/icb_benchutil.dir/BenchUtil.cpp.o.d"
  "libicb_benchutil.a"
  "libicb_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icb_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
