# Empty compiler generated dependencies file for icb_benchutil.
# This may be replaced when dependencies are built.
