file(REMOVE_RECURSE
  "CMakeFiles/ablation_por.dir/ablation_por.cpp.o"
  "CMakeFiles/ablation_por.dir/ablation_por.cpp.o.d"
  "ablation_por"
  "ablation_por.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_por.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
