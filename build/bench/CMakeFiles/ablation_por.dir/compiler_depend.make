# Empty compiler generated dependencies file for ablation_por.
# This may be replaced when dependencies are built.
