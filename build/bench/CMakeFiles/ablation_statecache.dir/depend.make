# Empty dependencies file for ablation_statecache.
# This may be replaced when dependencies are built.
