file(REMOVE_RECURSE
  "CMakeFiles/ablation_statecache.dir/ablation_statecache.cpp.o"
  "CMakeFiles/ablation_statecache.dir/ablation_statecache.cpp.o.d"
  "ablation_statecache"
  "ablation_statecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_statecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
