# Empty compiler generated dependencies file for fig6_dryad_growth.
# This may be replaced when dependencies are built.
