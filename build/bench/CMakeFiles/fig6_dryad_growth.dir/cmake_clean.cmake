file(REMOVE_RECURSE
  "CMakeFiles/fig6_dryad_growth.dir/fig6_dryad_growth.cpp.o"
  "CMakeFiles/fig6_dryad_growth.dir/fig6_dryad_growth.cpp.o.d"
  "fig6_dryad_growth"
  "fig6_dryad_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dryad_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
