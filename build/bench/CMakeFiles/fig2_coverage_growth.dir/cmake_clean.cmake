file(REMOVE_RECURSE
  "CMakeFiles/fig2_coverage_growth.dir/fig2_coverage_growth.cpp.o"
  "CMakeFiles/fig2_coverage_growth.dir/fig2_coverage_growth.cpp.o.d"
  "fig2_coverage_growth"
  "fig2_coverage_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_coverage_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
