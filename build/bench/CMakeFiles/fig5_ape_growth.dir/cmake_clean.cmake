file(REMOVE_RECURSE
  "CMakeFiles/fig5_ape_growth.dir/fig5_ape_growth.cpp.o"
  "CMakeFiles/fig5_ape_growth.dir/fig5_ape_growth.cpp.o.d"
  "fig5_ape_growth"
  "fig5_ape_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ape_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
