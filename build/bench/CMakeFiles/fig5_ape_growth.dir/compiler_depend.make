# Empty compiler generated dependencies file for fig5_ape_growth.
# This may be replaced when dependencies are built.
