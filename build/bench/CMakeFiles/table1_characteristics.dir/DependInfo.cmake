
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_characteristics.cpp" "bench/CMakeFiles/table1_characteristics.dir/table1_characteristics.cpp.o" "gcc" "bench/CMakeFiles/table1_characteristics.dir/table1_characteristics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/icb_benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/CMakeFiles/icb_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/icb_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/icb_race.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/icb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/icb_search.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/icb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
