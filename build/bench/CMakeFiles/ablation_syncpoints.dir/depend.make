# Empty dependencies file for ablation_syncpoints.
# This may be replaced when dependencies are built.
