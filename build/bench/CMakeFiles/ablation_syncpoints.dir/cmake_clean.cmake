file(REMOVE_RECURSE
  "CMakeFiles/ablation_syncpoints.dir/ablation_syncpoints.cpp.o"
  "CMakeFiles/ablation_syncpoints.dir/ablation_syncpoints.cpp.o.d"
  "ablation_syncpoints"
  "ablation_syncpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_syncpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
