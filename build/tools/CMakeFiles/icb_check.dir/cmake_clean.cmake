file(REMOVE_RECURSE
  "CMakeFiles/icb_check.dir/icb_check.cpp.o"
  "CMakeFiles/icb_check.dir/icb_check.cpp.o.d"
  "icb_check"
  "icb_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icb_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
