# Empty compiler generated dependencies file for icb_check.
# This may be replaced when dependencies are built.
