# Empty compiler generated dependencies file for icb_vm.
# This may be replaced when dependencies are built.
