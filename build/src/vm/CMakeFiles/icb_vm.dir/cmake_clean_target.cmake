file(REMOVE_RECURSE
  "libicb_vm.a"
)
