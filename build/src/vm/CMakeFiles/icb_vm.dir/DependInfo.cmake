
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/Builder.cpp" "src/vm/CMakeFiles/icb_vm.dir/Builder.cpp.o" "gcc" "src/vm/CMakeFiles/icb_vm.dir/Builder.cpp.o.d"
  "/root/repo/src/vm/Disassembler.cpp" "src/vm/CMakeFiles/icb_vm.dir/Disassembler.cpp.o" "gcc" "src/vm/CMakeFiles/icb_vm.dir/Disassembler.cpp.o.d"
  "/root/repo/src/vm/Instruction.cpp" "src/vm/CMakeFiles/icb_vm.dir/Instruction.cpp.o" "gcc" "src/vm/CMakeFiles/icb_vm.dir/Instruction.cpp.o.d"
  "/root/repo/src/vm/Interp.cpp" "src/vm/CMakeFiles/icb_vm.dir/Interp.cpp.o" "gcc" "src/vm/CMakeFiles/icb_vm.dir/Interp.cpp.o.d"
  "/root/repo/src/vm/Program.cpp" "src/vm/CMakeFiles/icb_vm.dir/Program.cpp.o" "gcc" "src/vm/CMakeFiles/icb_vm.dir/Program.cpp.o.d"
  "/root/repo/src/vm/State.cpp" "src/vm/CMakeFiles/icb_vm.dir/State.cpp.o" "gcc" "src/vm/CMakeFiles/icb_vm.dir/State.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
