file(REMOVE_RECURSE
  "CMakeFiles/icb_vm.dir/Builder.cpp.o"
  "CMakeFiles/icb_vm.dir/Builder.cpp.o.d"
  "CMakeFiles/icb_vm.dir/Disassembler.cpp.o"
  "CMakeFiles/icb_vm.dir/Disassembler.cpp.o.d"
  "CMakeFiles/icb_vm.dir/Instruction.cpp.o"
  "CMakeFiles/icb_vm.dir/Instruction.cpp.o.d"
  "CMakeFiles/icb_vm.dir/Interp.cpp.o"
  "CMakeFiles/icb_vm.dir/Interp.cpp.o.d"
  "CMakeFiles/icb_vm.dir/Program.cpp.o"
  "CMakeFiles/icb_vm.dir/Program.cpp.o.d"
  "CMakeFiles/icb_vm.dir/State.cpp.o"
  "CMakeFiles/icb_vm.dir/State.cpp.o.d"
  "libicb_vm.a"
  "libicb_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icb_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
