file(REMOVE_RECURSE
  "libicb_support.a"
)
