file(REMOVE_RECURSE
  "CMakeFiles/icb_support.dir/CommandLine.cpp.o"
  "CMakeFiles/icb_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/icb_support.dir/Csv.cpp.o"
  "CMakeFiles/icb_support.dir/Csv.cpp.o.d"
  "CMakeFiles/icb_support.dir/Format.cpp.o"
  "CMakeFiles/icb_support.dir/Format.cpp.o.d"
  "libicb_support.a"
  "libicb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
