# Empty dependencies file for icb_support.
# This may be replaced when dependencies are built.
