# Empty compiler generated dependencies file for icb_search.
# This may be replaced when dependencies are built.
