
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/Checker.cpp" "src/search/CMakeFiles/icb_search.dir/Checker.cpp.o" "gcc" "src/search/CMakeFiles/icb_search.dir/Checker.cpp.o.d"
  "/root/repo/src/search/Dfs.cpp" "src/search/CMakeFiles/icb_search.dir/Dfs.cpp.o" "gcc" "src/search/CMakeFiles/icb_search.dir/Dfs.cpp.o.d"
  "/root/repo/src/search/IcbSearch.cpp" "src/search/CMakeFiles/icb_search.dir/IcbSearch.cpp.o" "gcc" "src/search/CMakeFiles/icb_search.dir/IcbSearch.cpp.o.d"
  "/root/repo/src/search/RandomWalk.cpp" "src/search/CMakeFiles/icb_search.dir/RandomWalk.cpp.o" "gcc" "src/search/CMakeFiles/icb_search.dir/RandomWalk.cpp.o.d"
  "/root/repo/src/search/SearchTypes.cpp" "src/search/CMakeFiles/icb_search.dir/SearchTypes.cpp.o" "gcc" "src/search/CMakeFiles/icb_search.dir/SearchTypes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/icb_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
