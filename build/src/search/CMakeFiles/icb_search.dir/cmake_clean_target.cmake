file(REMOVE_RECURSE
  "libicb_search.a"
)
