file(REMOVE_RECURSE
  "CMakeFiles/icb_search.dir/Checker.cpp.o"
  "CMakeFiles/icb_search.dir/Checker.cpp.o.d"
  "CMakeFiles/icb_search.dir/Dfs.cpp.o"
  "CMakeFiles/icb_search.dir/Dfs.cpp.o.d"
  "CMakeFiles/icb_search.dir/IcbSearch.cpp.o"
  "CMakeFiles/icb_search.dir/IcbSearch.cpp.o.d"
  "CMakeFiles/icb_search.dir/RandomWalk.cpp.o"
  "CMakeFiles/icb_search.dir/RandomWalk.cpp.o.d"
  "CMakeFiles/icb_search.dir/SearchTypes.cpp.o"
  "CMakeFiles/icb_search.dir/SearchTypes.cpp.o.d"
  "libicb_search.a"
  "libicb_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icb_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
