file(REMOVE_RECURSE
  "libicb_rt.a"
)
