# Empty dependencies file for icb_rt.
# This may be replaced when dependencies are built.
