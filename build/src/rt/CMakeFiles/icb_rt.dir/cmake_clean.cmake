file(REMOVE_RECURSE
  "CMakeFiles/icb_rt.dir/CondVar.cpp.o"
  "CMakeFiles/icb_rt.dir/CondVar.cpp.o.d"
  "CMakeFiles/icb_rt.dir/Explore.cpp.o"
  "CMakeFiles/icb_rt.dir/Explore.cpp.o.d"
  "CMakeFiles/icb_rt.dir/Fiber.cpp.o"
  "CMakeFiles/icb_rt.dir/Fiber.cpp.o.d"
  "CMakeFiles/icb_rt.dir/FiberContext.cpp.o"
  "CMakeFiles/icb_rt.dir/FiberContext.cpp.o.d"
  "CMakeFiles/icb_rt.dir/RwLock.cpp.o"
  "CMakeFiles/icb_rt.dir/RwLock.cpp.o.d"
  "CMakeFiles/icb_rt.dir/Scheduler.cpp.o"
  "CMakeFiles/icb_rt.dir/Scheduler.cpp.o.d"
  "CMakeFiles/icb_rt.dir/Sync.cpp.o"
  "CMakeFiles/icb_rt.dir/Sync.cpp.o.d"
  "CMakeFiles/icb_rt.dir/SyncObject.cpp.o"
  "CMakeFiles/icb_rt.dir/SyncObject.cpp.o.d"
  "CMakeFiles/icb_rt.dir/Thread.cpp.o"
  "CMakeFiles/icb_rt.dir/Thread.cpp.o.d"
  "libicb_rt.a"
  "libicb_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icb_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
