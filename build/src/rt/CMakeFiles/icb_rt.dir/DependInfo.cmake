
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/CondVar.cpp" "src/rt/CMakeFiles/icb_rt.dir/CondVar.cpp.o" "gcc" "src/rt/CMakeFiles/icb_rt.dir/CondVar.cpp.o.d"
  "/root/repo/src/rt/Explore.cpp" "src/rt/CMakeFiles/icb_rt.dir/Explore.cpp.o" "gcc" "src/rt/CMakeFiles/icb_rt.dir/Explore.cpp.o.d"
  "/root/repo/src/rt/Fiber.cpp" "src/rt/CMakeFiles/icb_rt.dir/Fiber.cpp.o" "gcc" "src/rt/CMakeFiles/icb_rt.dir/Fiber.cpp.o.d"
  "/root/repo/src/rt/FiberContext.cpp" "src/rt/CMakeFiles/icb_rt.dir/FiberContext.cpp.o" "gcc" "src/rt/CMakeFiles/icb_rt.dir/FiberContext.cpp.o.d"
  "/root/repo/src/rt/RwLock.cpp" "src/rt/CMakeFiles/icb_rt.dir/RwLock.cpp.o" "gcc" "src/rt/CMakeFiles/icb_rt.dir/RwLock.cpp.o.d"
  "/root/repo/src/rt/Scheduler.cpp" "src/rt/CMakeFiles/icb_rt.dir/Scheduler.cpp.o" "gcc" "src/rt/CMakeFiles/icb_rt.dir/Scheduler.cpp.o.d"
  "/root/repo/src/rt/Sync.cpp" "src/rt/CMakeFiles/icb_rt.dir/Sync.cpp.o" "gcc" "src/rt/CMakeFiles/icb_rt.dir/Sync.cpp.o.d"
  "/root/repo/src/rt/SyncObject.cpp" "src/rt/CMakeFiles/icb_rt.dir/SyncObject.cpp.o" "gcc" "src/rt/CMakeFiles/icb_rt.dir/SyncObject.cpp.o.d"
  "/root/repo/src/rt/Thread.cpp" "src/rt/CMakeFiles/icb_rt.dir/Thread.cpp.o" "gcc" "src/rt/CMakeFiles/icb_rt.dir/Thread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/icb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/icb_race.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
