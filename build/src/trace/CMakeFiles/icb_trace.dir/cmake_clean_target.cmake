file(REMOVE_RECURSE
  "libicb_trace.a"
)
