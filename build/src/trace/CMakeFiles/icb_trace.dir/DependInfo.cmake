
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/Fingerprint.cpp" "src/trace/CMakeFiles/icb_trace.dir/Fingerprint.cpp.o" "gcc" "src/trace/CMakeFiles/icb_trace.dir/Fingerprint.cpp.o.d"
  "/root/repo/src/trace/Schedule.cpp" "src/trace/CMakeFiles/icb_trace.dir/Schedule.cpp.o" "gcc" "src/trace/CMakeFiles/icb_trace.dir/Schedule.cpp.o.d"
  "/root/repo/src/trace/TraceWriter.cpp" "src/trace/CMakeFiles/icb_trace.dir/TraceWriter.cpp.o" "gcc" "src/trace/CMakeFiles/icb_trace.dir/TraceWriter.cpp.o.d"
  "/root/repo/src/trace/VectorClock.cpp" "src/trace/CMakeFiles/icb_trace.dir/VectorClock.cpp.o" "gcc" "src/trace/CMakeFiles/icb_trace.dir/VectorClock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
