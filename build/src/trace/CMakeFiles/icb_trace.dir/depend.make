# Empty dependencies file for icb_trace.
# This may be replaced when dependencies are built.
