file(REMOVE_RECURSE
  "CMakeFiles/icb_trace.dir/Fingerprint.cpp.o"
  "CMakeFiles/icb_trace.dir/Fingerprint.cpp.o.d"
  "CMakeFiles/icb_trace.dir/Schedule.cpp.o"
  "CMakeFiles/icb_trace.dir/Schedule.cpp.o.d"
  "CMakeFiles/icb_trace.dir/TraceWriter.cpp.o"
  "CMakeFiles/icb_trace.dir/TraceWriter.cpp.o.d"
  "CMakeFiles/icb_trace.dir/VectorClock.cpp.o"
  "CMakeFiles/icb_trace.dir/VectorClock.cpp.o.d"
  "libicb_trace.a"
  "libicb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
