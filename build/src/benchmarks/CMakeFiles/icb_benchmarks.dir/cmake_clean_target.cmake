file(REMOVE_RECURSE
  "libicb_benchmarks.a"
)
