file(REMOVE_RECURSE
  "CMakeFiles/icb_benchmarks.dir/Ape.cpp.o"
  "CMakeFiles/icb_benchmarks.dir/Ape.cpp.o.d"
  "CMakeFiles/icb_benchmarks.dir/Bluetooth.cpp.o"
  "CMakeFiles/icb_benchmarks.dir/Bluetooth.cpp.o.d"
  "CMakeFiles/icb_benchmarks.dir/BluetoothModel.cpp.o"
  "CMakeFiles/icb_benchmarks.dir/BluetoothModel.cpp.o.d"
  "CMakeFiles/icb_benchmarks.dir/DryadChannels.cpp.o"
  "CMakeFiles/icb_benchmarks.dir/DryadChannels.cpp.o.d"
  "CMakeFiles/icb_benchmarks.dir/FileSystemModel.cpp.o"
  "CMakeFiles/icb_benchmarks.dir/FileSystemModel.cpp.o.d"
  "CMakeFiles/icb_benchmarks.dir/Registry.cpp.o"
  "CMakeFiles/icb_benchmarks.dir/Registry.cpp.o.d"
  "CMakeFiles/icb_benchmarks.dir/TxnManagerModel.cpp.o"
  "CMakeFiles/icb_benchmarks.dir/TxnManagerModel.cpp.o.d"
  "CMakeFiles/icb_benchmarks.dir/WorkStealingQueue.cpp.o"
  "CMakeFiles/icb_benchmarks.dir/WorkStealingQueue.cpp.o.d"
  "libicb_benchmarks.a"
  "libicb_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icb_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
