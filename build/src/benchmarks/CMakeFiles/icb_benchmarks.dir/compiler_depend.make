# Empty compiler generated dependencies file for icb_benchmarks.
# This may be replaced when dependencies are built.
