
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmarks/Ape.cpp" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/Ape.cpp.o" "gcc" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/Ape.cpp.o.d"
  "/root/repo/src/benchmarks/Bluetooth.cpp" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/Bluetooth.cpp.o" "gcc" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/Bluetooth.cpp.o.d"
  "/root/repo/src/benchmarks/BluetoothModel.cpp" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/BluetoothModel.cpp.o" "gcc" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/BluetoothModel.cpp.o.d"
  "/root/repo/src/benchmarks/DryadChannels.cpp" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/DryadChannels.cpp.o" "gcc" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/DryadChannels.cpp.o.d"
  "/root/repo/src/benchmarks/FileSystemModel.cpp" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/FileSystemModel.cpp.o" "gcc" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/FileSystemModel.cpp.o.d"
  "/root/repo/src/benchmarks/Registry.cpp" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/Registry.cpp.o" "gcc" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/Registry.cpp.o.d"
  "/root/repo/src/benchmarks/TxnManagerModel.cpp" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/TxnManagerModel.cpp.o" "gcc" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/TxnManagerModel.cpp.o.d"
  "/root/repo/src/benchmarks/WorkStealingQueue.cpp" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/WorkStealingQueue.cpp.o" "gcc" "src/benchmarks/CMakeFiles/icb_benchmarks.dir/WorkStealingQueue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/icb_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/icb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/icb_search.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/icb_race.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/icb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
