
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/race/Goldilocks.cpp" "src/race/CMakeFiles/icb_race.dir/Goldilocks.cpp.o" "gcc" "src/race/CMakeFiles/icb_race.dir/Goldilocks.cpp.o.d"
  "/root/repo/src/race/VcRaceDetector.cpp" "src/race/CMakeFiles/icb_race.dir/VcRaceDetector.cpp.o" "gcc" "src/race/CMakeFiles/icb_race.dir/VcRaceDetector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/icb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
