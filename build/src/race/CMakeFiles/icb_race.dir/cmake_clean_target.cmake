file(REMOVE_RECURSE
  "libicb_race.a"
)
