file(REMOVE_RECURSE
  "CMakeFiles/icb_race.dir/Goldilocks.cpp.o"
  "CMakeFiles/icb_race.dir/Goldilocks.cpp.o.d"
  "CMakeFiles/icb_race.dir/VcRaceDetector.cpp.o"
  "CMakeFiles/icb_race.dir/VcRaceDetector.cpp.o.d"
  "libicb_race.a"
  "libicb_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icb_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
