# Empty dependencies file for icb_race.
# This may be replaced when dependencies are built.
