file(REMOVE_RECURSE
  "CMakeFiles/dryad_uaf.dir/dryad_uaf.cpp.o"
  "CMakeFiles/dryad_uaf.dir/dryad_uaf.cpp.o.d"
  "dryad_uaf"
  "dryad_uaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dryad_uaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
