# Empty dependencies file for dryad_uaf.
# This may be replaced when dependencies are built.
