file(REMOVE_RECURSE
  "CMakeFiles/wsq_hunt.dir/wsq_hunt.cpp.o"
  "CMakeFiles/wsq_hunt.dir/wsq_hunt.cpp.o.d"
  "wsq_hunt"
  "wsq_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
