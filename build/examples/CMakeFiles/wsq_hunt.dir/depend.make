# Empty dependencies file for wsq_hunt.
# This may be replaced when dependencies are built.
